#!/usr/bin/env python3
"""Regenerate every experiment's table in one run (for EXPERIMENTS.md).

This is exactly what the benchmarks run, minus pytest: useful for
producing the full record, e.g.:

    python scripts/run_all_experiments.py | tee experiment_results.txt
"""

from repro.bench.e10_media import media_selection
from repro.bench.e12_overload import overload_goodput
from repro.bench.e13_bulk import bulk_distribution
from repro.bench.e2_mpiconnect import mpiconnect_vs_pvmpi, summarize_speedup
from repro.bench.e3_availability import availability_vs_replicas
from repro.bench.e4_rm import rm_scalability
from repro.bench.e5_master import master_failure
from repro.bench.e6_migration import migration_loss
from repro.bench.e7_mcast import mcast_fault_tolerance, router_density_ablation
from repro.bench.e8_failover import failover_timeline
from repro.bench.e9_rc import anti_entropy_ablation, rc_update_scaling
from repro.bench.fig1 import (
    fig1_bandwidth,
    multicast_fanout_ablation,
    srudp_window_ablation,
)
from repro.bench.table import print_table


def main() -> None:
    rows = fig1_bandwidth(sizes=[16_384, 131_072, 1_048_576, 4_194_304])
    print_table("E1 / Fig. 1: bandwidth (MB/s) vs message size",
                rows, ["series", "size", "mbps"])
    print_table("E1 ablation: SRUDP window on a satellite link",
                srudp_window_ablation())
    print_table("E1 ablation: multicast vs N unicasts",
                multicast_fanout_ablation())

    rows = mpiconnect_vs_pvmpi(sizes=[1_024, 16_384, 131_072, 1_048_576], n_msgs=3)
    print_table("E2: MPI_Connect vs PVMPI inter-MPP ping-pong", rows)
    print_table("E2: speedup", summarize_speedup(rows))

    print_table("E3: metadata availability vs replica count",
                availability_vs_replicas(horizon=1_000.0))

    print_table("E4: RM throughput/latency vs offered load",
                rm_scalability(n_hosts=8, rates=(20.0, 90.0), rm_counts=(1, 4),
                               window=10.0))

    print_table("E5: success rate around the critical-host crash",
                master_failure())

    print_table("E6: message accounting across migrations",
                migration_loss(hop_counts=(0, 1, 2, 3)))

    print_table("E7: multicast delivery with dead routers",
                mcast_fault_tolerance(router_kills=(0, 1)))
    print_table("E7 ablation: router election density",
                router_density_ablation(n_members=8))

    result = failover_timeline()
    print_table("E8: failover summary", result["summary"])
    from repro.bench.plotting import ascii_chart

    series = {}
    for row in result["timeline"]:
        series.setdefault(row["policy"], []).append((row["t"] + 0.001, row["mbps"]))
    print()
    print(ascii_chart(series, title="E8: throughput timeline (cut at t=0.15s)",
                      x_label="t (s)", y_label="MB/s", log_x=False))

    print_table("E9: RC update throughput vs replica count",
                rc_update_scaling(replica_counts=(1, 4), n_writers=8, window=10.0))
    print_table("E9 ablation: anti-entropy period", anti_entropy_ablation())

    print_table("E10: media selection", media_selection())

    print_table("E12: overload goodput and control-plane latency",
                overload_goodput())

    print_table("E13: bulk distribution — unicast vs pipelined relay tree",
                bulk_distribution())


if __name__ == "__main__":
    main()
