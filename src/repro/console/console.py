"""The operator console: a client of RC metadata and host daemons.

Because "there is no SNIPE virtual machine apart from the entire
Internet", the console can only enumerate what is *registered*: the
processes a given daemon supervises, the members a process group's
metadata lists, the hosts the catalog knows. That asymmetry with PVM's
``conf``/``ps -a`` is deliberate and preserved.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.daemon.daemon import DAEMON_PORT
from repro.rcds import uri as uri_mod
from repro.rcds.client import RCClient
from repro.rpc import RpcClient, RpcError

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host


class Console:
    """Human-facing control point, attachable to any host."""

    def __init__(self, host: "Host", rc: RCClient, secret: Optional[bytes] = None) -> None:
        self.sim = host.sim
        self.host = host
        self.rc = rc
        self._rpc = RpcClient(host, secret=secret)
        #: Command log, as a character console would display it.
        self.transcript: List[str] = []

    def _log(self, line: str) -> None:
        self.transcript.append(f"[{self.sim.now:10.3f}] {line}")

    # -- inspection ---------------------------------------------------------
    def hosts(self):
        """Registered SNIPE hosts (a process yielding a list of names)."""

        def go():
            urls = yield self.rc.query("snipe://")
            names = sorted(
                {uri_mod.host_of(u) for u in urls if u.endswith("/") and uri_mod.host_of(u)}
            )
            self._log(f"hosts: {', '.join(names)}")
            return names

        return self.sim.process(go(), name="console.hosts")

    def host_info(self, host_name: str):
        """One host's metadata (a process yielding the assertion dict)."""

        def go():
            meta = yield self.rc.lookup(uri_mod.host_url(host_name))
            info = {k: v["value"] for k, v in meta.items()}
            self._log(f"host {host_name}: load={info.get('load')} tasks={info.get('tasks')}")
            return info

        return self.sim.process(go(), name="console.host_info")

    def tasks_on(self, host_name: str):
        """Processes supervised by a host's daemon (a process)."""

        def go():
            try:
                urns = yield self._rpc.call(host_name, DAEMON_PORT, "daemon.list")
            except RpcError:
                self._log(f"tasks_on {host_name}: daemon unreachable")
                return []
            self._log(f"tasks on {host_name}: {len(urns)}")
            return urns

        return self.sim.process(go(), name="console.tasks_on")

    def process_state(self, urn: str):
        """One process's registered state (a process)."""

        def go():
            meta = yield self.rc.lookup(urn)
            return {k: v["value"] for k, v in meta.items()}

        return self.sim.process(go(), name="console.process_state")

    def group_members(self, group: str):
        """Members registered in a group's metadata (a process)."""

        def go():
            meta = yield self.rc.lookup(uri_mod.mcast_urn(group))
            return sorted(
                key[len("member:"):]
                for key, info in meta.items()
                if key.startswith("member:") and info["value"]
            )

        return self.sim.process(go(), name=f"console.group_members:{group}")

    def group_state(self, group_urn: str, member_urns: Optional[List[str]] = None):
        """State of every member of a process group (a process).

        Per §3.7: group membership is metadata, so the console reads the
        group's member list (registered in the catalog, or supplied) and
        resolves each member's state.
        """

        def go():
            members = member_urns
            if members is None:
                name = group_urn.rsplit(":", 1)[-1]
                members = yield self.group_members(name)
            out: Dict[str, Any] = {}
            for urn in members:
                try:
                    meta = yield self.rc.lookup(urn)
                    out[urn] = (meta.get("state") or {}).get("value", "unknown")
                except Exception:
                    out[urn] = "unreachable"
            self._log(f"group {group_urn}: {out}")
            return out

        return self.sim.process(go(), name="console.group_state")

    # -- control ------------------------------------------------------------------
    def spawn(self, host_name: str, spec):
        """Spawn via a host's daemon (a process yielding the URN)."""

        def go():
            result = yield self._rpc.call(host_name, DAEMON_PORT, "daemon.spawn", spec=spec)
            self._log(f"spawned {result['urn']} on {host_name}")
            return result["urn"]

        return self.sim.process(go(), name="console.spawn")

    def kill(self, urn: str):
        """Kill a process wherever it is (a process yielding bool)."""

        def go():
            meta = yield self.rc.lookup(urn)
            host = (meta.get("host") or {}).get("value")
            if host is None:
                return False
            ok = yield self._rpc.call(host, DAEMON_PORT, "daemon.kill", urn=urn)
            self._log(f"kill {urn}: {ok}")
            return ok

        return self.sim.process(go(), name="console.kill")

    def signal(self, urn: str, signal: Any):
        """Deliver an async signal to a process by URN (a process)."""

        def go():
            meta = yield self.rc.lookup(urn)
            host = (meta.get("host") or {}).get("value")
            if host is None:
                return False
            return (
                yield self._rpc.call(
                    host, DAEMON_PORT, "daemon.signal", urn=urn, signal=signal
                )
            )

        return self.sim.process(go(), name="console.signal")
