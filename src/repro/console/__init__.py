"""Consoles and web gateways (§3.7).

    "A SNIPE console is any SNIPE process which communicates with humans…
    A SNIPE process can also function as an HTTP server… A SNIPE-based
    HTTP server can register a binding between a URN or URL and its
    current location, allowing a web browser to find it even though it
    may migrate from one host to another… there is no way to list all
    SNIPE processes. The state of each process in a process group is
    maintained as metadata associated with that process group."

* :class:`Console` — operator interface: inspect hosts/process groups
  through RC metadata, spawn/kill/signal through daemons.
* :class:`SnipeHttpServer` — serves pages, registers its URL→location
  binding in RC, and keeps serving after moving hosts.
* :class:`WebClient` — the proxy-resolver path: resolve any registered
  URI via RC, then fetch from wherever it currently lives.
"""

from repro.console.console import Console
from repro.console.httpd import SnipeHttpServer, WebClient, WebError, export_files_http

__all__ = ["Console", "SnipeHttpServer", "WebClient", "WebError", "export_files_http"]
