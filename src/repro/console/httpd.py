"""The migrating SNIPE HTTP server and its proxy-resolving client (§3.7).

The server binds pages under a site URL and registers the URL→location
binding as RC metadata; when it moves hosts (or is replicated), it
re-registers, and :class:`WebClient` — the paper's "proxy server
[allowing] any web browser to resolve the URI of any RCDS-registered
resource" — finds it again with at most one stale-location retry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.rcds.client import QUORUM, RCClient
from repro.rpc import RpcClient, RpcError, RpcServer, Sized

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host


class WebError(Exception):
    """URL not registered, page missing, or every location unreachable."""


class SnipeHttpServer:
    """An HTTP-ish page server whose location lives in RC metadata."""

    def __init__(
        self,
        host: "Host",
        rc: RCClient,
        site_url: str,
        pages: Optional[Dict[str, str]] = None,
        secret: Optional[bytes] = None,
        page_source=None,
    ) -> None:
        self.sim = host.sim
        self.rc = rc
        self.site_url = site_url
        self.pages: Dict[str, str] = dict(pages or {})
        #: Optional fallback ``fn(path) -> content|None`` consulted when a
        #: path isn't a static page — used to export file-server contents
        #: over HTTP (§5.9).
        self.page_source = page_source
        self.hits = 0
        self.host: Optional["Host"] = None
        self.port: Optional[int] = None
        self.rpc: Optional[RpcServer] = None
        self.secret = secret
        self._bind(host)

    def _bind(self, host: "Host") -> None:
        self.host = host
        self.port = host.ephemeral_port()
        self.rpc = RpcServer(host, self.port, secret=self.secret)
        self.rpc.register("http.get", self._h_get)

    def register(self):
        """Publish (or refresh) the URL→location binding (a process)."""
        return self.rc.update(
            self.site_url,
            {"http-location": (self.host.name, self.port)},
            QUORUM,
        )

    def add_page(self, path: str, content: str) -> None:
        self.pages[path] = content

    def _h_get(self, args: Dict):
        path = args.get("path", "/")
        body = self.pages.get(path)
        if body is None and self.page_source is not None:
            body = self.page_source(path)
        if body is None:
            raise KeyError(f"404: {path}")
        self.hits += 1
        size = len(body) if isinstance(body, (str, bytes)) else 256
        return Sized({"status": 200, "body": body}, size=size + 64)

    def move_to(self, new_host: "Host", new_rc: RCClient):
        """Relocate the server: rebind on the new host, re-register.

        Returns a process (yield it). Old-location fetches fail and the
        client re-resolves — the §3.7 migration story for web consoles.
        """
        old_rpc = self.rpc

        def go():
            self.rc = new_rc
            self._bind(new_host)
            yield self.register()
            if old_rpc is not None:
                old_rpc.close()
            return (self.host.name, self.port)

        return self.sim.process(go(), name=f"httpd-move:{self.site_url}")


def export_files_http(file_server, rc: RCClient, site_url: str) -> SnipeHttpServer:
    """Expose a file server's contents over HTTP (§5.9).

    "SNIPE file servers can also be used … to export data to files which
    can then be accessed by external programs using common protocols
    such as HTTP." Paths map to file names: GET /<name> returns the
    stored payload.
    """

    def page_source(path: str):
        name = path.lstrip("/")
        vf = file_server.files.get(name)
        if vf is None:
            return None
        payload = vf.payload
        if isinstance(payload, (str, bytes)):
            return payload
        return repr(payload)

    return SnipeHttpServer(
        file_server.host, rc, site_url,
        pages={"/": f"<html>file export: {file_server.host.name}</html>"},
        page_source=page_source,
    )


class WebClient:
    """Resolve any registered URL through RC and fetch it."""

    def __init__(self, host: "Host", rc: RCClient, secret: Optional[bytes] = None) -> None:
        self.sim = host.sim
        self.rc = rc
        self._rpc = RpcClient(host, secret=secret)
        self._cache: Dict[str, Tuple[str, int]] = {}

    def get(self, site_url: str, path: str = "/", retries: int = 2):
        """Fetch a page (a process yielding the body string)."""

        def go():
            last_error: Optional[str] = None
            for attempt in range(retries + 1):
                location = self._cache.get(site_url)
                if location is None:
                    meta = yield self.rc.lookup(site_url, QUORUM)
                    info = meta.get("http-location")
                    if info is None:
                        raise WebError(f"{site_url}: not registered")
                    location = tuple(info["value"])
                    self._cache[site_url] = location
                try:
                    result = yield self._rpc.call(
                        location[0], location[1], "http.get", timeout=1.0, path=path
                    )
                    return result["body"]
                except RpcError as exc:
                    last_error = str(exc)
                    # Stale location (server moved or died): re-resolve.
                    self._cache.pop(site_url, None)
            raise WebError(f"GET {site_url}{path} failed: {last_error}")

        return self.sim.process(go(), name=f"web-get:{site_url}{path}")
