"""E12 — goodput and control-plane survival under overload.

    "... the system must continue to provide service in the face of
    resource exhaustion as well as outright failure" (§3, robustness)

Scenario: the chaos star site (three single-threaded RC replicas behind
a shared LAN, checkpointing workers on private segments) is offered a
multiple of its bulk lookup capacity while the core LAN is congested and
half the workers are CPU-starved. No host ever crashes, so every
Guardian death declaration is a false positive.

Two configurations face the same seeded load:

* **static** — fixed RPC timeouts, no circuit breakers, no priority
  lanes: lease heartbeats queue behind (and get shed with) the bulk
  backlog;
* **adaptive** — the ``repro.robust.overload`` stack: Jacobson RTT
  timeouts, circuit breakers that quarantine saturated replicas, and
  control-plane priority lanes with bulk load-shedding.

Measured per (config, saturation): bulk goodput through the overload
window, control-plane p99 latency, failed lease heartbeats, and false
death declarations. The shape assertion is the paper's robustness claim:
the adaptive stack keeps the control plane clean (zero false deaths,
zero lost heartbeats, bounded p99) at saturations where the static
baseline visibly degrades, without giving up bulk goodput.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.robust.chaos import run_overload

#: Control-plane p99 budget the adaptive stack must honour (seconds).
CONTROL_P99_BOUND = 0.5


def overload_goodput(
    saturations: Sequence[float] = (2.0, 5.0),
    seed: int = 1,
) -> List[Dict]:
    """Static vs adaptive under 2x/5x saturation; returns metric rows."""
    rows: List[Dict] = []
    for saturation in saturations:
        for adaptive in (False, True):
            r = run_overload(
                seed,
                saturation=saturation,
                adaptive=adaptive,
                control_p99_bound=CONTROL_P99_BOUND,
            )
            rows.append({
                "config": "adaptive" if adaptive else "static",
                "saturation_x": saturation,
                "goodput_ops_s": round(r["goodput_ops_s"], 2),
                "control_p99_ms": round(r["control_p99_s"] * 1000, 1),
                "hb_failed": r["heartbeats_failed"],
                "false_deaths": r["deaths_declared"],
                "shed": r["requests_shed"],
                "breaker_opens": r["breaker_opens"],
                "ok": r["ok"],
            })
    return rows
