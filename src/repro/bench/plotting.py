"""Terminal plots for benchmark series (Fig. 1 and the E8 timeline).

No plotting dependency exists offline, so the charts are ASCII: good
enough to eyeball the saturation knees and the failover dip, which is
what "reproducing the figure" means here.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

#: Marks assigned to series in insertion order.
_MARKS = "ox+*#@%&"


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = True,
) -> str:
    """Render named (x, y) series as an ASCII scatter/line chart."""
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"

    def tx(x: float) -> float:
        return math.log10(x) if log_x and x > 0 else x

    xs = [tx(x) for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = 0.0, max(ys) * 1.05 or 1.0
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for mark, (name, pts) in zip(_MARKS, series.items()):
        for x, y in pts:
            col = int((tx(x) - x_lo) / x_span * (width - 1))
            row = int((y - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_val = y_hi - (i / (height - 1)) * y_span
        lines.append(f"{y_val:8.2f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(f"{'':9s} {x_label}"
                 f" [{min(x for x, _ in points):g} .. {max(x for x, _ in points):g}]"
                 f"{'  (log x)' if log_x else ''}")
    legend = "  ".join(
        f"{mark}={name}" for mark, name in zip(_MARKS, series.keys())
    )
    lines.append(f"{'':9s} {legend}")
    return "\n".join(lines)
