"""E17 — kernel scalability: large sites on the optimised event core.

    "SNIPE is intended to scale to thousands of hosts spread across the
    national infrastructure" (§1)

The earlier experiments all run tens of hosts; this one exists to show
the simulator *kernel* itself — timer wheel, direct rx dispatch,
timestamp-clocked NICs, slim events — sustains sites in the hundreds of
hosts, so scenario authors can write thousand-endpoint studies without
the harness becoming the bottleneck.

Scenario: ``wan_site`` topologies (LANs of 16 hosts joined by a WAN
backbone through gateway hosts) at increasing total host counts. Every
host runs an RPC echo server and a client that issues a seeded mix of
intra-LAN and cross-LAN calls, so the run exercises the full stack:
srudp retransmit timers, adaptive timeouts, gateway forwarding, and the
per-call deadline timers that dominate the kernel's timer traffic.

Measured per scale: wall-clock seconds, kernel events processed, frames
constructed, and events per wall-second. The shape assertions are
feasibility (every call completes, no call fails) and throughput (the
kernel sustains a sane event rate at 256 hosts); the absolute rates are
recorded in ``BENCH_kernel_scale.json`` for ``obs diff`` tracking.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from repro.bench.topologies import wan_site
from repro.rpc import RpcClient, RpcServer

#: Port every host's echo server binds.
ECHO_PORT = 7100

#: LAN width used at every scale; host counts must be multiples of this.
HOSTS_PER_LAN = 16


def _run_scale(n_hosts: int, calls_per_host: int, seed: int) -> Dict:
    """One wan_site run at ``n_hosts`` total hosts; returns its row."""
    if n_hosts % HOSTS_PER_LAN:
        raise ValueError(f"n_hosts must be a multiple of {HOSTS_PER_LAN}")
    n_lans = n_hosts // HOSTS_PER_LAN
    t0 = time.perf_counter()
    sim, topo, lans = wan_site(
        n_lans=n_lans, hosts_per_lan=HOSTS_PER_LAN, seed=seed
    )
    hosts = [h for lan in lans for h in lan]
    for h in hosts:
        server = RpcServer(h, ECHO_PORT)
        server.register("echo", lambda args: args["x"])
    clients = [RpcClient(h) for h in hosts]

    rng = sim.rng.stream("e17.traffic")
    ok = [0]
    failed = [0]

    def caller(idx: int):
        client = clients[idx]
        lan = idx // HOSTS_PER_LAN
        for i in range(calls_per_host):
            # Mostly LAN-local traffic with a cross-site minority, like a
            # real site: 1 in 4 calls crosses the WAN through gateways.
            if rng.random() < 0.25:
                dst = rng.randrange(n_hosts)
            else:
                dst = lan * HOSTS_PER_LAN + rng.randrange(HOSTS_PER_LAN)
            if dst == idx:
                dst = (dst + 1) % n_hosts
            yield sim.timeout(rng.uniform(0.0, 0.5))
            try:
                reply = yield client.call(
                    hosts[dst].name, ECHO_PORT, "echo", x=(idx, i)
                )
                if reply == [idx, i] or reply == (idx, i):
                    ok[0] += 1
                else:
                    failed[0] += 1
            except Exception:
                failed[0] += 1

    def driver():
        procs = [
            sim.process(caller(i), name=f"e17-caller:{i}")
            for i in range(n_hosts)
        ]
        for p in procs:
            yield p

    sim.run(until=sim.process(driver(), name="e17-driver"))
    wall_s = time.perf_counter() - t0
    return {
        "hosts": n_hosts,
        "lans": n_lans,
        "calls": n_hosts * calls_per_host,
        "calls_ok": ok[0],
        "calls_failed": failed[0],
        "virtual_s": round(sim.now, 3),
        "events": sim._eid,
        "frames": sim.frames_constructed,
        "wall_s": round(wall_s, 3),
        "events_per_s": round(sim._eid / wall_s) if wall_s > 0 else 0,
    }


def kernel_scale(
    scales: Sequence[int] = (256,),
    calls_per_host: int = 4,
    seed: int = 1,
) -> List[Dict]:
    """RPC echo traffic on wan_site topologies at each host count.

    The default sweeps 256 hosts (the benchmark gate); pass
    ``scales=(256, 512, 1024)`` for the full scaling curve.
    """
    return [_run_scale(n, calls_per_host, seed) for n in scales]
