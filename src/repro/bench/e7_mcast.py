"""E7 — multicast fault tolerance via majority registration (§5.4).

    "each process wishing to participate in a multicast group may
    register its membership in the group with multiple multicast
    routers… This is intended to ensure that there is at least one path
    from the sending process to each recipient process."

Workload: N member tasks join a group over a LAN+WAN site; we kill f of
the R routers, then multicast a message and count which surviving
members receive it. Two disciplines: SNIPE's majority registration /
majority send, and a single-router baseline.

Expected: majority discipline delivers to 100 % of surviving members for
any f < ⌈R/2⌉; the single-router baseline loses every member whose one
router died.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.environment import SnipeEnvironment
from repro.daemon.mcast import MAJORITY, SINGLE
from repro.daemon.tasks import TaskSpec


def mcast_fault_tolerance(
    n_members: int = 8,
    router_kills: Sequence[int] = (0, 1, 2),
    seed: int = 0,
) -> List[Dict]:
    """Rows: {mode, routers, killed, members_alive, delivered, delivery_rate}."""
    rows: List[Dict] = []
    for mode in (MAJORITY, SINGLE):
        for kills in router_kills:
            env = SnipeEnvironment.lan_site(n_hosts=n_members, n_rc=3, seed=seed)
            delivered: List[str] = []

            @env.program("member")
            def member(ctx, name, join_mode, delay):
                # Joins are staggered so the router set stabilises at the
                # election target; simultaneous first joins would make
                # every host elect itself (an interesting but different
                # regime — see router_density_ablation).
                yield ctx.sleep(delay)
                yield ctx.join_group("alerts", mode=join_mode)
                msg = yield ctx.recv_group("alerts")
                delivered.append(name)
                return msg.payload

            @env.program("publisher")
            def publisher(ctx):
                yield ctx.join_group("alerts")
                yield ctx.sleep(2.0)
                n = yield ctx.send_group("alerts", {"warning": "storm"})
                return n

            for i in range(n_members - 1):
                env.spawn(
                    TaskSpec(
                        program="member",
                        params={"name": f"m{i}", "join_mode": mode, "delay": i * 0.5},
                    ),
                    on=f"h{i}",
                )
            env.settle(0.5 * n_members + 2.0)
            routers = sorted(
                name for name, d in env.daemons.items() if "alerts" in d.mcast.router_state
            )
            for victim in routers[:kills]:
                env.topology.hosts[victim].crash()
            alive_members = [
                f"m{i}" for i in range(n_members - 1)
                if env.topology.hosts[f"h{i}"].up
            ]
            env.spawn(TaskSpec(program="publisher"), on=f"h{n_members - 1}")
            env.run(until=env.sim.now + 20.0)
            got = [m for m in delivered if m in alive_members]
            rows.append(
                {
                    "mode": mode,
                    "routers": len(routers),
                    "killed": kills,
                    "members_alive": len(alive_members),
                    "delivered": len(got),
                    "delivery_rate": len(got) / len(alive_members) if alive_members else 0.0,
                }
            )
    return rows


def router_density_ablation(
    min_routers_options: Sequence[int] = (1, 3, 5),
    n_members: int = 10,
    seed: int = 0,
) -> List[Dict]:
    """Ablation: §5.4's election density. More routers ⇒ more relay
    traffic but survival of more simultaneous failures."""
    rows: List[Dict] = []
    for min_routers in min_routers_options:
        env = SnipeEnvironment.lan_site(n_hosts=n_members, n_rc=3, seed=seed)
        for daemon in env.daemons.values():
            daemon.mcast.min_routers = min_routers
        delivered = []

        @env.program("member")
        def member(ctx, name):
            yield ctx.join_group("g")
            yield ctx.recv_group("g")
            delivered.append(name)
            return "ok"

        @env.program("publisher")
        def publisher(ctx):
            yield ctx.join_group("g")
            yield ctx.sleep(2.0)
            yield ctx.send_group("g", "data")
            return "sent"

        for i in range(n_members - 1):
            env.spawn(TaskSpec(program="member", params={"name": f"m{i}"}), on=f"h{i}")
        env.settle(2.0)
        routers = [name for name, d in env.daemons.items() if "g" in d.mcast.router_state]
        env.spawn(TaskSpec(program="publisher"), on=f"h{n_members - 1}")
        env.run(until=env.sim.now + 20.0)
        relays = sum(d.mcast.relays for d in env.daemons.values())
        rows.append(
            {
                "min_routers": min_routers,
                "elected": len(routers),
                "delivered": len(delivered),
                "relay_ops": relays,
            }
        )
    return rows
