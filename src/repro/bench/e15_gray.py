"""E15 — gray-failure detection: differential health vs heartbeat-only.

The gray chaos scenario (:func:`repro.robust.chaos.run_gray`) drives the
dual-homed chaos site through four simultaneous gray faults — a zombie
RC replica (CPU crawls, daemon heartbeats fine), a worker with ~30s of
clock skew, a bit-flipping segment, and a one-way core link cut — while
closed-loop catalog sessions measure goodput. None of the faults is
fail-stop; the lease detector alone cannot see any of them.

Each seed runs twice:

* **differential** — health boards score rpc/srudp/digest/heartbeat
  outcomes per (peer, iface), quarantine crossing peers, steer the path
  selector, and gate the Guardian's probe-before-death;
* **heartbeat-only** — the boards are inert and the Guardian trusts a
  lapsed lease without probing: the classic fail-stop detector.

Reported per (config, seed): goodput inside the zombie window, the
latency from zombie onset to its first quarantine, false lease-inferred
deaths, deaths averted by probe-before-death, and corruption accounting.
The experiment's claims: the differential detector quarantines the
zombie in seconds, declares **zero** false deaths where the baseline
declares many (every host stays up the whole run), and holds at least
``2x`` the baseline's goodput through the zombie window — detection
quality is goodput, not just alarms.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: (config name, differential detector on?).
CONFIGS = (("differential", True), ("heartbeat-only", False))


def gray_goodput(seeds: Sequence[int] = (1, 2, 3),
                 duration: float = 40.0) -> List[Dict]:
    """Run the E15 matrix; one metrics row per (config, seed)."""
    from repro.robust.chaos import run_gray

    rows: List[Dict] = []
    for cname, differential in CONFIGS:
        for seed in seeds:
            report = run_gray(seed, duration=duration,
                              differential=differential, flight=False)
            det = report["detection_s"]
            rows.append({
                "config": cname,
                "seed": seed,
                "goodput_ops_s": round(report["goodput_ops_s"], 2),
                "detection_s": round(det, 2) if det is not None else None,
                "false_lease_deaths": report["false_lease_deaths"],
                "deaths_declared": report["deaths_declared"],
                "probe_saved": report["probe_saved"],
                "ckpt_rejected": report["ckpt_rejected"],
                "corrupt_dropped": report["rx_corrupt_dropped"],
                "corrupt_delivered": report["corrupt_delivered"],
                "ops_ok": report["ops_ok"],
                "ops_failed": report["ops_failed"],
                "sessions": report["sessions"],
                "completed_ok": report["ok"] if differential else None,
            })
    return rows


def _mean(vals: List[float]) -> Optional[float]:
    vals = [v for v in vals if v is not None]
    return sum(vals) / len(vals) if vals else None


def summarize(rows: List[Dict]) -> Dict:
    """Cross-seed aggregates and the headline goodput ratio."""
    by = {c: [r for r in rows if r["config"] == c] for c, _ in CONFIGS}
    diff, base = by["differential"], by["heartbeat-only"]
    g_diff = _mean([r["goodput_ops_s"] for r in diff])
    g_base = _mean([r["goodput_ops_s"] for r in base])
    return {
        "goodput_differential_ops_s": round(g_diff, 2) if g_diff else None,
        "goodput_heartbeat_only_ops_s": round(g_base, 2) if g_base else None,
        "goodput_ratio": (round(g_diff / g_base, 2)
                          if g_diff and g_base else None),
        "detection_s_mean": round(
            _mean([r["detection_s"] for r in diff]) or 0.0, 2),
        "false_deaths_differential": sum(r["false_lease_deaths"] for r in diff),
        "false_deaths_heartbeat_only": sum(r["false_lease_deaths"] for r in base),
    }


def format_gray_bench(rows: List[Dict]) -> str:
    """Human-readable E15 table for the CLI."""
    s = summarize(rows)
    lines = [
        "== E15: gray-failure detection — differential vs heartbeat-only ==",
        f"  {'config':16s} {'seed':>4s} {'goodput/s':>9s} {'detect':>7s} "
        f"{'false_deaths':>12s} {'saved':>6s} {'corrupt':>12s}",
    ]
    for r in rows:
        det = f"{r['detection_s']:.2f}s" if r["detection_s"] is not None else "never"
        lines.append(
            f"  {r['config']:16s} {r['seed']:4d} {r['goodput_ops_s']:9.1f} "
            f"{det:>7s} {r['false_lease_deaths']:12d} {r['probe_saved']:6d} "
            f"{r['corrupt_delivered']}/{r['corrupt_dropped']:d} del/drop"
        )
    lines += [
        "",
        f"  goodput through the zombie window: "
        f"{s['goodput_differential_ops_s']} vs "
        f"{s['goodput_heartbeat_only_ops_s']} ops/s "
        f"({s['goodput_ratio']}x)",
        f"  zombie detection latency (mean): {s['detection_s_mean']}s "
        f"(heartbeat-only: never)",
        f"  false deaths: {s['false_deaths_differential']} vs "
        f"{s['false_deaths_heartbeat_only']} "
        f"(no host ever crashed: every death is false)",
    ]
    return "\n".join(lines)
