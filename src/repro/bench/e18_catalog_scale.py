"""E18 — catalog scale: a sharded federation vs full replication.

    "SNIPE is intended to scale to thousands of hosts spread across the
    national infrastructure" (§1) — and to catalogs far past what one
    replica group can serve.

The un-sharded catalog replicates every name on every replica: capacity
is one group's capacity no matter how many hosts the site has. The
sharded federation (:mod:`repro.rcds.shard`) partitions the namespace by
prefix across per-shard replica groups, so serving capacity grows with
the number of groups while clients keep the exact RCClient API through
the map-routed facade.

Scenario: one LAN site with 3 root/directory hosts, 12 shard placement
hosts, and a pool of client hosts. The catalog is preloaded to N names
(``10^4``–``10^5`` by default; pass ``10^6`` for the full curve) as
already-converged register state — the preload models a catalog that
grew over months, not a write benchmark — then a closed-loop client mix
of lookups (70%), QUORUM updates (20%), creates (5%), and directory
prefix queries (5%) churns it for a measurement window. Both configs
run on identical hardware and identical workloads:

* **sharded** — the namespace pre-carved into ``n_shards`` prefix
  shards, each with its own 3-replica group on the placement hosts;
  clients route through :class:`ShardedRCClient`.
* **full-replication** — the classic 3-replica group on the root hosts
  holding every name; clients use the plain :class:`RCClient`.

Reported per row: lookup p50/p99 and update/query p99 latency,
per-second served rates, failed ops, and lookup misses (a preloaded
name that read empty — must be zero without migration in flight).

``split_under_load`` is the second half of the experiment: one shard
preloaded past its split threshold, so the director splits it *while
the closed-loop load runs*. Reported: when the split published, how
long the handoff took to drain the parent, lookup p99 across the run,
redirects/redirect-retries (the epoch fence at work), and the count of
lookup misses inside the migration window — the availability cost of
moving a live namespace.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.environment import SnipeEnvironment
from repro.rcds.client import QUORUM, ConsistencyError
from repro.rcds.records import Entry

#: Per-request service cost at every catalog server (§E9 uses the same
#: single-threaded-replica model): the capacity unit the two configs
#: contrast. 2ms => one replica serves ~500 requests/s.
SERVICE_TIME = 0.002

#: Names per directory level in the synthetic namespace.
DIR_WIDTH = 100

#: Client op mix (cumulative): lookup / update / create / query.
MIX_LOOKUP, MIX_UPDATE, MIX_CREATE = 0.70, 0.90, 0.95

#: Mean think time between a session's ops (closed loop).
THINK = 0.006

#: Origin id stamped on preloaded register state. Never a real server
#: id, so anti-entropy has no records to ship for it — the preload is
#: born converged.
PRELOAD_ORIGIN = "preload"


def _uri(i: int, n_shards: int) -> str:
    """Deterministic name for preload index *i*: group (the shard radix),
    then a directory level ~DIR_WIDTH names wide (the query surface)."""
    return (f"snipe://app/g{i % n_shards}"
            f"/d{(i // n_shards) // DIR_WIDTH:05d}/n{i:09d}")


def _site(seed: int, n_client_hosts: int,
          n_placement: int = 12) -> Tuple[SnipeEnvironment, List[str], List[str]]:
    """One LAN: 3 root hosts, the shard placement pool, client hosts.
    Both configs build the identical site; full replication just leaves
    the placement pool idle (that asymmetry *is* the experiment)."""
    env = SnipeEnvironment(seed=seed)
    env.add_segment("lan")
    for name in ("r0", "r1", "r2"):
        env.add_host(name, segments=["lan"])
    placement = [f"n{i}" for i in range(n_placement)]
    for name in placement:
        env.add_host(name, segments=["lan"])
    clients = [f"cl{i}" for i in range(n_client_hosts)]
    for name in clients:
        env.add_host(name, segments=["lan"])
    return env, placement, clients


def _preload(stores, indices: Sequence[int], n_shards: int) -> None:
    """Install identical, already-converged register state on every
    replica of one group. Entries carry a synthetic origin with no log
    records behind it, so no anti-entropy or journal traffic follows —
    and one Entry object is shared across the group's replicas."""
    entries = [(_uri(i, n_shards), "v",
                Entry(value=0, lamport=1, origin=PRELOAD_ORIGIN, wall=0.0))
               for i in indices]  # per-group index order is already sorted
    for store in stores:
        store.install_entries(entries)


def _pct(vals: List[float], q: float) -> Optional[float]:
    if not vals:
        return None
    vals = sorted(vals)
    return vals[min(len(vals) - 1, int(q * len(vals)))]


def _ms(v: Optional[float]) -> Optional[float]:
    return round(v * 1000, 2) if v is not None else None


def _sessions(env: SnipeEnvironment, client_hosts: List[str],
              sessions_per_host: int, n_names: int, n_shards: int,
              t0: float, t1: float) -> Dict:
    """Start the closed-loop client mix; returns the shared tally the
    sessions fill in (latency lists + op counters)."""
    n_dirs = max(1, (n_names // n_shards) // DIR_WIDTH)
    state: Dict = {
        "next_i": n_names, "failed": 0, "misses": 0,
        "lookup": [], "update": [], "create": [], "query": [],
    }
    sim = env.sim

    def session(idx: int, host: str):
        client = env.rc_client(host)
        rng = sim.rng.stream(f"e18.session.{idx}")
        yield sim.timeout(max(0.0, t0 - sim.now) + rng.uniform(0.0, 0.1))
        while sim.now < t1:
            r = rng.random()
            t_op = sim.now
            try:
                if r < MIX_LOOKUP:
                    i = rng.randrange(state["next_i"])
                    got = yield client.lookup(_uri(i, n_shards))
                    state["lookup"].append(sim.now - t_op)
                    if i < n_names and not got:
                        state["misses"] += 1
                elif r < MIX_UPDATE:
                    i = rng.randrange(n_names)
                    yield client.update(_uri(i, n_shards), {"v": idx},
                                        consistency=QUORUM)
                    state["update"].append(sim.now - t_op)
                elif r < MIX_CREATE:
                    i = state["next_i"]
                    state["next_i"] = i + 1
                    yield client.update(_uri(i, n_shards), {"v": 0},
                                        consistency=QUORUM)
                    state["create"].append(sim.now - t_op)
                else:
                    g = rng.randrange(n_shards)
                    d = rng.randrange(n_dirs)
                    yield client.query(f"snipe://app/g{g}/d{d:05d}/")
                    state["query"].append(sim.now - t_op)
            except ConsistencyError:
                state["failed"] += 1
            yield sim.timeout(THINK * (0.5 + rng.random()))

    for j, host in enumerate(client_hosts):
        for s in range(sessions_per_host):
            sim.process(session(j * sessions_per_host + s, host),
                        name=f"e18-session:{host}.{s}")
    return state


def _row(config: str, n_names: int, n_shards: int, n_servers: int,
         n_sessions: int, window: float, preload_s: float, wall_s: float,
         state: Dict, redirects: int) -> Dict:
    served = sum(len(state[k]) for k in ("lookup", "update", "create", "query"))
    return {
        "config": config,
        "names": n_names,
        "shards": n_shards,
        "servers": n_servers,
        "clients": n_sessions,
        "window_s": window,
        "lookups": len(state["lookup"]),
        "updates": len(state["update"]),
        "creates": len(state["create"]),
        "queries": len(state["query"]),
        "failed": state["failed"],
        "misses": state["misses"],
        "ops_per_s": round(served / window, 1),
        "lookups_per_s": round(len(state["lookup"]) / window, 1),
        "updates_per_s": round(len(state["update"]) / window, 1),
        "lookup_p50_ms": _ms(_pct(state["lookup"], 0.50)),
        "lookup_p99_ms": _ms(_pct(state["lookup"], 0.99)),
        "update_p99_ms": _ms(_pct(state["update"], 0.99)),
        "query_p99_ms": _ms(_pct(state["query"], 0.99)),
        "redirects": redirects,
        "preload_s": round(preload_s, 2),
        "wall_s": round(wall_s, 2),
    }


def _run_config(config: str, n_names: int, n_shards: int, window: float,
                n_client_hosts: int, sessions_per_host: int,
                seed: int) -> Dict:
    t_wall = time.perf_counter()
    env, placement, client_hosts = _site(seed, n_client_hosts)
    if config == "sharded":
        env.add_rc_servers(["r0", "r1", "r2"], sharded=True,
                           service_time=SERVICE_TIME)
        mgr = env.enable_sharding(
            placement_hosts=placement, replicas_per_shard=3,
            split_threshold=None, server_kw=dict(service_time=SERVICE_TIME))
        for k in range(n_shards):
            mgr.add_shard(f"g{k}", (f"snipe://app/g{k}/",))
        mgr.start()
        mgr.seed_map()
        t_pre = time.perf_counter()
        for k in range(n_shards):
            stores = [s.store for s in mgr.servers[f"g{k}"].values()]
            _preload(stores, range(k, n_names, n_shards), n_shards)
        n_servers = 3 + 3 * n_shards
    else:
        servers = env.add_rc_servers(["r0", "r1", "r2"],
                                     service_time=SERVICE_TIME)
        mgr = None
        t_pre = time.perf_counter()
        _preload([s.store for s in servers], range(n_names), n_shards)
        n_servers = 3
    preload_s = time.perf_counter() - t_pre
    t0, t1 = 1.0, 1.0 + window
    state = _sessions(env, client_hosts, sessions_per_host,
                      n_names, n_shards, t0, t1)
    env.sim.run(until=t1 + 3.0)
    redirects = (sum(s.redirects for s in mgr.all_servers().values())
                 if mgr is not None else 0)
    return _row(config, n_names, n_shards, n_servers,
                n_client_hosts * sessions_per_host, window,
                preload_s, time.perf_counter() - t_wall, state, redirects)


def catalog_scale(
    name_counts: Sequence[int] = (10_000, 100_000),
    n_shards: int = 4,
    window: float = 20.0,
    n_client_hosts: int = 8,
    sessions_per_host: int = 4,
    seed: int = 1,
) -> List[Dict]:
    """The E18 matrix: one row per (config, name count)."""
    rows: List[Dict] = []
    for n_names in name_counts:
        for config in ("sharded", "full-replication"):
            rows.append(_run_config(config, n_names, n_shards, window,
                                    n_client_hosts, sessions_per_host, seed))
    return rows


def split_under_load(
    seed: int = 1,
    n_names: int = 3_000,
    split_threshold: Optional[int] = None,
    window: float = 30.0,
    n_client_hosts: int = 4,
    sessions_per_host: int = 2,
    n_shards: int = 4,
    instrument=None,
) -> Dict:
    """One shard preloaded past its threshold splits under live load.

    ``n_shards`` here only shapes the *names* (the radix the split plan
    bites on); the catalog starts as a single ``app`` shard owning the
    whole ``snipe://app/`` prefix. The threshold defaults to 2/3 of the
    preload so one split suffices (children land under it)."""
    if split_threshold is None:
        split_threshold = (2 * n_names) // 3
    t_wall = time.perf_counter()
    env, placement, client_hosts = _site(seed, n_client_hosts)
    if instrument is not None:
        instrument(env.sim)  # e.g. capture sim for a metrics export
    env.add_rc_servers(["r0", "r1", "r2"], sharded=True,
                       service_time=SERVICE_TIME)
    mgr = env.enable_sharding(
        placement_hosts=placement, replicas_per_shard=3,
        split_threshold=split_threshold,
        server_kw=dict(service_time=SERVICE_TIME))
    mgr.add_shard("app", ("snipe://app/",))
    mgr.start()
    mgr.seed_map()
    t_pre = time.perf_counter()
    parent_group = list(mgr.servers["app"].values())
    _preload([s.store for s in parent_group], range(n_names), n_shards)
    preload_s = time.perf_counter() - t_pre

    sim = env.sim
    t0, t1 = 1.0, 1.0 + window
    state = _sessions(env, client_hosts, sessions_per_host,
                      n_names, n_shards, t0, t1)
    marks = {"split_at": None, "drained_at": None}

    def monitor():
        while sim.now < t1:
            yield sim.timeout(0.2)
            if marks["split_at"] is None and mgr.splits >= 1:
                marks["split_at"] = sim.now
            if (marks["split_at"] is not None and marks["drained_at"] is None
                    and all(s.store.live_uri_count() == 0
                            for s in parent_group)):
                marks["drained_at"] = sim.now

    sim.process(monitor(), name="e18-split-monitor")
    sim.run(until=t1 + 3.0)
    clients = [env.rc_client(h) for h in client_hosts]
    return {
        "names": n_names,
        "split_threshold": split_threshold,
        "splits": mgr.splits,
        "epoch": mgr.map.epoch,
        "shards": len(mgr.map.shards),
        "split_at_s": (round(marks["split_at"], 2)
                       if marks["split_at"] is not None else None),
        "drain_s": (round(marks["drained_at"] - marks["split_at"], 2)
                    if marks["drained_at"] is not None else None),
        "lookups": len(state["lookup"]),
        "updates": len(state["update"]) + len(state["create"]),
        "queries": len(state["query"]),
        "failed": state["failed"],
        "misses": state["misses"],
        "lookup_p99_ms": _ms(_pct(state["lookup"], 0.99)),
        "redirects": sum(s.redirects for s in mgr.all_servers().values()),
        "redirect_retries": sum(c.redirect_retries for c in clients),
        "handoffs": sum(s.handoffs for s in parent_group),
        "wall_s": round(time.perf_counter() - t_wall, 2),
        "preload_s": round(preload_s, 2),
    }


def summarize(rows: List[Dict], split: Optional[Dict] = None) -> Dict:
    """Cross-row aggregates: the capacity headline at the largest scale
    and the flat-latency claim across scales."""
    sharded = [r for r in rows if r["config"] == "sharded"]
    base = [r for r in rows if r["config"] == "full-replication"]
    top_s = max(sharded, key=lambda r: r["names"]) if sharded else None
    top_b = max(base, key=lambda r: r["names"]) if base else None
    out: Dict = {
        "max_names": top_s["names"] if top_s else 0,
        "speedup_ops": (round(top_s["ops_per_s"] / top_b["ops_per_s"], 2)
                        if top_s and top_b and top_b["ops_per_s"] else None),
        "sharded_p99_ms": top_s["lookup_p99_ms"] if top_s else None,
        "baseline_p99_ms": top_b["lookup_p99_ms"] if top_b else None,
        "sharded_misses": sum(r["misses"] for r in sharded),
        "baseline_misses": sum(r["misses"] for r in base),
    }
    if len(sharded) > 1:
        lo = min(sharded, key=lambda r: r["names"])
        out["p99_flat_across_scales"] = (
            top_s["lookup_p99_ms"] is not None
            and lo["lookup_p99_ms"] is not None
            and top_s["lookup_p99_ms"] <= 3 * max(lo["lookup_p99_ms"], 1.0))
    if split is not None:
        out["split_drained"] = split["drain_s"] is not None
        out["split_miss_rate"] = (round(split["misses"]
                                        / max(split["lookups"], 1), 4))
    return out


def format_catalog_bench(rows: List[Dict],
                         split: Optional[Dict] = None) -> str:
    """Human-readable E18 table for the CLI."""
    s = summarize(rows, split)
    lines = [
        "== E18: catalog scale — sharded federation vs full replication ==",
        f"  {'config':17s} {'names':>8s} {'srv':>4s} {'ops/s':>7s} "
        f"{'look/s':>7s} {'p50':>7s} {'p99':>8s} {'upd p99':>8s} "
        f"{'fail':>5s} {'miss':>5s}",
    ]
    for r in rows:
        lines.append(
            f"  {r['config']:17s} {r['names']:8d} {r['servers']:4d} "
            f"{r['ops_per_s']:7.0f} {r['lookups_per_s']:7.0f} "
            f"{r['lookup_p50_ms']:6.1f}m {r['lookup_p99_ms']:7.1f}m "
            f"{r['update_p99_ms']:7.1f}m {r['failed']:5d} {r['misses']:5d}"
        )
    lines += [
        "",
        f"  at {s['max_names']} names: sharded serves "
        f"{s['speedup_ops']}x the ops/s of full replication "
        f"(p99 {s['sharded_p99_ms']}ms vs {s['baseline_p99_ms']}ms)",
    ]
    if split is not None:
        drain = (f"handoff drained in {split['drain_s']}s"
                 if split["drain_s"] is not None else "handoff NOT drained")
        lines += [
            "",
            "  split under load: "
            f"{split['splits']} split(s) at t={split['split_at_s']}s, {drain}",
            f"    {split['handoffs']} names handed off, "
            f"{split['redirects']} fenced redirects, "
            f"{split['redirect_retries']} client re-routes, "
            f"{split['misses']}/{split['lookups']} lookups missed "
            f"mid-migration, p99 {split['lookup_p99_ms']}ms",
        ]
    return "\n".join(lines)
