"""E6 — zero message loss during migration (§5.6).

    "Processes with open communications are guaranteed no loss of data
    while migration is in progress."

Workload: a streamer sends a numbered message every 50 ms to a collector
that migrates between hosts k times mid-stream. We count losses,
duplicates, and reorderings at the application level, and measure each
migration's service pause (last message consumed before the hop → first
consumed after).

Expected: 0 lost, 0 duplicated for every hop count; pauses bounded by
checkpoint + respawn + re-registration (well under a second here).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.environment import SnipeEnvironment
from repro.daemon.tasks import TaskSpec


def migration_loss(
    hop_counts: Sequence[int] = (0, 1, 2, 3),
    n_msgs: int = 60,
    send_interval: float = 0.05,
    seed: int = 0,
) -> List[Dict]:
    """Rows: {hops, sent, received, lost, duplicated, reordered,
    max_pause_ms} per hop count."""
    rows: List[Dict] = []
    for hops in hop_counts:
        env = SnipeEnvironment.lan_site(n_hosts=max(4, hops + 2), seed=seed, mcast=False)
        received: List[int] = []
        consume_times: List[float] = []
        hop_times: List[float] = []

        @env.program("collector")
        def collector(ctx, total, hop_at):
            got = ctx.checkpoint_state.get("got", 0)
            hops_done = ctx.checkpoint_state.get("hops_done", 0)
            while got < total:
                msg = yield ctx.recv(tag="data")
                received.append(msg.payload)
                consume_times.append(ctx.sim.now)
                got += 1
                ctx.checkpoint_state["got"] = got
                target_hop = hop_at.get(got)
                if target_hop is not None and hops_done == target_hop:
                    ctx.checkpoint_state["hops_done"] = hops_done + 1
                    hop_times.append(ctx.sim.now)
                    dest = f"h{(target_hop % (len(ctx.host.topology.hosts) - 1)) + 1}"
                    if (yield ctx.migrate(dest)):
                        return "migrated"
                    hops_done += 1
            return "complete"

        @env.program("streamer")
        def streamer(ctx, dst, total, interval):
            for i in range(total):
                yield ctx.send(dst, i, tag="data")
                yield ctx.sleep(interval)
            return "streamed"

        hop_at = {
            (i + 1) * n_msgs // (hops + 1): i for i in range(hops)
        }
        info = env.spawn(
            TaskSpec(program="collector", params={"total": n_msgs, "hop_at": hop_at}),
            on="h0",
        )
        env.settle(0.5)
        env.spawn(
            TaskSpec(
                program="streamer",
                params={"dst": info.urn, "total": n_msgs, "interval": send_interval},
            ),
            on=f"h{max(1, hops + 1)}",
        )
        env.run(until=600.0)
        lost = n_msgs - len(set(received))
        duplicated = len(received) - len(set(received))
        reordered = sum(1 for a, b in zip(received, received[1:]) if b < a)
        # Pause: longest consumption gap that brackets a migration.
        max_pause = 0.0
        for t_hop in hop_times:
            after = [t for t in consume_times if t > t_hop]
            if after:
                max_pause = max(max_pause, min(after) - t_hop)
        rows.append(
            {
                "hops": hops,
                "sent": n_msgs,
                "received": len(received),
                "lost": lost,
                "duplicated": duplicated,
                "reordered": reordered,
                "max_pause_ms": max_pause * 1e3,
            }
        )
    return rows
