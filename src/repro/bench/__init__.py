"""Benchmark harnesses: one module per experiment in EXPERIMENTS.md.

Each harness builds its workload on the simulator, runs it, and returns
plain-dict rows suitable for printing as the paper's tables/series.
The thin pytest-benchmark wrappers live in ``benchmarks/``; these
modules are also importable directly (the examples use them too).
"""

from repro.bench.topologies import dual_media_pair, two_mpp_site, wan_site

__all__ = ["dual_media_pair", "two_mpp_site", "wan_site"]
