"""E13 — bulk distribution: relay tree + multi-source vs naive unicast.

    "The network bandwidth available ... must be used as efficiently
    as possible" (ROADMAP north star; PAPER §3-4 replicated servers,
    multi-path communication)

Scenario: one object seeded on a backbone root must reach every member
host of a racked site (each rack its own segment behind a forwarding
gateway). Two strategies face the same topology and seed:

* **unicast** — every destination reads the whole object straight from
  the root: N copies cross the backbone, serialized on the root's link;
* **tree** — the ``repro.bulk`` pipelined relay tree: one pull per rack
  crosses the backbone, relays forward chunk *k* while receiving *k+1*,
  and completed peers announce themselves as extra sources.

Measured per (hosts, strategy): completion wall-clock, aggregate
goodput (delivered bytes / elapsed), chunk retries, and whether every
per-host digest verified. A third configuration kills a rack's relay
head mid-transfer (recovering it after one second) and must still
complete everywhere with all digests verified — the mid-object
failover + resume claim. The shape assertion is the data-plane claim:
the relay tree beats naive unicast by >= 3x aggregate goodput at 16
hosts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bulk.distribute import build_relay_tree
from repro.bulk.testbed import build_bulk_site, make_payload

#: Rack layouts per total host count (racks, hosts per rack).
LAYOUTS = {8: (4, 2), 16: (4, 4), 32: (4, 8)}

#: Chunk size used by E13: small enough that even the 8-host run moves
#: a few dozen chunks per host, so pipelining is actually exercised.
CHUNK = 16384

#: How long the killed relay stays down before recovering.
CRASH_OUTAGE = 1.0


def _one_run(
    hosts: int, strategy: str, crash: bool, seed: int, object_kb: int
) -> Dict:
    racks, per_rack = LAYOUTS[hosts]
    env, root, dests = build_bulk_site(seed=seed, racks=racks, per_rack=per_rack)
    payload = make_payload(object_kb * 1024, CHUNK)
    dist = env.bulk_distributor(root)
    victim: Optional[str] = None
    if crash:
        parents = build_relay_tree(env.topology, root, dests, fanout=2)
        victim = sorted(d for d, p in parents.items() if p == root)[0]

    def go(sim):
        d = dist.distribute(
            "weights", payload, dests, chunk_size=CHUNK,
            strategy=strategy, deadline=120.0,
        )
        if victim is not None:
            # Kill the rack head once it is genuinely mid-transfer.
            while env.bulk_services[victim].store.count("weights") == 0:
                yield sim.timeout(0.002)
            env.topology.hosts[victim].crash()
            yield sim.timeout(CRASH_OUTAGE)
            env.topology.hosts[victim].recover()
        return (yield d)

    report = env.sim.run(until=env.sim.process(go(env.sim)))
    return {
        "hosts": hosts,
        "strategy": strategy,
        "crash": crash,
        "object_kb": object_kb,
        "completed": report["completed"],
        "all_verified": report["all_verified"],
        "elapsed_s": round(report["elapsed"], 3),
        "goodput_mbs": round(report["aggregate_goodput"] / 1e6, 2),
        "chunk_retries": report["chunk_retries"],
        "crashes": sum(
            r.get("crashes", 0) for r in report["per_dest"].values()
        ),
    }


def bulk_distribution(
    host_counts: Sequence[int] = (8, 16, 32),
    object_kb: int = 1024,
    seed: int = 1,
) -> List[Dict]:
    """Unicast vs relay tree (and tree + relay crash); returns rows."""
    rows: List[Dict] = []
    for hosts in host_counts:
        unicast = _one_run(hosts, "unicast", False, seed, object_kb)
        tree = _one_run(hosts, "tree", False, seed, object_kb)
        crash = _one_run(hosts, "tree", True, seed, object_kb)
        speedup = (
            tree["goodput_mbs"] / unicast["goodput_mbs"]
            if unicast["goodput_mbs"] else 0.0
        )
        unicast["speedup_vs_unicast"] = 1.0
        tree["speedup_vs_unicast"] = round(speedup, 2)
        crash["speedup_vs_unicast"] = round(
            crash["goodput_mbs"] / unicast["goodput_mbs"]
            if unicast["goodput_mbs"] else 0.0, 2)
        rows.extend([unicast, tree, crash])
    return rows
