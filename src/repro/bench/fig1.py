"""E1 / Fig. 1 — "Bandwidth in MegaBytes/Second offered to SNIPE client
applications on various media."

The paper plots achieved bandwidth vs message size for SNIPE's transports
on 100 Mbit Ethernet and 155 Mbit ATM, plus the experimental Ethernet
multicast. We reproduce every series: for each (medium, protocol) pair,
stream messages of increasing size between two hosts (or one-to-four for
multicast) and report goodput at the receiver.

Expected shape: throughput rises with message size, saturating near each
medium's payload ceiling (Ethernet ≈ 12.2 MB/s, ATM ≈ 17.6 MB/s of the
19.4 MB/s line rate after the cell tax); SRUDP edges out TCP (32- vs
40-byte headers, no handshake); multicast delivers to N receivers for
one serialisation but finishes no faster than the slowest member.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.net.media import ATM_155, ETHERNET_100, Medium
from repro.net.topology import Topology
from repro.sim.kernel import Simulator
from repro.transport.multicast import EthernetMulticast
from repro.transport.srudp import SrudpEndpoint
from repro.transport.stream import StreamEndpoint

#: Fig. 1's x-axis: message sizes from 4 KB to 4 MB.
DEFAULT_SIZES = [4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304]


def _measure_unicast(protocol: str, medium: Medium, size: int, seed: int) -> float:
    """Goodput (bytes/s) for one message size on a dedicated pair."""
    sim = Simulator(seed=seed)
    topo = Topology(sim)
    seg = topo.add_segment(medium.name, medium)
    a = topo.add_host("a")
    b = topo.add_host("b")
    topo.connect(a, seg)
    topo.connect(b, seg)
    cls = SrudpEndpoint if protocol == "srudp" else StreamEndpoint
    tx = cls(a, 5000)
    rx = cls(b, 5000)
    arrivals: List[float] = []

    def receiver():
        while True:
            yield rx.recv()
            arrivals.append(sim.now)

    sim.process(receiver(), name="rx")

    def sender():
        # Warm-up message settles the TCP handshake and SRUDP RTT
        # estimate, then the measured transfer.
        yield tx.send("b", 5000, None, min(size, 16_384))
        start = sim.now
        yield tx.send("b", 5000, None, size)
        return start

    p = sim.process(sender(), name="tx")
    start = sim.run(until=p)
    sim.run(until=sim.now + 1.0)
    elapsed = arrivals[-1] - start
    return size / elapsed if elapsed > 0 else 0.0


def _measure_multicast(size: int, n_receivers: int, seed: int) -> float:
    """Group goodput: bytes delivered to every member / completion time."""
    sim = Simulator(seed=seed)
    topo = Topology(sim)
    seg = topo.add_segment(ETHERNET_100.name, ETHERNET_100)
    hosts = []
    for i in range(n_receivers + 1):
        h = topo.add_host(f"h{i}")
        topo.connect(h, seg)
        hosts.append(h)
    eps = [EthernetMulticast(h, 7000, seg.name) for h in hosts]

    def drain(ep):
        while True:
            yield ep.recv()

    for ep in eps[1:]:
        sim.process(drain(ep), name="drain")
    members = [h.name for h in hosts]

    def sender():
        yield eps[0].send_group(members, 7000, None, min(size, 16_384))  # warm-up
        start = sim.now
        yield eps[0].send_group(members, 7000, None, size)
        return sim.now - start

    p = sim.process(sender(), name="mcast-tx")
    elapsed = sim.run(until=p)
    return size / elapsed if elapsed > 0 else 0.0


def fig1_bandwidth(
    sizes: Optional[Sequence[int]] = None,
    media: Sequence[Medium] = (ETHERNET_100, ATM_155),
    n_mcast_receivers: int = 4,
    seed: int = 0,
) -> List[Dict]:
    """Regenerate every Fig. 1 series; returns rows
    {series, medium, protocol, size, mbps}."""
    sizes = list(sizes or DEFAULT_SIZES)
    rows: List[Dict] = []
    for medium in media:
        for protocol in ("srudp", "tcp"):
            for size in sizes:
                bps = _measure_unicast(protocol, medium, size, seed)
                rows.append(
                    {
                        "series": f"{protocol}/{medium.name}",
                        "medium": medium.name,
                        "protocol": protocol,
                        "size": size,
                        "mbps": bps / 1e6,
                    }
                )
    for size in sizes:
        bps = _measure_multicast(size, n_mcast_receivers, seed)
        rows.append(
            {
                "series": f"mcast/{ETHERNET_100.name}",
                "medium": ETHERNET_100.name,
                "protocol": "mcast",
                "size": size,
                "mbps": bps / 1e6,
            }
        )
    return rows


def srudp_window_ablation(
    windows: Sequence[int] = (4, 16, 64, 256),
    size: int = 1_048_576,
    seed: int = 0,
) -> List[Dict]:
    """Ablation: SRUDP window size on a high bandwidth-delay medium.

    Small windows stall on the BDP; the curve should rise and flatten.
    """
    from repro.net.media import SERIAL_SAT

    rows = []
    for window in windows:
        sim = Simulator(seed=seed)
        topo = Topology(sim)
        seg = topo.add_segment("sat", SERIAL_SAT)
        a = topo.add_host("a")
        b = topo.add_host("b")
        topo.connect(a, seg)
        topo.connect(b, seg)
        tx = SrudpEndpoint(a, 5000, window=window)
        rx = SrudpEndpoint(b, 5000)
        done = {}

        def receiver():
            yield rx.recv()
            done["t"] = sim.now

        sim.process(receiver(), name="rx")
        p = tx.send("b", 5000, None, size)
        sim.run(until=p)
        sim.run(until=sim.now + 2.0)
        rows.append({"window": window, "size": size, "mbps": size / done["t"] / 1e6})
    return rows


def multicast_fanout_ablation(
    receiver_counts: Sequence[int] = (1, 2, 4, 8),
    size: int = 1_048_576,
    seed: int = 0,
) -> List[Dict]:
    """Ablation: group size vs the cost of multicast and of N unicasts.

    The experimental multicast's selling point: one serialisation reaches
    every receiver, so completion time is ~flat in N, while sequential
    unicasts scale linearly. Rows: {receivers, mcast_s, unicast_s, ratio}.
    """
    rows: List[Dict] = []
    for n in receiver_counts:
        # Multicast: one sender, n receivers on a shared Ethernet.
        mcast_bps = _measure_multicast(size, n, seed)
        mcast_s = size / mcast_bps
        # Unicast baseline: same topology, n sequential SRUDP transfers.
        sim = Simulator(seed=seed)
        topo = Topology(sim)
        seg = topo.add_segment(ETHERNET_100.name, ETHERNET_100)
        hosts = []
        for i in range(n + 1):
            h = topo.add_host(f"h{i}")
            topo.connect(h, seg)
            hosts.append(h)
        tx = SrudpEndpoint(hosts[0], 5000)
        rxs = [SrudpEndpoint(h, 5000) for h in hosts[1:]]

        def drain(ep):
            while True:
                yield ep.recv()

        for ep in rxs:
            sim.process(drain(ep), name="drain")

        def send_all():
            start = sim.now
            for h in hosts[1:]:
                yield tx.send(h.name, 5000, None, size)
            return sim.now - start

        p = sim.process(send_all(), name="unicast-all")
        unicast_s = sim.run(until=p)
        rows.append(
            {
                "receivers": n,
                "mcast_s": mcast_s,
                "unicast_s": unicast_s,
                "speedup": unicast_s / mcast_s,
            }
        )
    return rows
