"""Row formatting for benchmark output — the paper-style tables."""

from __future__ import annotations

from typing import Any, Dict, Sequence


def format_table(rows: Sequence[Dict[str, Any]], columns: Sequence[str] = ()) -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())

    def fmt(v: Any) -> str:
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    widths = {c: len(c) for c in cols}
    rendered = []
    for row in rows:
        line = {c: fmt(row.get(c, "")) for c in cols}
        rendered.append(line)
        for c in cols:
            widths[c] = max(widths[c], len(line[c]))
    out = ["  ".join(c.ljust(widths[c]) for c in cols)]
    out.append("  ".join("-" * widths[c] for c in cols))
    for line in rendered:
        out.append("  ".join(line[c].ljust(widths[c]) for c in cols))
    return "\n".join(out)


def print_table(title: str, rows: Sequence[Dict[str, Any]], columns: Sequence[str] = ()) -> None:
    print(f"\n=== {title} ===")
    print(format_table(rows, columns))
