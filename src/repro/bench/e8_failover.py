"""E8 — transparent route/interface failover (§6).

    "The system also provided the ability to switch routes/interfaces as
    links failed without user applications intervention."

Workload: a long transfer between dual-homed hosts (fast primary medium
+ slower secondary), with the primary segment cut mid-stream. We sample
received bytes in windows to produce a throughput timeline, and report
the failover gap (longest receive stall) and total completion.

Two policies: SNIPE multi-path (fails over) vs a single-interface
baseline (the transfer dies with the link).
"""

from __future__ import annotations

from typing import Dict, List

from repro.net.media import ATM_155, ETHERNET_100
from repro.net.topology import Topology
from repro.sim.kernel import Simulator
from repro.transport.srudp import SrudpEndpoint


def failover_timeline(
    total_bytes: int = 10_000_000,
    msg_size: int = 200_000,
    cut_at: float = 0.15,
    window: float = 0.05,
    seed: int = 0,
) -> Dict[str, List[Dict]]:
    """Returns {"timeline": rows, "summary": rows}.

    timeline rows: {policy, t, mbps}; summary rows: {policy, delivered,
    completed, failover_gap_ms, route_switches}.
    """
    timelines: List[Dict] = []
    summaries: List[Dict] = []
    for policy, dual in (("snipe-multipath", True), ("single-interface", False)):
        sim = Simulator(seed=seed)
        topo = Topology(sim)
        primary = topo.add_segment("atm", ATM_155)
        a = topo.add_host("a")
        b = topo.add_host("b")
        topo.connect(a, primary)
        topo.connect(b, primary)
        if dual:
            secondary = topo.add_segment("eth", ETHERNET_100)
            topo.connect(a, secondary)
            topo.connect(b, secondary)
        tx = SrudpEndpoint(a, 5000, max_retries=20)
        rx = SrudpEndpoint(b, 5000)
        arrivals: List[tuple] = []

        def receiver():
            while True:
                msg = yield rx.recv()
                arrivals.append((sim.now, msg.size))

        sim.process(receiver(), name="rx")
        n_msgs = total_bytes // msg_size
        state = {"done": 0, "failed": False}

        def sender():
            for _ in range(n_msgs):
                try:
                    yield tx.send("b", 5000, None, msg_size)
                    state["done"] += 1
                except Exception:
                    state["failed"] = True
                    return

        sim.process(sender(), name="tx")

        def cutter():
            yield sim.timeout(cut_at)
            primary.up = False
            topo.bump_version()

        sim.process(cutter(), name="cutter")
        sim.run(until=30.0)
        # Build the throughput timeline.
        horizon = max((t for t, _ in arrivals), default=0.0) + window
        t = 0.0
        while t < horizon:
            got = sum(size for at, size in arrivals if t <= at < t + window)
            timelines.append({"policy": policy, "t": round(t, 3), "mbps": got / window / 1e6})
            t += window
        # Failover gap: longest inter-arrival stall around the cut.
        gap = 0.0
        times = [at for at, _ in arrivals if at > cut_at]
        prev = max((at for at, _ in arrivals if at <= cut_at), default=cut_at)
        for at in times:
            gap = max(gap, at - prev)
            break  # first arrival after the cut defines the stall
        delivered = sum(size for _, size in arrivals)
        summaries.append(
            {
                "policy": policy,
                "delivered_mb": delivered / 1e6,
                "completed": state["done"] == n_msgs,
                "failover_gap_ms": gap * 1e3 if times else float("inf"),
                "route_switches": tx.paths.switches,
            }
        )
    return {"timeline": timelines, "summary": summaries}
