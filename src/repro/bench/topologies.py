"""Reusable topologies for benchmarks, integration tests and examples."""

from __future__ import annotations

from typing import List, Tuple

from repro.net.media import ATM_155, ETHERNET_100, MYRINET, WAN_T3, Medium
from repro.net.topology import Topology
from repro.pvm.pvmd import Pvmd
from repro.rcds.server import RCServer
from repro.sim.kernel import Simulator


def dual_media_pair(seed: int = 0, media: Tuple[Medium, ...] = (ETHERNET_100, ATM_155)):
    """Two hosts sharing one segment per medium (the Fig. 1 testbed)."""
    sim = Simulator(seed=seed)
    topo = Topology(sim)
    a = topo.add_host("a")
    b = topo.add_host("b")
    for medium in media:
        seg = topo.add_segment(medium.name, medium)
        topo.connect(a, seg)
        topo.connect(b, seg)
    return sim, topo, a, b


def wan_site(
    n_lans: int = 2,
    hosts_per_lan: int = 4,
    seed: int = 0,
    lan_medium: Medium = ETHERNET_100,
    wan_medium: Medium = WAN_T3,
):
    """Several LANs joined by a WAN backbone through gateway hosts.

    Returns (sim, topo, lans) where lans is a list of host lists; each
    LAN's host 0 is its gateway (also on the WAN segment).
    """
    sim = Simulator(seed=seed)
    topo = Topology(sim)
    wan = topo.add_segment("wan", wan_medium)
    lans: List[List] = []
    for l in range(n_lans):
        seg = topo.add_segment(f"lan{l}", lan_medium)
        hosts = []
        for i in range(hosts_per_lan):
            host = topo.add_host(f"l{l}h{i}", forwarding=(i == 0))
            topo.connect(host, seg)
            if i == 0:
                topo.connect(host, wan)
            hosts.append(host)
        lans.append(hosts)
    return sim, topo, lans


def two_mpp_site(nodes_per_mpp: int = 4, seed: int = 0, pvm: bool = True):
    """The §6.1 testbed: two MPPs with fast internal fabrics, joined by a
    WAN between their front-end nodes; RC replicas on both front ends
    plus one interior node; optionally a PVM virtual machine spanning
    everything (master on MPP A's front end — the fragile bit).

    Returns a dict with sim, topo, mpp_a, mpp_b (host lists),
    rc_replicas, and pvmds (host name -> Pvmd) when pvm=True.
    """
    sim = Simulator(seed=seed)
    topo = Topology(sim)
    wan = topo.add_segment("wan", WAN_T3)
    fabrics = {}
    mpps = {}
    for tag in ("a", "b"):
        fabric = topo.add_segment(f"mpp{tag}", MYRINET)
        fabrics[tag] = fabric
        hosts = []
        for i in range(nodes_per_mpp):
            # Nodes 0 and 1 are dual-homed gateways: losing one front end
            # (e.g. the PVM master) must not partition the site — exactly
            # the multi-path redundancy SNIPE is designed around.
            gateway = i <= 1 and nodes_per_mpp > 1
            host = topo.add_host(f"{tag}{i}", forwarding=gateway)
            topo.connect(host, fabric)
            if gateway or nodes_per_mpp == 1:
                topo.connect(host, wan)
            hosts.append(host)
        mpps[tag] = hosts
    # RC replicas: both front ends + one interior node of MPP A.
    rc_hosts = [mpps["a"][0], mpps["b"][0], mpps["a"][1]]
    rc_replicas = [(h.name, 385) for h in rc_hosts]
    for h in rc_hosts:
        RCServer(h, peers=[r for r in rc_replicas if r[0] != h.name])
    result = {
        "sim": sim,
        "topo": topo,
        "mpp_a": mpps["a"],
        "mpp_b": mpps["b"],
        "rc_replicas": rc_replicas,
        "pvmds": None,
    }
    if pvm:
        pvmds = {}
        master = Pvmd(mpps["a"][0], {})
        pvmds[mpps["a"][0].name] = master
        slaves = []
        for host in mpps["a"][1:] + mpps["b"]:
            slave = Pvmd(host, {}, master_host=master.host.name)
            pvmds[host.name] = slave
            slaves.append(slave)

        def boot():
            for s in slaves:
                yield s.join()

        sim.run(until=sim.process(boot(), name="pvm-boot"))
        result["pvmds"] = pvmds
    return result
