"""E16 — partition-heal reconvergence: bounded anti-entropy vs one blob.

The partition-heal scenario (:func:`repro.robust.chaos.run_partition_heal`)
splits the replicated catalog ``{c2} | {c0, c1}`` for a minute of
sustained per-key write/delete load — far past the replicas' staleness
horizon, so the majority side compacts its logs while the minority
diverges — then heals the cut and watches anti-entropy repair it.

Each seed runs twice on the partition shape:

* **bounded** — chunked sync (``max_sync_records`` per RPC on the BULK
  lane, vector exchange on CONTROL), log compaction with safe tombstone
  GC, and snapshot catch-up for peers behind the compaction horizon;
* **unbounded** — the legacy single-blob ``rc.sync`` exchange: no
  compaction, the whole divergence serialized into one payload that
  ships on the control lane and is applied in one head-of-line-blocking
  call on the single-threaded replica.

plus one **blackout** run per seed (bounded config): all three replicas
crash at once and must restore the full catalog — tombstones included —
from their digest-verified durable snapshots and journals.

Reported per row: reconvergence latency after heal, the largest sync
payload used to get there, control-plane p99/max measured by a dedicated
CONTROL-lane prober *during the heal window*, lost/failed-over lease
heartbeats, and snapshot catch-ups. The experiment's claims: the bounded
protocol reconverges with payloads at its configured bound, sub-100ms
heal-window control latency and zero heartbeat failovers, while the
baseline's payload grows with the whole divergence (two orders of
magnitude past the bound) and its heal storm knocks control probes and
daemon heartbeats into failover.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: (config name, bounded anti-entropy on?).
CONFIGS = (("bounded", True), ("unbounded", False))

#: Load knobs shared by every row: fast writers and 2 KiB values build a
#: divergence big enough that the unbounded baseline's blob visibly
#: storms, while the bounded protocol stays at its per-RPC record bound.
LOAD = dict(interval=0.1, value_pad=2048)


def _row(config: str, report: Dict) -> Dict:
    stats = report["replica_stats"]
    return {
        "config": config,
        "seed": report["seed"],
        "mode": report["mode"],
        "reconverge_s": (round(report["reconverge_s"], 2)
                         if report["reconverge_s"] is not None else None),
        "diverged_at_heal": report["diverged_at_heal"],
        "max_sync_batch": int(report["max_sync_batch"]),
        "bound": report["bound"],
        "control_p99_ms": (round(report["control_p99"] * 1000, 1)
                           if report["control_p99"] is not None else None),
        "control_max_ms": (round(report["control_max"] * 1000, 1)
                           if report["control_max"] is not None else None),
        "probe_failed": report["control_probe_failed"],
        "hb_failed": report["heartbeats_failed"],
        "hb_failovers": report["heartbeat_failovers"],
        "snapshot_catchups": report["snapshot_catchups"],
        "writes_ok": report["writes_ok"],
        "retired": report["retired"],
        "resurrected": len(report["resurrected"]),
        "restores": sum(s["restores"] for s in stats.values()),
        "ok": report["ok"],
    }


def heal_reconvergence(seeds: Sequence[int] = (1, 2, 3),
                       duration: float = 100.0) -> List[Dict]:
    """Run the E16 matrix; one metrics row per (config, seed)."""
    from repro.robust.chaos import run_partition_heal

    rows: List[Dict] = []
    for cname, bounded in CONFIGS:
        for seed in seeds:
            report = run_partition_heal(seed, duration=duration,
                                        bounded=bounded, flight=False, **LOAD)
            rows.append(_row(cname, report))
    for seed in seeds:
        report = run_partition_heal(seed, blackout=True, flight=False, **LOAD)
        rows.append(_row("blackout", report))
    return rows


def _mean(vals: List[float]) -> Optional[float]:
    vals = [v for v in vals if v is not None]
    return sum(vals) / len(vals) if vals else None


def summarize(rows: List[Dict]) -> Dict:
    """Cross-seed aggregates and the headline payload/latency contrast."""
    by = {c: [r for r in rows if r["config"] == c]
          for c in ("bounded", "unbounded", "blackout")}
    bnd, base, blk = by["bounded"], by["unbounded"], by["blackout"]
    peak_bnd = max((r["max_sync_batch"] for r in bnd), default=0)
    peak_base = max((r["max_sync_batch"] for r in base), default=0)
    return {
        "reconverge_bounded_s": round(
            _mean([r["reconverge_s"] for r in bnd]) or 0.0, 2),
        "reconverge_unbounded_s": round(
            _mean([r["reconverge_s"] for r in base]) or 0.0, 2),
        "max_batch_bounded": peak_bnd,
        "max_batch_unbounded": peak_base,
        "payload_ratio": (round(peak_base / peak_bnd, 1) if peak_bnd else None),
        "control_p99_bounded_ms": round(
            _mean([r["control_p99_ms"] for r in bnd]) or 0.0, 1),
        "control_p99_unbounded_ms": round(
            _mean([r["control_p99_ms"] for r in base]) or 0.0, 1),
        "hb_failovers_bounded": sum(r["hb_failovers"] for r in bnd),
        "hb_failovers_unbounded": sum(r["hb_failovers"] for r in base),
        "probe_failed_unbounded": sum(r["probe_failed"] for r in base),
        "blackout_restores": sum(r["restores"] for r in blk),
        "blackout_resurrected": sum(r["resurrected"] for r in blk),
        "bounded_all_ok": all(r["ok"] for r in bnd),
        "blackout_all_ok": all(r["ok"] for r in blk),
        "baseline_breaches_bound": peak_base > max(
            (r["bound"] or 0 for r in bnd), default=0),
    }


def format_heal_bench(rows: List[Dict]) -> str:
    """Human-readable E16 table for the CLI."""
    s = summarize(rows)
    lines = [
        "== E16: heal reconvergence — bounded anti-entropy vs one blob ==",
        f"  {'config':10s} {'seed':>4s} {'mode':>9s} {'reconv':>7s} "
        f"{'max_batch':>9s} {'ctl_p99':>8s} {'probe_f':>7s} {'hb_fo':>5s} "
        f"{'snap':>4s} {'resur':>5s}",
    ]
    for r in rows:
        rc = f"{r['reconverge_s']:.2f}s" if r["reconverge_s"] is not None else "never"
        p99 = (f"{r['control_p99_ms']:.0f}ms"
               if r["control_p99_ms"] is not None else "n/a")
        lines.append(
            f"  {r['config']:10s} {r['seed']:4d} {r['mode']:>9s} {rc:>7s} "
            f"{r['max_sync_batch']:9d} {p99:>8s} {r['probe_failed']:7d} "
            f"{r['hb_failovers']:5d} {r['snapshot_catchups']:4d} "
            f"{r['resurrected']:5d}"
        )
    lines += [
        "",
        f"  largest sync payload: {s['max_batch_bounded']} vs "
        f"{s['max_batch_unbounded']} records "
        f"({s['payload_ratio']}x the bound's peak)",
        f"  heal-window control p99: {s['control_p99_bounded_ms']}ms vs "
        f"{s['control_p99_unbounded_ms']}ms "
        f"({s['probe_failed_unbounded']} baseline probes failed outright)",
        f"  heartbeat failovers during heal: {s['hb_failovers_bounded']} vs "
        f"{s['hb_failovers_unbounded']}",
        f"  blackout recovery: {s['blackout_restores']} durable restores, "
        f"{s['blackout_resurrected']} resurrected deletes",
    ]
    return "\n".join(lines)
