"""E3 — availability through replication (§6).

    "SNIPE testbeds have been running at the University of Tennessee
    since autumn 1997 and due to replication have maintained an almost
    perfect level of availability."

We turn the observation into an experiment: hosts fail and recover as
independent Poisson processes; a client on a stable workstation performs
a metadata lookup every second. Availability = successful lookups /
attempts, as a function of replica count. Expected: a single catalog
server tracks raw host availability (mtbf/(mtbf+mttr)); 3 and 5 replicas
push lookup availability toward 100 % — the paper's "almost perfect".
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.net.failures import FailureInjector
from repro.net.media import ETHERNET_100
from repro.net.topology import Topology
from repro.rcds.client import RCClient
from repro.rcds.server import RCServer
from repro.sim.kernel import Simulator


def availability_vs_replicas(
    replica_counts: Sequence[int] = (1, 3, 5),
    horizon: float = 2_000.0,
    mtbf: float = 150.0,
    mttr: float = 30.0,
    lookup_interval: float = 1.0,
    seed: int = 0,
) -> List[Dict]:
    """Rows: {replicas, lookups, failures, availability, host_uptime}."""
    rows: List[Dict] = []
    for k in replica_counts:
        sim = Simulator(seed=seed + k)
        topo = Topology(sim)
        seg = topo.add_segment("lan", ETHERNET_100)
        server_hosts = []
        for i in range(k):
            h = topo.add_host(f"rc{i}")
            topo.connect(h, seg)
            server_hosts.append(h)
        client_host = topo.add_host("client")  # the stable workstation
        topo.connect(client_host, seg)
        replicas = [(h.name, 385) for h in server_hosts]
        for h in server_hosts:
            RCServer(h, peers=[r for r in replicas if r[0] != h.name], sync_interval=2.0)
        client = RCClient(client_host, replicas, rpc_timeout=0.4)
        injector = FailureInjector(sim, topo)
        injector.churn_hosts([h.name for h in server_hosts], mtbf, mttr, stop_at=horizon)

        stats = {"ok": 0, "fail": 0}

        def workload():
            yield client.update("urn:snipe:proc:probe", {"state": "running"})
            while sim.now < horizon:
                yield sim.timeout(lookup_interval)
                try:
                    yield client.lookup("urn:snipe:proc:probe")
                    stats["ok"] += 1
                except Exception:
                    stats["fail"] += 1

        sim.process(workload(), name="availability-probe")
        sim.run(until=horizon)
        # Measured host uptime from the failure log (for the baseline row).
        down_time = 0.0
        down_since: Dict[str, float] = {}
        for t, kind, who in injector.log:
            if kind == "host_down":
                down_since[who] = t
            elif kind == "host_up" and who in down_since:
                down_time += t - down_since.pop(who)
        for who, t in down_since.items():
            down_time += horizon - t
        host_uptime = 1.0 - down_time / (horizon * k)
        total = stats["ok"] + stats["fail"]
        rows.append(
            {
                "replicas": k,
                "lookups": total,
                "failures": stats["fail"],
                "availability": stats["ok"] / total if total else 0.0,
                "host_uptime": host_uptime,
            }
        )
    return rows
