"""E4 — resource manager scalability (§2.2).

    "The PVM resource manager uses centralized decision making. This
    would be a bottleneck for a very large virtual machine."

Workload: clients across the site issue spawn requests at a fixed
offered rate for a fixed window. Three systems under test:

* PVM — every request goes through the master pvmd's serialized spawn
  path (fixed per-request service time);
* SNIPE/1 — one SNIPE RM with the same service time (still centralized,
  but the metadata-driven design lets us add more);
* SNIPE/k — k redundant RMs, clients spreading over them.

Expected: with offered load past one server's capacity, the centralized
systems' latency grows without bound (queueing) while k RMs scale the
sustainable rate ~k×.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.environment import SnipeEnvironment
from repro.daemon.tasks import TaskSpec
from repro.pvm.pvmd import Pvmd
from repro.net.media import ETHERNET_100
from repro.net.topology import Topology
from repro.rm.client import RmClient
from repro.sim.kernel import Simulator

#: Per-request decision cost at the managers (both systems).
SERVICE_TIME = 0.02


def _noop_program(ctx, **_kw):
    yield ctx.sleep(0.001)
    return "ok"


def _run_snipe(n_hosts: int, n_rms: int, rate: float, window: float, seed: int) -> Dict:
    env = SnipeEnvironment.lan_site(
        n_hosts=n_hosts, n_rc=3, n_rm=0, seed=seed, mcast=False, settle=0.0
    )
    env.register_program("noop", _noop_program)
    for i in range(n_rms):
        env.add_rm(f"h{i}", port=3600 + i, service_time=SERVICE_TIME)
    env.settle(3.0)
    latencies: List[float] = []
    failures = [0]
    interval = 1.0 / rate
    start = env.sim.now
    clients = [RmClient(env.topology.hosts[f"h{i}"], env.rc_client(f"h{i}"))
               for i in range(min(4, n_hosts))]

    def one_request(client):
        t0 = env.sim.now
        try:
            yield client.request(TaskSpec(program="noop"), timeout=30.0)
            latencies.append(env.sim.now - t0)
        except Exception:
            failures[0] += 1

    def generator():
        i = 0
        while env.sim.now - start < window:
            yield env.sim.timeout(interval)
            env.sim.process(one_request(clients[i % len(clients)]), name="req")
            i += 1

    env.sim.process(generator(), name="load-gen")
    env.run(until=start + window + 60.0)
    return _summarize("snipe", n_rms, n_hosts, rate, window, latencies, failures[0])


def _run_pvm(n_hosts: int, rate: float, window: float, seed: int) -> Dict:
    sim = Simulator(seed=seed)
    topo = Topology(sim)
    seg = topo.add_segment("lan", ETHERNET_100)
    programs = {"noop": lambda ctx, **kw: iter([ctx.sleep(0.001)])}

    def noop(ctx, **kw):
        yield ctx.sleep(0.001)

    programs["noop"] = noop
    hosts = []
    for i in range(n_hosts):
        h = topo.add_host(f"h{i}")
        topo.connect(h, seg)
        hosts.append(h)
    master = Pvmd(hosts[0], programs, service_time=SERVICE_TIME)
    slaves = [Pvmd(h, programs, master_host="h0") for h in hosts[1:]]

    def boot():
        for s in slaves:
            yield s.join()

    sim.run(until=sim.process(boot(), name="boot"))
    latencies: List[float] = []
    failures = [0]
    interval = 1.0 / rate
    start = sim.now
    requesters = slaves[: min(4, len(slaves))] or [master]

    def one_request(pvmd):
        t0 = sim.now
        try:
            yield pvmd.spawn("noop")
            latencies.append(sim.now - t0)
        except Exception:
            failures[0] += 1

    def generator():
        i = 0
        while sim.now - start < window:
            yield sim.timeout(interval)
            sim.process(one_request(requesters[i % len(requesters)]), name="req")
            i += 1

    sim.process(generator(), name="load-gen")
    sim.run(until=start + window + 60.0)
    return _summarize("pvm", 1, n_hosts, rate, window, latencies, failures[0])


def _summarize(system, n_rms, n_hosts, rate, window, latencies, failures) -> Dict:
    completed = len(latencies)
    return {
        "system": f"{system}/{n_rms}rm" if system == "snipe" else system,
        "hosts": n_hosts,
        "offered_rate": rate,
        "completed": completed,
        "failed": failures,
        "throughput": completed / window,
        "mean_latency_ms": (sum(latencies) / completed * 1e3) if completed else float("inf"),
        "p_max_latency_ms": (max(latencies) * 1e3) if completed else float("inf"),
    }


def rm_scalability(
    n_hosts: int = 16,
    rates: Sequence[float] = (20.0, 45.0, 90.0),
    rm_counts: Sequence[int] = (1, 2, 4),
    window: float = 20.0,
    seed: int = 0,
) -> List[Dict]:
    """Rows for every (system, offered rate) pair.

    One server's capacity is 1/SERVICE_TIME = 50 req/s: the middle rate
    approaches it, the top rate exceeds it.
    """
    rows: List[Dict] = []
    for rate in rates:
        rows.append(_run_pvm(n_hosts, rate, window, seed))
        for k in rm_counts:
            rows.append(_run_snipe(n_hosts, k, rate, window, seed))
    return rows
