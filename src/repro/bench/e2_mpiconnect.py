"""E2 — MPI_Connect vs PVMPI point-to-point performance (§6.1).

    "This system proved easier to maintain (no virtual machine to
    disappear) and also offered a slightly higher point-to-point
    communication performance."

Two MPI applications on two MPPs exchange ping-pongs across the WAN,
once bridged through PVM (task → pvmd → pvmd → task, plus the loopback
copies into and out of the daemons) and once through SNIPE (direct
task-to-task SRUDP). Expected: MPI_Connect wins by a modest factor at
every size — "slightly higher", not an order of magnitude.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.topologies import two_mpp_site
from repro.mpi import MpiConnectBridge, MpiJob, PvmpiBridge

DEFAULT_SIZES = [1_024, 16_384, 131_072, 1_048_576]


def _pingpong(site, bridges, size: int, n_msgs: int):
    """Measured inter-MPP ping-pong between rank 0 of each application."""
    sim = site["sim"]
    rtts: List[float] = []

    def app_a(mpi):
        bridge = bridges["A"]
        yield bridge.register()
        remote = yield bridge.connect("B")
        # Warm-up exchange, then measured rounds.
        for i in range(n_msgs + 1):
            t0 = sim.now
            yield bridge.send(0, remote, 0, None, tag=1, size=size)
            yield bridge.recv(0, tag=2)
            if i > 0:
                rtts.append(sim.now - t0)
        return "done"

    def app_b(mpi):
        bridge = bridges["B"]
        yield bridge.register()
        remote = yield bridge.connect("A")
        for _ in range(n_msgs + 1):
            yield bridge.recv(0, tag=1)
            yield bridge.send(0, remote, 0, None, tag=2, size=size)
        return "done"

    job_a = MpiJob(sim, site["mpp_a"][:1], app_a, name="A")
    job_b = MpiJob(sim, site["mpp_b"][:1], app_b, name="B")
    bridges["A"] = bridges["make"](site, job_a, "A")
    bridges["B"] = bridges["make"](site, job_b, "B")
    sim.run(until=sim.all_of([job_a.procs[0], job_b.procs[0]]))
    return rtts


def mpiconnect_vs_pvmpi(
    sizes: Optional[Sequence[int]] = None, n_msgs: int = 4, seed: int = 0
) -> List[Dict]:
    """Rows: {bridge, size, rtt_ms, bandwidth_mbps} for both systems."""
    sizes = list(sizes or DEFAULT_SIZES)
    rows: List[Dict] = []
    for size in sizes:
        site = two_mpp_site(nodes_per_mpp=2, seed=seed)
        bridges = {"make": lambda s, job, name: PvmpiBridge(job, s["pvmds"], name)}
        p_rtts = _pingpong(site, bridges, size, n_msgs)

        site = two_mpp_site(nodes_per_mpp=2, seed=seed, pvm=False)
        bridges = {
            "make": lambda s, job, name: MpiConnectBridge(job, s["rc_replicas"], name)
        }
        m_rtts = _pingpong(site, bridges, size, n_msgs)

        for name, rtts in (("pvmpi", p_rtts), ("mpi_connect", m_rtts)):
            best = min(rtts)
            rows.append(
                {
                    "bridge": name,
                    "size": size,
                    "rtt_ms": best * 1e3,
                    # One-way bandwidth from half the round trip.
                    "bandwidth_mbps": size / (best / 2) / 1e6,
                }
            )
    return rows


def summarize_speedup(rows: List[Dict]) -> List[Dict]:
    """Per-size MPI_Connect/PVMPI speedup factors (should be >1, modest)."""
    by_size: Dict[int, Dict[str, float]] = {}
    for row in rows:
        by_size.setdefault(row["size"], {})[row["bridge"]] = row["rtt_ms"]
    return [
        {
            "size": size,
            "pvmpi_rtt_ms": pair["pvmpi"],
            "mpi_connect_rtt_ms": pair["mpi_connect"],
            "speedup": pair["pvmpi"] / pair["mpi_connect"],
        }
        for size, pair in sorted(by_size.items())
        if "pvmpi" in pair and "mpi_connect" in pair
    ]
