"""E11 — recovery MTTR: lease-based detection plus checkpoint restart.

    "... automatic restart of registered processes from checkpoints"
    (§5.2.3, §5.6)

Scenario: a checkpointing worker runs on a host that crashes at a known
instant. A Guardian detects the death when the host's heartbeat lease
lapses, fetches the latest checkpoint from the file service, and
respawns the task (with a higher incarnation) on a live host.

Measured, per lease TTL: time from the crash to detection
(``detect_s``) and to the respawned successor being registered
(``mttr_s``).  Both are bounded by the failure-detection window —

    bound = lease_ttl + scan_interval + grace + slack

where slack covers checkpoint fetch + RM placement + spawn.  Shorter
leases buy faster recovery at the price of more heartbeat traffic; the
table makes that dial visible.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.checkpoint import checkpoint_to_files
from repro.core.environment import SnipeEnvironment
from repro.daemon.tasks import TaskSpec, TaskState

#: Guardian scan cadence / post-lease grace used by the site below.
SCAN_INTERVAL = 1.0
GRACE = 0.5
#: Budget for checkpoint fetch + placement + respawn after detection.
SPAWN_SLACK = 3.0


def _site(lease_ttl: float, seed: int) -> SnipeEnvironment:
    env = SnipeEnvironment(seed=seed)
    env.add_segment("lan")
    for i in range(5):
        env.add_host(f"h{i}", segments=["lan"])
    env.add_rc_servers(["h0", "h1", "h2"])
    for i in range(5):
        env.boot_daemon(f"h{i}", lease_ttl=lease_ttl)
    env.add_rm("h0")
    env.add_file_server("h0")
    env.add_file_server("h1")
    env.add_guardian("h1", scan_interval=SCAN_INTERVAL, grace=GRACE)
    env.add_guardian("h2", scan_interval=SCAN_INTERVAL, grace=GRACE)

    @env.program("worker")
    def worker(ctx, total, ckpt_every):
        i = ctx.checkpoint_state.get("i", 0)
        if i == 0:
            yield checkpoint_to_files(ctx)
        while i < total:
            yield ctx.compute(0.2)
            i += 1
            ctx.checkpoint_state["i"] = i
            if i % ckpt_every == 0:
                yield checkpoint_to_files(ctx)
        return i

    env.settle(2.0)
    return env


def recovery_mttr(lease_ttls: Sequence[float] = (1.5, 3.0, 6.0),
                  seed: int = 7) -> List[Dict]:
    """One crash-and-recover episode per lease TTL; returns MTTR rows."""
    rows: List[Dict] = []
    for lease_ttl in lease_ttls:
        env = _site(lease_ttl, seed=seed)
        work = env.spawn(
            TaskSpec(program="worker", params={"total": 40, "ckpt_every": 5}),
            on="h4",
        )
        crash_at = env.sim.now + 2.0
        env.failures.host_down_at(crash_at, "h4")
        env.run(until=crash_at + 60.0)

        recs = [r for g in env.guardians.values() for r in g.recoveries
                if r["urn"] == work.urn]
        assert len(recs) == 1, f"lease_ttl={lease_ttl}: {recs}"
        rec = recs[0]
        revived = env.daemons[rec["to"]].tasks[work.urn]
        assert revived.state == TaskState.EXITED and revived.exit_value == 40
        detect_s = rec["detected_at"] - crash_at
        mttr_s = rec["recovered_at"] - crash_at
        bound_s = lease_ttl + SCAN_INTERVAL + GRACE + SPAWN_SLACK
        rows.append({
            "lease_ttl_s": lease_ttl,
            "detect_s": round(detect_s, 3),
            "mttr_s": round(mttr_s, 3),
            "bound_s": round(bound_s, 3),
            "within_bound": mttr_s <= bound_s,
        })
    return rows
