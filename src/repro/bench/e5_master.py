"""E5 — master failure tolerance (§2.2).

    "PVM can tolerate slave failures but not failure of its master host."

Scenario: a steady stream of operations (spawn a small task, look up a
name) before and after one designated host dies. For PVM the dead host
is the master; for SNIPE it is one of the hosts carrying an RC replica
and an RM — a worst case for SNIPE, since it has no master at all.

Expected: PVM's post-failure success rate collapses to ~0; SNIPE's stays
near 100 % (requests just fail over to surviving replicas/RMs).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.environment import SnipeEnvironment
from repro.daemon.tasks import TaskSpec
from repro.net.media import ETHERNET_100
from repro.net.topology import Topology
from repro.pvm.pvmd import Pvmd
from repro.rm.client import RmClient
from repro.sim.kernel import Simulator


def _phase_stats() -> Dict[str, List[int]]:
    return {"before": [0, 0], "after": [0, 0]}  # [ok, fail]


def _run_snipe(n_hosts: int, ops_per_phase: int, seed: int) -> List[Dict]:
    env = SnipeEnvironment.lan_site(n_hosts=n_hosts, n_rc=3, n_rm=2, seed=seed, mcast=False)

    def noop(ctx):
        yield ctx.sleep(0.001)
        return "ok"

    env.register_program("noop", noop)
    env.settle(3.0)
    stats = _phase_stats()
    client_host = f"h{n_hosts - 1}"
    rmc = RmClient(env.topology.hosts[client_host], env.rc_client(client_host))
    rc = env.rc_client(client_host)

    def run_phase(phase: str):
        for _ in range(ops_per_phase):
            yield env.sim.timeout(0.25)
            try:
                yield rmc.request(TaskSpec(program="noop"), timeout=3.0)
                yield rc.lookup("snipe://h1/")
                stats[phase][0] += 1
            except Exception:
                stats[phase][1] += 1

    def scenario():
        yield from run_phase("before")
        # Kill h0: an RC replica AND an RM live there. No matter — no master.
        env.topology.hosts["h0"].crash()
        yield from run_phase("after")

    env.run(until=env.sim.process(scenario(), name="e5-snipe"))
    return _rows("snipe", stats)


def _run_pvm(n_hosts: int, ops_per_phase: int, seed: int) -> List[Dict]:
    sim = Simulator(seed=seed)
    topo = Topology(sim)
    seg = topo.add_segment("lan", ETHERNET_100)

    def noop(ctx):
        yield ctx.sleep(0.001)

    programs = {"noop": noop}
    hosts = []
    for i in range(n_hosts):
        h = topo.add_host(f"h{i}")
        topo.connect(h, seg)
        hosts.append(h)
    Pvmd(hosts[0], programs)  # the master pvmd
    slaves = [Pvmd(h, programs, master_host="h0") for h in hosts[1:]]

    def boot():
        for s in slaves:
            yield s.join()

    sim.run(until=sim.process(boot(), name="boot"))
    stats = _phase_stats()
    requester = slaves[-1]

    def run_phase(phase: str):
        for _ in range(ops_per_phase):
            yield sim.timeout(0.25)
            try:
                tids = yield requester.spawn("noop")
                if not tids:
                    raise RuntimeError("no tids")
                stats[phase][0] += 1
            except Exception:
                stats[phase][1] += 1

    def scenario():
        yield from run_phase("before")
        hosts[0].crash()  # the master
        yield from run_phase("after")

    sim.run(until=sim.process(scenario(), name="e5-pvm"))
    return _rows("pvm", stats)


def _rows(system: str, stats) -> List[Dict]:
    out = []
    for phase in ("before", "after"):
        ok, fail = stats[phase]
        total = ok + fail
        out.append(
            {
                "system": system,
                "phase": phase,
                "ops": total,
                "ok": ok,
                "success_rate": ok / total if total else 0.0,
            }
        )
    return out


def master_failure(n_hosts: int = 8, ops_per_phase: int = 20, seed: int = 0) -> List[Dict]:
    """Rows: success rate before/after the critical host dies, per system."""
    return _run_pvm(n_hosts, ops_per_phase, seed) + _run_snipe(n_hosts, ops_per_phase, seed)
