"""E9 — master–master metadata scalability (§7).

    "A major difference between MDS and SNIPE RC servers is MDS is based
    on LDAP… The RC servers are based on a true master-master update
    data model and are inherently more scalable."

Workload: W writers spread across the site update disjoint URIs as fast
as the catalog confirms them (closed loop) for a fixed window. Two
models on identical hardware:

* master–master — every writer updates its nearest replica (ONE);
* single-master — every write must go to replica 0 (the LDAP/MDS model).

We report confirmed-update throughput and write latency vs replica
count, plus anti-entropy propagation age. Expected: master–master
throughput grows with replicas (writes spread), single-master stays flat
at one server's capacity, with latency growing as it saturates.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.net.media import ETHERNET_100
from repro.net.topology import Topology
from repro.rcds.client import MASTER, ONE, RCClient
from repro.rcds.server import RCServer
from repro.sim.kernel import Simulator

#: Per-request processing cost at each RC server.
RC_SERVICE_TIME = 0.004


def rc_update_scaling(
    replica_counts: Sequence[int] = (1, 2, 4),
    n_writers: int = 12,
    window: float = 20.0,
    sync_interval: float = 0.5,
    seed: int = 0,
) -> List[Dict]:
    """Rows: {model, replicas, throughput, mean_latency_ms, propagation_ms}."""
    rows: List[Dict] = []
    for model in ("master-master", "single-master"):
        for k in replica_counts:
            sim = Simulator(seed=seed)
            topo = Topology(sim)
            seg = topo.add_segment("lan", ETHERNET_100)
            server_hosts = []
            for i in range(k):
                h = topo.add_host(f"rc{i}")
                topo.connect(h, seg)
                server_hosts.append(h)
            writer_hosts = []
            for i in range(n_writers):
                h = topo.add_host(f"w{i}")
                topo.connect(h, seg)
                writer_hosts.append(h)
            replicas = [(h.name, 385) for h in server_hosts]
            servers = [
                RCServer(
                    h,
                    peers=[r for r in replicas if r[0] != h.name],
                    sync_interval=sync_interval,
                    service_time=RC_SERVICE_TIME,
                )
                for h in server_hosts
            ]
            consistency = ONE if model == "master-master" else MASTER
            latencies: List[float] = []
            counts = [0]

            def writer(i: int, client: RCClient):
                uri = f"urn:snipe:proc:writer{i}"
                seq = 0
                while sim.now < window:
                    seq += 1
                    t0 = sim.now
                    try:
                        yield client.update(uri, {"seq": seq}, consistency)
                        latencies.append(sim.now - t0)
                        counts[0] += 1
                    except Exception:
                        yield sim.timeout(0.05)

            for i, h in enumerate(writer_hosts):
                client = RCClient(h, replicas, rpc_timeout=5.0)
                sim.process(writer(i, client), name=f"writer{i}")
            sim.run(until=window + 10.0)
            # Propagation age: how stale is the most-behind replica for a
            # final marker write?
            marker_client = RCClient(writer_hosts[0], replicas)
            t_write = [0.0]

            def marker():
                t_write[0] = sim.now
                yield marker_client.update("urn:snipe:proc:marker", {"v": 1}, consistency)

            sim.run(until=sim.process(marker(), name="marker"))
            propagated_at = None
            deadline = sim.now + 60.0

            def all_have() -> bool:
                return all(s.store.get("urn:snipe:proc:marker", "v") == 1 for s in servers)

            while sim.now < deadline and not all_have():
                sim.run(until=min(sim.peek(), sim.now + 0.1))
            propagated_at = sim.now if all_have() else float("inf")
            rows.append(
                {
                    "model": model,
                    "replicas": k,
                    "updates": counts[0],
                    "throughput": counts[0] / window,
                    "mean_latency_ms": (sum(latencies) / len(latencies) * 1e3)
                    if latencies
                    else float("inf"),
                    "propagation_ms": (propagated_at - t_write[0]) * 1e3,
                }
            )
    return rows


def anti_entropy_ablation(
    sync_intervals: Sequence[float] = (0.2, 1.0, 5.0),
    k: int = 4,
    seed: int = 0,
) -> List[Dict]:
    """Ablation: anti-entropy period vs propagation delay and sync traffic."""
    rows: List[Dict] = []
    for interval in sync_intervals:
        sim = Simulator(seed=seed)
        topo = Topology(sim)
        seg = topo.add_segment("lan", ETHERNET_100)
        hosts = []
        for i in range(k + 1):
            h = topo.add_host(f"h{i}")
            topo.connect(h, seg)
            hosts.append(h)
        replicas = [(f"h{i}", 385) for i in range(k)]
        servers = [
            RCServer(hosts[i], peers=[r for r in replicas if r[0] != f"h{i}"],
                     sync_interval=interval)
            for i in range(k)
        ]
        client = RCClient(hosts[k], replicas)

        def write():
            yield client.update("urn:x", {"v": "probe"})

        sim.run(until=sim.process(write(), name="w"))
        t0 = sim.now

        def all_have() -> bool:
            return all(s.store.get("urn:x", "v") == "probe" for s in servers)

        while sim.now < t0 + 300 and not all_have():
            sim.run(until=min(sim.peek(), sim.now + 0.05))
        syncs = sum(s.syncs_ok for s in servers)
        rows.append(
            {
                "sync_interval": interval,
                "propagation_s": sim.now - t0,
                "sync_rounds": syncs,
            }
        )
    return rows
