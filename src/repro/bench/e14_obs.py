"""E14 — the observability layer's own overhead, quantified.

Observability that taxes the system under study distorts every other
experiment, so the zero-cost-when-off claim is itself benchmarked: the
E12 overload workload and the E13 bulk-distribution workload each run
three times over —

* **off** — tracer detached (the default every other experiment runs
  under): trace stamping allocates no ids, probe emission short-circuits;
* **sampled** — tracing enabled at 1-in-100 record sampling
  (``--obs-sample 0.01``);
* **on** — tracing enabled at full rate (``--obs-sample 1.0``).

Measured per (workload, config): wall-clock (minimum over ``repeats``
runs — the minimum is the right estimator for a deterministic workload
whose only noise source is the machine), trace records kept, records
thinned by sampling, and ring-buffer drops. ``overhead_pct`` is the
wall-clock cost relative to the detached run of the same workload. The
shape assertion is that detached stays measurably below always-on, and
sampled sits in between — the knob buys a real trade, not a placebo.
The virtual clock makes the *simulated* outcome identical across
configs; only the wall-clock differs.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

#: (config name, sampling rate handed to the tracer; None = detached).
CONFIGS: Tuple[Tuple[str, Optional[float]], ...] = (
    ("off", None),
    ("sampled", 0.01),
    ("on", 1.0),
)


def _overload_workload(seed: int, obs_sample: Optional[float], quick: bool):
    """The E12 overload scenario at 2x saturation; returns the sim."""
    from repro.robust.chaos import run_overload

    holder: Dict = {}
    run_overload(
        seed,
        saturation=2.0,
        duration=10.0 if quick else 20.0,
        obs_sample=obs_sample,
        flight=False,  # isolate the tracing cost from the flight recorder's
        instrument=lambda sim: holder.setdefault("sim", sim),
    )
    return holder["sim"]


def _bulk_workload(seed: int, obs_sample: Optional[float], quick: bool):
    """The E13 relay-tree distribution (4x2 racks); returns the sim."""
    from repro.bulk.testbed import build_bulk_site, make_payload

    env, root, dests = build_bulk_site(seed=seed, racks=4, per_rack=2)
    sim = env.sim
    if obs_sample is not None:
        sim.obs.tracer.enabled = True
        sim.obs.tracer.sample_rate = obs_sample
    chunk_size = 16384
    size = (256 if quick else 512) * 1024
    payload = make_payload(size, chunk_size)
    dist = env.bulk_distributor(root, fanout=2)
    proc = dist.distribute("e14-obj", payload, dests,
                           chunk_size=chunk_size, strategy="tree",
                           deadline=60.0)
    env.run(until=proc)
    return sim


def obs_overhead(seed: int = 1, repeats: int = 3,
                 quick: bool = False) -> List[Dict]:
    """Off vs sampled vs always-on tracing on E12 and E13; metric rows."""
    workloads = (
        ("overload-e12", _overload_workload),
        ("bulk-e13", _bulk_workload),
    )
    rows: List[Dict] = []
    for wname, workload in workloads:
        workload(seed, None, quick)  # untimed warmup: imports, allocator
        # Interleave repeats round-robin across configs: the process keeps
        # warming (caches, allocator arenas, CPU clocks) as it runs, and
        # sequential per-config blocks would hand later configs a warmer
        # machine than "off" ever saw. Round-robin exposes every config to
        # the same drift; min-of-repeats then discards the noise.
        best: Dict[str, float] = {c: float("inf") for c, _ in CONFIGS}
        sims: Dict = {}
        for _ in range(max(1, repeats)):
            for cname, rate in CONFIGS:
                t0 = time.perf_counter()
                sims[cname] = workload(seed, rate, quick)
                best[cname] = min(best[cname], time.perf_counter() - t0)
        base_ms = round(best["off"] * 1000, 2)
        for cname, rate in CONFIGS:
            tracer = sims[cname].obs.tracer
            wall_ms = round(best[cname] * 1000, 2)
            rows.append({
                "workload": wname,
                "config": cname,
                "sample_rate": rate,
                "wall_ms": wall_ms,
                "trace_records": len(tracer),
                "trace_dropped": tracer.dropped,
                "sampled_out": tracer.sampled_out,
                "overhead_pct": (
                    round((wall_ms - base_ms) / base_ms * 100, 1)
                    if base_ms else 0.0
                ),
            })
    return rows


def format_overhead(rows: List[Dict]) -> str:
    """Human-readable overhead table for the CLI."""
    lines = [
        "== observability overhead (wall-clock, min of repeats) ==",
        f"  {'workload':14s} {'config':8s} {'wall_ms':>9s} {'overhead':>9s} "
        f"{'records':>8s} {'sampled_out':>11s} {'dropped':>8s}",
    ]
    for r in rows:
        lines.append(
            f"  {r['workload']:14s} {r['config']:8s} {r['wall_ms']:9.2f} "
            f"{r['overhead_pct']:+8.1f}% {r['trace_records']:8d} "
            f"{r['sampled_out']:11d} {r['trace_dropped']:8d}"
        )
    return "\n".join(lines)
