"""E10 — fastest-shared-medium selection (§5.3).

    "If the source and destination are on a common private network or
    common IP subnet, the message is sent using the fastest of those."

Workload: two hosts share three media (Myrinet SAN, 100 Mb Ethernet, and
a routed WAN path); a bulk transfer runs under SNIPE's media-shopping
policy and under plain first-interface IP routing. Expected: SNIPE picks
Myrinet (~160 MB/s), the baseline stays on whatever interface was
configured first (Ethernet, ~12 MB/s): an order-of-magnitude difference
available purely from routing policy.
"""

from __future__ import annotations

from typing import Dict, List

from repro.net.media import ETHERNET_100, MYRINET, WAN_T3
from repro.net.topology import Topology
from repro.sim.kernel import Simulator
from repro.transport.pathsel import DEFAULT_IP, SNIPE
from repro.transport.srudp import SrudpEndpoint


def media_selection(size: int = 20_000_000, seed: int = 0) -> List[Dict]:
    """Rows: {policy, segment_used, seconds, mbps}."""
    rows: List[Dict] = []
    for policy in (SNIPE, DEFAULT_IP):
        sim = Simulator(seed=seed)
        topo = Topology(sim)
        # Interface order matters for the baseline: Ethernet first.
        eth = topo.add_segment("eth", ETHERNET_100)
        myr = topo.add_segment("myr", MYRINET)
        wan1 = topo.add_segment("wan1", WAN_T3)
        wan2 = topo.add_segment("wan2", WAN_T3)
        a = topo.add_host("a")
        b = topo.add_host("b")
        gw = topo.add_host("gw", forwarding=True)
        topo.connect(a, eth)
        topo.connect(b, eth)
        topo.connect(a, myr)
        topo.connect(b, myr)
        topo.connect(a, wan1)
        topo.connect(gw, wan1)
        topo.connect(gw, wan2)
        topo.connect(b, wan2)
        tx = SrudpEndpoint(a, 5000, path_policy=policy, window=256)
        rx = SrudpEndpoint(b, 5000)
        done = {}

        def receiver():
            yield rx.recv()
            done["t"] = sim.now

        sim.process(receiver(), name="rx")
        choice = tx.paths.select("b")
        p = tx.send("b", 5000, None, size)
        sim.run(until=p)
        sim.run(until=sim.now + 1.0)
        rows.append(
            {
                "policy": policy,
                "segment_used": choice[0].segment.name if choice else "none",
                "seconds": done["t"],
                "mbps": size / done["t"] / 1e6,
            }
        )
    return rows
