"""Wide-area multicast groups with router self-election (§5.4).

    "Multicast messages are sent to one or more host daemons which are
    acting as routers for that particular multicast group. … Whenever a
    process joins a multicast group, its host daemon heuristically
    determines (based on the presence or absence of other routers in the
    group, and the networks to which those routers are attached) whether
    it should become a router for that group. For the sake of
    fault-tolerance, each process … may register its membership in the
    group with multiple multicast routers. Each router which adds itself
    to the group also registers itself with more than half of the other
    routers for that group, and any message sent to that group is
    initially sent to more than half of the routers for that group. This
    is intended to ensure that there is at least one path from the
    sending process to each recipient process."

This is explicitly *not* the high-performance LAN multicast of Fig. 1
(that is :class:`repro.transport.EthernetMulticast`); it is reliable
group communication across the Internet. The majority-registration /
majority-send discipline is what experiment E7 measures against a
single-router baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Set, Tuple

from repro.rcds import uri as uri_mod
from repro.rcds.client import QUORUM
from repro.rpc import RpcError
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.daemon.daemon import SnipeDaemon

#: Registration/send disciplines.
MAJORITY = "majority"
SINGLE = "single"  # the no-fault-tolerance baseline for E7

_ROUTER_PREFIX = "router:"


class McastService:
    """Multicast role of one host daemon: router and/or member agent."""

    def __init__(self, daemon: "SnipeDaemon", min_routers: int = 3) -> None:
        self.daemon = daemon
        self.sim = daemon.sim
        self.host = daemon.host
        self.rc = daemon.rc
        self.min_routers = min_routers
        #: group -> router-side state (present only where we are a router)
        self.router_state: Dict[str, Dict] = {}
        #: (group, member urn) -> local delivery queue
        self.inboxes: Dict[Tuple[str, str], Store] = {}
        #: (group, member urn) -> seen message ids (member-side dedup)
        self._member_seen: Dict[Tuple[str, str], Set[int]] = {}
        self.relays = 0
        self.deliveries = 0
        daemon.mcast = self
        daemon.rpc.register("mcast.join", self._h_join)
        daemon.rpc.register("mcast.leave", self._h_leave)
        daemon.rpc.register("mcast.relay", self._h_relay)
        daemon.rpc.register("mcast.deliver", self._h_deliver)

    # -- queries ----------------------------------------------------------
    def _routers_of(self, group: str):
        """Current router host names for *group* from RC metadata."""
        assertions = yield self.rc.lookup(uri_mod.mcast_urn(group), QUORUM)
        return sorted(
            key[len(_ROUTER_PREFIX):]
            for key, info in assertions.items()
            if key.startswith(_ROUTER_PREFIX) and info["value"]
        )

    def _should_elect(self, routers: List[str]) -> bool:
        """§5.4 heuristic: become a router if the group is under-provisioned
        or no existing router shares a network with this host."""
        if len(routers) < self.min_routers:
            return True
        topo = self.host.topology
        for r in routers:
            if r == self.host.name:
                return False
            if r in topo.hosts and topo.shared_segments(self.host.name, r):
                return False
        return True

    # -- member operations (driven by the core client library) -----------------
    def join(self, group: str, member_urn: str, mode: str = MAJORITY):
        """Join *member_urn* (a local task) to *group*; returns a process."""
        return self.sim.process(
            self._join(group, member_urn, mode), name=f"mcast-join:{group}"
        )

    def _join(self, group: str, member_urn: str, mode: str):
        routers = yield from self._routers_of(group)
        if self._should_elect(routers):
            self.router_state.setdefault(group, {"members": set(), "peers": set()})
            yield self.rc.update(
                uri_mod.mcast_urn(group),
                {_ROUTER_PREFIX + self.host.name: True, "name": group},
                QUORUM,
            )
            # §5.2.4: "a 'notify list' of processes that wish to be
            # notified if the set of multicast routers changes."
            yield from self._notify_router_change(group, added=self.host.name)
            # Register with more than half of the *other* routers.
            others = [r for r in routers if r != self.host.name]
            for peer in _majority_subset(others):
                self.router_state[group]["peers"].add(peer)
                try:
                    yield self.daemon._client.call(
                        peer, _daemon_port(), "mcast.join",
                        timeout=1.0, group=group, member=None,
                        router=self.host.name,
                    )
                except RpcError:
                    continue
            routers = sorted(set(routers) | {self.host.name})
        key = (group, member_urn)
        self.inboxes.setdefault(key, Store(self.sim))
        self._member_seen.setdefault(key, set())
        # §3.7: group membership is metadata — consoles enumerate members
        # from the group's catalog entry, not from any central list.
        try:
            yield self.rc.update(
                uri_mod.mcast_urn(group), {f"member:{member_urn}": True}
            )
        except Exception:
            pass
        # Register membership with a majority (or one) of the routers.
        targets = _majority_subset(routers) if mode == MAJORITY else routers[:1]
        registered = 0
        for r in targets:
            if r == self.host.name and group in self.router_state:
                self.router_state[group]["members"].add((member_urn, self.host.name))
                registered += 1
                continue
            try:
                yield self.daemon._client.call(
                    r, _daemon_port(), "mcast.join",
                    timeout=1.0, group=group,
                    member=(member_urn, self.host.name), router=None,
                )
                registered += 1
            except RpcError:
                continue
        return registered

    def send(self, group: str, payload, origin_urn: str, mode: str = MAJORITY):
        """Send to the group via >½ of its routers; returns a process whose
        value is the number of routers that accepted the message."""
        return self.sim.process(
            self._send(group, payload, origin_urn, mode), name=f"mcast-send:{group}"
        )

    def _send(self, group: str, payload, origin_urn: str, mode: str):
        routers = yield from self._routers_of(group)
        if not routers:
            return 0
        # Member-side dedup keys on msg_id alone, so ids must be unique
        # across all senders in one simulation: draw from the sim-scoped
        # sequence, never a process-global counter.
        msg_id = self.sim.sequence("daemon.mcast")
        targets = _majority_subset(routers) if mode == MAJORITY else routers[:1]
        accepted = 0
        for r in targets:
            if r == self.host.name and group in self.router_state:
                yield from self._relay(group, msg_id, payload, origin_urn)
                accepted += 1
                continue
            try:
                yield self.daemon._client.call(
                    r, _daemon_port(), "mcast.relay",
                    timeout=1.0, group=group, msg_id=msg_id,
                    payload=payload, origin=origin_urn,
                )
                accepted += 1
            except RpcError:
                continue
        return accepted

    def recv(self, group: str, member_urn: str):
        """Event yielding the next group message for a local member."""
        key = (group, member_urn)
        inbox = self.inboxes.get(key)
        if inbox is None:
            raise KeyError(f"{member_urn} has not joined {group!r}")
        return inbox.get()

    def leave(self, group: str, member_urn: str):
        return self.sim.process(self._leave(group, member_urn), name=f"mcast-leave:{group}")

    def _leave(self, group: str, member_urn: str):
        routers = yield from self._routers_of(group)
        for r in routers:
            if r == self.host.name and group in self.router_state:
                self.router_state[group]["members"].discard((member_urn, self.host.name))
                continue
            try:
                yield self.daemon._client.call(
                    r, _daemon_port(), "mcast.leave",
                    timeout=1.0, group=group, member=(member_urn, self.host.name),
                )
            except RpcError:
                continue
        self.inboxes.pop((group, member_urn), None)
        self._member_seen.pop((group, member_urn), None)
        try:
            yield self.rc.delete(uri_mod.mcast_urn(group), [f"member:{member_urn}"])
        except Exception:
            pass

    def _notify_router_change(self, group: str, added: str):
        """Tell every process on the group's notify list about the change."""
        try:
            meta = yield self.rc.lookup(uri_mod.mcast_urn(group))
        except Exception:
            return
        watchers = (meta.get("notify-list") or {}).get("value") or []
        event = {
            "kind": "router-change",
            "group": group,
            "added": added,
            "at": self.sim.now,
        }
        for watcher_urn in watchers:
            try:
                w_meta = yield self.rc.lookup(watcher_urn)
                w_host = (w_meta.get("host") or {}).get("value")
                if w_host is None:
                    continue
                yield self.daemon._client.call(
                    w_host, _daemon_port(), "daemon.notify",
                    timeout=1.0, urn=watcher_urn, event=event,
                )
            except Exception:
                continue

    # -- router machinery ----------------------------------------------------
    def _relay(self, group: str, msg_id: int, payload, origin: str):
        """Router-side: deliver to registered members, flood to peers."""
        state = self.router_state.get(group)
        if state is None:
            return
        seen: Set[int] = state.setdefault("seen", set())
        if msg_id in seen:
            return
        seen.add(msg_id)
        self.relays += 1
        for member_urn, member_host in sorted(state["members"]):
            if member_host == self.host.name:
                self._deliver_local(group, member_urn, msg_id, payload, origin)
                continue
            try:
                yield self.daemon._client.call(
                    member_host, _daemon_port(), "mcast.deliver",
                    timeout=1.0, group=group, member=member_urn,
                    msg_id=msg_id, payload=payload, origin=origin,
                )
            except RpcError:
                continue
        # Forward to the other routers that may not have seen it.
        try:
            routers = yield from self._routers_of(group)
        except Exception:
            routers = sorted(state["peers"])
        for r in routers:
            if r == self.host.name:
                continue
            try:
                yield self.daemon._client.call(
                    r, _daemon_port(), "mcast.relay",
                    timeout=1.0, group=group, msg_id=msg_id,
                    payload=payload, origin=origin,
                )
            except RpcError:
                continue

    def _deliver_local(self, group: str, member_urn: str, msg_id: int, payload, origin: str) -> None:
        key = (group, member_urn)
        seen = self._member_seen.get(key)
        inbox = self.inboxes.get(key)
        if seen is None or inbox is None or msg_id in seen:
            return
        seen.add(msg_id)
        self.deliveries += 1
        inbox.try_put({"group": group, "payload": payload, "origin": origin, "msg_id": msg_id})

    # -- RPC handlers -----------------------------------------------------------
    def _h_join(self, args: Dict):
        group = args["group"]
        state = self.router_state.get(group)
        if state is None:
            raise KeyError(f"{self.host.name} is not a router for {group!r}")
        if args.get("router"):
            state["peers"].add(args["router"])
        member = args.get("member")
        if member is not None:
            state["members"].add(tuple(member))
        return True

    def _h_leave(self, args: Dict):
        state = self.router_state.get(args["group"])
        if state is not None and args.get("member") is not None:
            state["members"].discard(tuple(args["member"]))
        return True

    def _h_relay(self, args: Dict):
        return self._relay(args["group"], args["msg_id"], args["payload"], args["origin"])

    def _h_deliver(self, args: Dict):
        self._deliver_local(
            args["group"], args["member"], args["msg_id"], args["payload"], args["origin"]
        )
        return True


def _majority_subset(items: List[str]) -> List[str]:
    """More than half of *items* (all of a 1- or 2-element list)."""
    if not items:
        return []
    return sorted(items)[: len(items) // 2 + 1]


def _daemon_port() -> int:
    from repro.daemon.daemon import DAEMON_PORT

    return DAEMON_PORT
