"""Per-host SNIPE daemons (§3.3, §5.4, §5.5).

    "Each SNIPE daemon mediates the use of resources on its particular
    host. SNIPE daemons are responsible for authenticating requests,
    enforcing access restrictions, management of local tasks, delivery of
    signals to local tasks, monitoring machine load and other local
    resources, and name-to-address lookup of local tasks."

This package provides the daemon itself (:class:`SnipeDaemon`), the task
model (:class:`TaskSpec`, :class:`TaskInfo`, the program registry), and
the wide-area multicast machinery with router self-election (§5.4,
:mod:`repro.daemon.mcast`).
"""

from repro.daemon.tasks import (
    ProgramRegistry,
    QuotaExceeded,
    TaskContext,
    TaskInfo,
    TaskSpec,
    TaskState,
)
from repro.daemon.daemon import DAEMON_PORT, SnipeDaemon
from repro.daemon.mcast import McastService

__all__ = [
    "DAEMON_PORT",
    "McastService",
    "ProgramRegistry",
    "QuotaExceeded",
    "SnipeDaemon",
    "TaskContext",
    "TaskInfo",
    "TaskSpec",
    "TaskState",
]
