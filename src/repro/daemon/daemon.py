"""The per-host SNIPE daemon (§3.3).

Responsibilities implemented here, mapped to the paper's list:

* *authenticating requests* — the RPC server's shared-secret HMAC, plus
  optional public-key spawn authorization hooks (see
  :mod:`repro.security.authz`).
* *management of local tasks* — spawn (with requirement matching),
  suspend/resume, kill, exit supervision.
* *delivery of signals to local tasks* — ``daemon.signal`` into the
  task's signal queue.
* *monitoring machine load* — a periodic load gauge published into the
  host's RC metadata for the resource managers.
* *name-to-address lookup of local tasks* — ``daemon.lookup``.
* *informing interested parties of changes to the status of those tasks*
  — per-process notify lists (§5.2.3) resolved through RC metadata.

The daemon registers its host's metadata (§5.2.1) at boot: CPUs, data
formats, interfaces with per-medium characteristics, the daemon's own
URL, and supported protocols.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.daemon.tasks import (
    ProgramRegistry,
    QuotaExceeded,
    TaskContext,
    TaskInfo,
    TaskSpec,
    TaskState,
    new_task_urn,
)
from repro.rcds import uri as uri_mod
from repro.rcds.client import RCClient
from repro.robust import TIMEOUTS
from repro.robust.overload import CONTROL
from repro.rpc import RpcClient, RpcError, RpcServer
from repro.sim.errors import Interrupt
from repro.sim.events import defuse

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host

#: Well-known SNIPE daemon port.
DAEMON_PORT = 3500


class SpawnError(Exception):
    """The host cannot run this spec (requirements, resources, unknown program)."""


class SnipeDaemon:
    """One host's daemon; every SNIPE host runs exactly one."""

    def __init__(
        self,
        host: "Host",
        rc: Optional[RCClient],
        programs: ProgramRegistry,
        secret: Optional[bytes] = None,
        load_interval: float = 1.0,
        lease_ttl: float = 3.0,
        context_factory: Optional[Callable[["SnipeDaemon", TaskInfo], TaskContext]] = None,
    ) -> None:
        self.sim = host.sim
        self.host = host
        self.rc = rc
        self.programs = programs
        self.load_interval = load_interval
        #: Heartbeat lease horizon: each load-loop tick re-asserts
        #: ``lease-expires = now + lease_ttl`` in the host's metadata. A
        #: host whose lease has lapsed is presumed dead by the Guardian
        #: (and skipped by RM placement) — the paper's failure-detection
        #: window made explicit.
        self.lease_ttl = lease_ttl
        self.context_factory = context_factory or TaskContext
        self.url = uri_mod.daemon_url(host.name)
        self.tasks: Dict[str, TaskInfo] = {}
        self.contexts: Dict[str, TaskContext] = {}
        self._procs: Dict[str, Any] = {}  # urn -> sim Process
        self.violations: List[tuple] = []
        #: Optional playground (attached by repro.playground) for mobile code.
        self.playground = None
        #: Brokers managing this host's resources (§5.2.1, §5.5): when
        #: set, spawn requests arriving at the daemon are referred to a
        #: broker unless they come from one (``direct=True``).
        self.brokers: List = []
        #: Optional multicast service (attached by repro.daemon.mcast).
        self.mcast = None

        metrics = self.sim.obs.metrics
        self._m_spawns = metrics.counter("daemon.spawns")
        self._m_task_lifetime = metrics.histogram("daemon.task_lifetime")
        self._m_load = metrics.gauge("daemon.load", host=host.name)
        #: Lease heartbeat outcomes: a failed heartbeat is a dropped
        #: control-plane message, the direct precursor of a false death.
        self.heartbeats_ok = 0
        self.heartbeats_failed = 0
        self._m_hb_ok = metrics.counter("daemon.heartbeats_ok")
        self._m_hb_failed = metrics.counter("daemon.heartbeats_failed")

        self.rpc = RpcServer(host, DAEMON_PORT, secret=secret)
        self.rpc.register("daemon.spawn", self._h_spawn)
        self.rpc.register("daemon.kill", self._h_kill)
        self.rpc.register("daemon.fence", self._h_fence)
        self.rpc.register("daemon.signal", self._h_signal)
        self.rpc.register("daemon.suspend", self._h_suspend)
        self.rpc.register("daemon.resume", self._h_resume)
        self.rpc.register("daemon.status", self._h_status)
        self.rpc.register("daemon.ping", self._h_ping)
        self.rpc.register("daemon.list", self._h_list)
        self.rpc.register("daemon.load", self._h_load)
        self.rpc.register("daemon.lookup", self._h_lookup)
        self.rpc.register("daemon.notify", self._h_notify)
        self.rpc.register("daemon.checkpoint", self._h_checkpoint)
        self.rpc.register("daemon.migrate_out", self._h_migrate_out)
        self._client = RpcClient(host, secret=secret)

        #: Deaths we could not publish because the host itself was down;
        #: reconciled (carefully — a successor may exist) on recovery,
        #: retried until the catalog is reachable again.
        self._unpublished: set = set()
        self.reconcile_retry = 2.0
        self._reconciling = False
        host.on_crash.append(self._on_host_crash)
        host.on_recover.append(self._on_host_recover)
        if rc is not None:
            self.sim.process(self._register_host(), name=f"daemon-reg:{host.name}")
            self.sim.process(self._load_loop(), name=f"daemon-load:{host.name}")

    # -- host metadata (§5.2.1) ------------------------------------------------
    def _host_assertions(self) -> Dict[str, Any]:
        interfaces = {}
        for nic in self.host.nics.values():
            medium = nic.segment.medium
            interfaces[nic.iface] = {
                "ip": nic.address.ip,
                "net-name": nic.segment.name,
                "protocol": medium.name,
                "bandwidth": medium.bandwidth,
                "latency": medium.latency,
            }
        return {
            "url": uri_mod.host_url(self.host.name),
            "daemon": self.url,
            "arch": self.host.arch,
            "os": self.host.os,
            "cpus": self.host.cpu_count,
            "cpu-speed": self.host.cpu_speed,
            "memory": self.host.memory,
            "data-formats": ["xdr"],
            "protocols": ["srudp", "tcp", "udp"],
            "interfaces": interfaces,
            # Lease expiry is computed on the daemon's *wall clock*: a
            # host with injected clock skew publishes skewed leases, the
            # gray failure the Guardian's probe-before-death absorbs.
            "lease-expires": self.host.clock() + self.lease_ttl,
        }

    def _register_host(self):
        try:
            yield self.rc.update(
                uri_mod.host_url(self.host.name), self._host_assertions(),
                lane=CONTROL,
            )
        except Exception:
            pass  # RC unreachable at boot; load loop keeps retrying

    def _load_loop(self):
        owner = f"daemon:{self.host.name}"
        while True:
            # Wheel timer, not a Timeout: with hundreds of hosts these
            # periodic heartbeat sleeps would otherwise dominate the
            # event heap.
            yield self.sim.timer_event(self.load_interval, owner=owner)
            if not self.host.up:
                continue
            self._m_load.set(self.load())
            try:
                # The lease re-assertion is the daemon's heartbeat: it
                # rides the control lane so bulk saturation can never
                # lapse a live host's lease.
                yield self.rc.update(
                    uri_mod.host_url(self.host.name),
                    {
                        "load": self.load(),
                        "tasks": len(self.running_tasks()),
                        "lease-expires": self.host.clock() + self.lease_ttl,
                    },
                    lane=CONTROL,
                )
                self.heartbeats_ok += 1
                self._m_hb_ok.inc()
            except Exception:
                self.heartbeats_failed += 1
                self._m_hb_failed.inc()
                continue

    def load(self) -> float:
        """Run-queue style load: running tasks per CPU."""
        return len(self.running_tasks()) / max(1, self.host.cpu_count)

    def running_tasks(self) -> List[str]:
        return [u for u, t in self.tasks.items() if t.state == TaskState.RUNNING]

    # -- spawning (§5.5) ---------------------------------------------------------
    def check_requirements(self, spec: TaskSpec) -> Optional[str]:
        """None if the host satisfies the spec, else the reason it doesn't."""
        if spec.arch is not None and spec.arch != self.host.arch:
            return f"arch {spec.arch} != {self.host.arch}"
        if spec.os is not None and spec.os != self.host.os:
            return f"os {spec.os} != {self.host.os}"
        if spec.min_memory > self.host.memory:
            return f"memory {spec.min_memory} > {self.host.memory}"
        if spec.mobile_code is None and spec.program not in self.programs:
            return f"unknown program {spec.program!r}"
        return None

    def spawn(self, spec: TaskSpec) -> TaskInfo:
        """Start a task on this host (direct API; RPC wraps this).

        Raises :class:`SpawnError` if requirements fail. The returned
        TaskInfo is live — its ``state`` field tracks the task.
        """
        reason = self.check_requirements(spec)
        if reason is not None:
            raise SpawnError(f"{self.host.name}: {reason}")
        if spec.mobile_code is not None:
            if self.playground is None:
                raise SpawnError(f"{self.host.name}: no playground for mobile code")
            return self.playground.spawn_mobile(spec)
        info = TaskInfo(urn=new_task_urn(spec, self.host.name, sim=self.sim), spec=spec,
                        host=self.host.name, started_at=self.sim.now)
        ctx = self.context_factory(self, info)
        fn = self.programs.get(spec.program)
        self._launch(info, ctx, fn(ctx, **spec.params))
        return info

    def _launch(self, info: TaskInfo, ctx: TaskContext, gen) -> None:
        stale = self.tasks.get(info.urn)
        if stale is not None and stale.state not in TaskState.TERMINAL:
            # Respawn of an URN we still host: whatever runs here is a
            # superseded incarnation (e.g. a partition zombie that the
            # Guardian replaced). Fence it before it loses its map entry,
            # or it could never be stopped through the daemon again.
            self.fence(info.urn, "superseded")
        self._m_spawns.inc()
        if self.sim.obs.tracer.enabled:
            self.sim.obs.tracer.event(
                "daemon.spawn", host=self.host.name, urn=info.urn,
                program=info.spec.program,
            )
        info.state = TaskState.RUNNING
        self.tasks[info.urn] = info
        self.contexts[info.urn] = ctx
        proc = self.sim.process(gen, name=f"task:{info.urn}")
        self._procs[info.urn] = proc
        proc.add_callback(lambda ev: self._on_task_end(info, ev))
        self._publish_process(info)

    def _on_task_end(self, info: TaskInfo, ev) -> None:
        if info.state in TaskState.TERMINAL:
            return  # already killed/migrated; exit raced the interrupt
        if ev.ok:
            info.state = TaskState.EXITED
            info.exit_value = ev._value
        else:
            try:
                ev.value
            except QuotaExceeded as exc:
                info.state = TaskState.KILLED
                info.error = str(exc)
            except Interrupt as exc:
                info.state = TaskState.KILLED
                info.error = f"interrupted: {exc.cause}"
            except Exception as exc:
                info.state = TaskState.FAILED
                info.error = str(exc)
        info.ended_at = self.sim.now
        if info.started_at is not None:
            self._m_task_lifetime.observe(info.ended_at - info.started_at)
        self._publish_process(info)
        self._fire_notifications(info)

    # -- task control -------------------------------------------------------------
    def kill(self, urn: str, reason: str = "killed") -> bool:
        info = self.tasks.get(urn)
        proc = self._procs.get(urn)
        if info is None or info.state in TaskState.TERMINAL:
            return False
        info.state = TaskState.KILLED
        info.error = reason
        info.ended_at = self.sim.now
        if proc is not None and proc.is_alive:
            proc.interrupt(reason)
        self._publish_process(info)
        self._fire_notifications(info)
        return True

    def fence(self, urn: str, reason: str = "fenced", ctx=None) -> bool:
        """Quietly terminate a superseded incarnation (§5.6 fencing).

        Unlike :meth:`kill` this publishes *nothing*: the Guardian has
        already respawned the task elsewhere and rewritten its RC record,
        so any write from this corpse would win the last-writer-wins race
        and advertise a dead location. Watchers likewise hear from the
        successor, not the corpse.

        *ctx*, when given, is the calling context fencing itself: if the
        daemon's registration for *urn* no longer points at it (a newer
        incarnation respawned here and displaced it), the call is a no-op
        so a zombie can never fence its own successor through the maps.
        """
        if ctx is not None and self.contexts.get(urn) is not ctx:
            return False
        info = self.tasks.get(urn)
        proc = self._procs.get(urn)
        if info is None or info.state in TaskState.TERMINAL:
            return False
        info.fenced = True
        info.state = TaskState.KILLED
        info.error = reason
        info.ended_at = self.sim.now
        if proc is not None and proc.is_alive:
            proc.interrupt(reason)
        self.sim.obs.metrics.counter("daemon.fenced").inc()
        if self.sim.obs.tracer.enabled:
            self.sim.obs.tracer.event(
                "daemon.fence", host=self.host.name, urn=urn, reason=reason
            )
        return True

    def suspend(self, urn: str) -> bool:
        info = self.tasks.get(urn)
        ctx = self.contexts.get(urn)
        if info is None or ctx is None or info.state != TaskState.RUNNING:
            return False
        info.state = TaskState.SUSPENDED
        ctx._suspend()
        self._publish_process(info)
        self._fire_notifications(info)
        return True

    def resume(self, urn: str) -> bool:
        info = self.tasks.get(urn)
        ctx = self.contexts.get(urn)
        if info is None or ctx is None or info.state != TaskState.SUSPENDED:
            return False
        info.state = TaskState.RUNNING
        ctx._resume()
        self._publish_process(info)
        return True

    def signal(self, urn: str, signal: Any) -> bool:
        """Asynchronous signal delivery to a local task (§3.3)."""
        ctx = self.contexts.get(urn)
        info = self.tasks.get(urn)
        if ctx is None or info is None or info.state in TaskState.TERMINAL:
            return False
        ctx.signals.try_put(signal)
        return True

    def log_violation(self, urn: str, kind: str) -> None:
        """Record a quota/access violation (§3.6: logging access violations)."""
        self.violations.append((self.sim.now, urn, kind))

    # -- RC publication & notifications -----------------------------------------
    def _publish_process(self, info: TaskInfo) -> None:
        if self.rc is None or not self.host.up or info.fenced:
            return
        assertions = {
            "state": info.state,
            "host": self.host.name,
            "supervisor": self.url,
            "program": info.spec.program,
        }
        if info.ended_at is not None:
            assertions["exit-error"] = info.error
        defuse(self.rc.update(info.urn, assertions))

    def _fire_notifications(self, info: TaskInfo) -> None:
        if self.rc is None or not self.host.up or info.fenced:
            return
        defuse(
            self.sim.process(
                self._notify_watchers(info), name=f"notify:{info.urn}"
            )
        )

    def _notify_watchers(self, info: TaskInfo):
        """Resolve the task's notify list via RC and inform each watcher."""
        try:
            assertions = yield self.rc.lookup(info.urn)
        except Exception:
            return
        watchers = (assertions.get("notify-list") or {}).get("value") or []
        event = {
            "kind": "state-change",
            "urn": info.urn,
            "state": info.state,
            "error": info.error,
            "at": self.sim.now,
        }
        for watcher_urn in watchers:
            try:
                w_meta = yield self.rc.lookup(watcher_urn)
                w_host = (w_meta.get("host") or {}).get("value")
                if w_host is None:
                    continue
                yield self._client.call(
                    w_host, DAEMON_PORT, "daemon.notify",
                    timeout=TIMEOUTS["daemon.notify"], lane=CONTROL,
                    urn=watcher_urn, event=event,
                )
            except (RpcError, Exception):
                continue

    # -- host crash (fail-stop) ---------------------------------------------------
    def _on_host_crash(self, host) -> None:
        for urn, info in list(self.tasks.items()):
            if info.state in TaskState.TERMINAL:
                continue
            info.state = TaskState.KILLED
            info.error = "host-crash"
            info.ended_at = self.sim.now
            self._unpublished.add(urn)
            proc = self._procs.get(urn)
            if proc is not None and proc.is_alive:
                proc.interrupt("host-crash")
        # No RC update, no notifications: the host is dead. Watchers learn
        # from timeouts, lapsed leases, and stale metadata — exactly the
        # paper's model. If the host later recovers, _on_host_recover
        # reconciles these deaths against the catalog.

    def _on_host_recover(self, host) -> None:
        if self.rc is None or not self._unpublished or self._reconciling:
            return
        self._reconciling = True
        defuse(self.sim.process(self._reconcile_loop(),
                                name=f"daemon-reconcile:{self.host.name}"))

    def _reconcile_loop(self):
        """Keep reconciling until every locally-known death is either
        published or disowned. A recovery that lands while the catalog is
        unreachable (the host came back inside a partition) must not
        leave ghost RUNNING records: nobody else knows the task died, the
        host's lease looks healthy again, and a Guardian confirming
        against a quorum would conclude the task is fine forever.
        """
        try:
            while self._unpublished and self.host.up:
                yield from self._reconcile()
                if self._unpublished:
                    yield self.sim.timeout(self.reconcile_retry)
        finally:
            self._reconciling = False

    def _reconcile(self):
        """After a crash+recovery, report locally-known deaths — but only
        for tasks the catalog still attributes to *this* host and this
        instance. If a Guardian already respawned the task elsewhere (or a
        newer incarnation exists anywhere), a write from us would clobber
        the successor's record under last-writer-wins, so we stay silent.
        """
        pending, self._unpublished = self._unpublished, set()
        for urn in sorted(pending):
            info = self.tasks.get(urn)
            if info is None or info.fenced:
                continue
            try:
                meta = yield self.rc.lookup(urn, consistency="quorum")
            except Exception:
                self._unpublished.add(urn)  # catalog unreachable; retried by the loop
                continue

            def val(key):
                entry = meta.get(key)
                return entry["value"] if entry else None

            if val("host") != self.host.name or val("state") != TaskState.RUNNING:
                continue  # a successor (or someone else) owns the record now
            inc = val("incarnation")
            ctx = self.contexts.get(urn)
            local_inc = getattr(ctx, "incarnation", None)
            if inc is not None and local_inc is not None and inc > local_inc:
                continue  # record belongs to a newer incarnation
            fence = val("fenced-below")
            if fence is not None and local_inc is not None and local_inc < fence:
                continue  # a Guardian is already respawning this task
            self._publish_process(info)
            self._fire_notifications(info)

    # -- RPC handlers -----------------------------------------------------------
    def set_brokers(self, brokers) -> None:
        """Install the broker list and advertise it in host metadata."""
        self.brokers = list(brokers)
        if self.rc is not None:
            defuse(
                self.rc.update(
                    uri_mod.host_url(self.host.name),
                    {"brokers": [f"{h}:{p}" for h, p in self.brokers]},
                )
            )

    def _h_spawn(self, args: Dict):
        if self.brokers and not args.get("direct"):
            # §5.5: "The host daemon may handle the request itself, or
            # refer the request to a broker." Referred requests come back
            # with direct=True set by the broker.
            return self._refer_to_broker(args)
        spec = args["spec"]
        if spec.fence_predecessors and spec.urn_override is not None and self.rc is not None:
            return self._spawn_fenced(spec)
        info = self.spawn(spec)
        return {"urn": info.urn, "state": info.state}

    def _spawn_fenced(self, spec: TaskSpec):
        """Guardian respawn: prove the fence *before* the successor exists.

        Spawn requests are retried across RM replicas and across candidate
        hosts when a reply is lost, so a single recovery can start two
        successors — and the Guardian's own fence, written once before the
        first attempt, covers neither against the other. Each start
        therefore draws a fresh value from the incarnation sequence and
        quorum-writes it as ``fenced-below`` before launching anything:
        the value postdates every incarnation already in existence (the
        corpse and any sibling successor a retried request started), so
        whichever successor launches last has provably fenced all the
        others, and the fence watch converges the siblings to one owner.
        A daemon that cannot complete the quorum write refuses to spawn:
        an unprovably-fenced duplicate inside a partition is a future
        zombie, and the requester's retry will land somewhere that can.
        """
        urn = spec.urn_override
        fence = self.sim.sequence("incarnation")
        yield self.rc.update(urn, {"fenced-below": fence}, consistency="quorum")
        if self.sim.probes is not None:
            self.sim.probes.emit("guardian.fence", urn=urn, fence=fence)
        info = self.spawn(spec)
        return {"urn": info.urn, "state": info.state}

    def _refer_to_broker(self, args: Dict):
        spec = args["spec"]
        errors = []
        for b_host, b_port in self.brokers:
            try:
                result = yield self._client.call(
                    b_host, b_port, "rm.request",
                    timeout=TIMEOUTS["broker.refer"], spec=spec,
                    owner=spec.owner or "anonymous",
                )
                return {"urn": result.get("urn"), "state": "running",
                        "via_broker": f"{b_host}:{b_port}"}
            except RpcError as exc:
                errors.append(str(exc))
        raise RpcError(f"all brokers unreachable/refused: {errors}")

    def _h_kill(self, args: Dict) -> bool:
        return self.kill(args["urn"], args.get("reason", "killed"))

    def _h_fence(self, args: Dict) -> bool:
        return self.fence(args["urn"], args.get("reason", "fenced"))

    def _h_signal(self, args: Dict) -> bool:
        return self.signal(args["urn"], args["signal"])

    def _h_suspend(self, args: Dict) -> bool:
        return self.suspend(args["urn"])

    def _h_resume(self, args: Dict) -> bool:
        return self.resume(args["urn"])

    def _h_ping(self, args: Dict) -> Dict:
        """Liveness probe (Guardian second-path check before declaring a
        death): proves the daemon answers RPCs, and reports its wall
        clock so a probe can distinguish "dead" from "skewed"."""
        return {
            "host": self.host.name,
            "clock": self.host.clock(),
            "tasks": len(self.running_tasks()),
        }

    def _h_status(self, args: Dict) -> Dict:
        info = self.tasks.get(args["urn"])
        if info is None:
            raise KeyError(f"no such task {args['urn']!r}")
        return {
            "state": info.state,
            "cpu": info.cpu_used,
            "memory": info.memory_used,
            "error": info.error,
            "exit_value": info.exit_value,
        }

    def _h_list(self, args: Dict) -> List[str]:
        return sorted(self.tasks)

    def _h_load(self, args: Dict) -> Dict:
        return {
            "load": self.load(),
            "tasks": len(self.running_tasks()),
            "cpus": self.host.cpu_count,
            "memory": self.host.memory,
        }

    def _h_lookup(self, args: Dict) -> Dict:
        """Name-to-address lookup of local tasks."""
        info = self.tasks.get(args["urn"])
        if info is None:
            raise KeyError(f"no such task {args['urn']!r}")
        return {"host": self.host.name, "state": info.state}

    def _h_notify(self, args: Dict) -> bool:
        """Deliver a state-change notification to a local task."""
        ctx = self.contexts.get(args["urn"])
        if ctx is None:
            return False
        ctx.notifications.try_put(args["event"])
        return True

    def _h_checkpoint(self, args: Dict) -> Dict:
        """Capture a task's checkpointable state (migration support)."""
        ctx = self.contexts.get(args["urn"])
        if ctx is None:
            raise KeyError(f"no such task {args['urn']!r}")
        return dict(ctx.checkpoint_state)

    def migrate_out(self, urn: str) -> Dict:
        """Checkpoint and stop a task so it can restart elsewhere (§5.6:
        \"the details of process migration may be arranged by the host
        daemon rather than the process itself\")."""
        info = self.tasks.get(urn)
        ctx = self.contexts.get(urn)
        if info is None or ctx is None or info.state in TaskState.TERMINAL:
            raise KeyError(f"task {urn!r} not running here")
        state = dict(ctx.checkpoint_state)
        info.state = TaskState.MIGRATED
        info.ended_at = self.sim.now
        proc = self._procs.get(urn)
        if proc is not None and proc.is_alive:
            proc.interrupt("migrated")
        self._publish_process(info)
        self._fire_notifications(info)
        return {"spec": info.spec, "state": state}

    def _h_migrate_out(self, args: Dict) -> Dict:
        return self.migrate_out(args["urn"])
