"""Task model: specs, states, program registry, and the task context.

A "program" is a registered generator function ``prog(ctx, **params)``;
spawning creates a :class:`TaskInfo` and runs the program as a simulation
process under the host daemon's supervision. The :class:`TaskContext`
gives programs their window on the world: virtual CPU consumption (with
quota enforcement), signals, notifications, and suspend/resume — the
richer SNIPE client-library context in :mod:`repro.core` extends it with
messaging, metadata, spawning and migration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, Optional

from repro.rcds import uri as uri_mod
from repro.sim.resources import Gate, Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.daemon.daemon import SnipeDaemon
    from repro.sim.kernel import Simulator

_task_seq = itertools.count(1)


class TaskState:
    """Lifecycle states, as reported in RC process metadata (§5.2.3)."""

    PENDING = "pending"
    RUNNING = "running"
    SUSPENDED = "suspended"
    EXITED = "exited"
    FAILED = "failed"
    KILLED = "killed"
    MIGRATED = "migrated"

    TERMINAL = frozenset({EXITED, FAILED, KILLED, MIGRATED})


class QuotaExceeded(Exception):
    """A task exceeded its CPU or memory quota (§3.3: quota violations)."""


@dataclass
class TaskSpec:
    """What to run and what it needs (§5.5's environment specification)."""

    program: str
    params: Dict[str, Any] = field(default_factory=dict)
    #: Requirements matched against host metadata by daemons/RMs.
    arch: Optional[str] = None
    os: Optional[str] = None
    min_memory: float = 0.0
    #: Quotas enforced by the supervising daemon.
    cpu_quota: Optional[float] = None
    memory_quota: Optional[float] = None
    #: Optional explicit name stem for the URN.
    name: Optional[str] = None
    #: Checkpointed state to resume from (migration/restart).
    initial_state: Optional[Dict[str, Any]] = None
    #: Mobile code requires a playground (§3.6): signed code reference.
    mobile_code: Optional[str] = None
    owner: Optional[str] = None
    #: Keep this URN across a migration instead of minting a new one —
    #: the paper's processes keep their distinguished URN when they move.
    urn_override: Optional[str] = None
    #: Guardian respawn: before starting the task, the daemon draws a
    #: fresh incarnation-sequence value and quorum-writes it as the
    #: URN's ``fenced-below``. Spawn requests are retried by RMs and
    #: clients whose reply was lost, so two successors can be started
    #: under one recovery; with this set, whichever starts later has
    #: provably fenced every predecessor first (the fence value postdates
    #: their incarnations), and a daemon that cannot prove the fence
    #: (no quorum) refuses to start what would be a future zombie.
    #: Never set for migration — the moved task keeps its incarnation,
    #: which predates any fence drawn at spawn time.
    fence_predecessors: bool = False


@dataclass
class TaskInfo:
    """Supervision record the daemon keeps per task."""

    urn: str
    spec: TaskSpec
    host: str
    state: str = TaskState.PENDING
    exit_value: Any = None
    error: str = ""
    cpu_used: float = 0.0
    memory_used: float = 0.0
    started_at: float = 0.0
    ended_at: Optional[float] = None
    #: True when this instance was terminated because a newer incarnation
    #: superseded it (Guardian fencing). Fenced deaths are never published
    #: to RC — the catalog already names the successor, and a later write
    #: from the corpse would win the last-writer-wins race and advertise a
    #: dead location.
    fenced: bool = False


def new_task_urn(spec: TaskSpec, host: str, sim: Optional["Simulator"] = None) -> str:
    """Mint a URN for a new task.

    When *sim* is given the sequence number comes from that simulation's
    own counter, so identical runs mint identical URNs regardless of what
    ran earlier in the process — URN text feeds the Guardians' hash
    sharding, so this is a behavioural requirement for replayable runs,
    not cosmetics. The module-global counter remains as a fallback for
    sim-less callers.
    """
    if spec.urn_override is not None:
        return spec.urn_override
    stem = spec.name or spec.program
    seq = sim.sequence("task-urn") if sim is not None else next(_task_seq)
    return uri_mod.process_urn(f"{stem}.{seq}")


class ProgramRegistry:
    """Name → generator-function registry of runnable programs.

    The same registry backs ordinary spawns and (via signed code
    references) playground execution of mobile code.
    """

    def __init__(self) -> None:
        self._programs: Dict[str, Callable[..., Generator]] = {}

    def register(self, name: str, fn: Callable[..., Generator]) -> None:
        if name in self._programs:
            raise ValueError(f"program {name!r} already registered")
        self._programs[name] = fn

    def get(self, name: str) -> Callable[..., Generator]:
        fn = self._programs.get(name)
        if fn is None:
            raise KeyError(f"unknown program {name!r}")
        return fn

    def __contains__(self, name: str) -> bool:
        return name in self._programs

    def names(self):
        return sorted(self._programs)


class TaskContext:
    """Execution context handed to a running program.

    Programs interact with the simulator exclusively through their
    context; ``yield ctx.compute(t)`` consumes virtual CPU (respecting the
    host's speed, suspension, and the task's quota), ``yield
    ctx.next_signal()`` waits for asynchronous signals, and
    ``ctx.checkpoint_state`` is where migratable programs keep state the
    daemon may capture.
    """

    def __init__(self, daemon: "SnipeDaemon", info: TaskInfo) -> None:
        self.daemon = daemon
        self.info = info
        self.sim: "Simulator" = daemon.sim
        self.host = daemon.host
        self.urn = info.urn
        self.signals: Store = Store(self.sim)
        self.notifications: Store = Store(self.sim)
        self._resume_gate = Gate(self.sim)
        self._resume_gate.open()
        #: Programs that support checkpoint/migration keep their state here.
        self.checkpoint_state: Dict[str, Any] = dict(info.spec.initial_state or {})

    # -- CPU ----------------------------------------------------------------
    def compute(self, cpu_seconds: float):
        """Consume CPU; returns an event to yield on."""
        return self.sim.process(self._compute(cpu_seconds), name=f"compute:{self.urn}")

    def _compute(self, cpu_seconds: float):
        # Wait out any suspension first (§3.3 task management).
        yield self._resume_gate.wait()
        wall = cpu_seconds / self.host.cpu_speed
        yield self.sim.timeout(wall)
        self.info.cpu_used += cpu_seconds
        quota = self.info.spec.cpu_quota
        if quota is not None and self.info.cpu_used > quota:
            self.daemon.log_violation(self.urn, "cpu-quota")
            raise QuotaExceeded(f"{self.urn}: cpu {self.info.cpu_used:.3f}s > quota {quota}s")

    def allocate_memory(self, amount: float) -> None:
        """Claim memory; raises immediately on quota violation."""
        self.info.memory_used += amount
        quota = self.info.spec.memory_quota
        if quota is not None and self.info.memory_used > quota:
            self.daemon.log_violation(self.urn, "memory-quota")
            raise QuotaExceeded(
                f"{self.urn}: memory {self.info.memory_used} > quota {quota}"
            )

    def free_memory(self, amount: float) -> None:
        self.info.memory_used = max(0.0, self.info.memory_used - amount)

    # -- signals & notifications -----------------------------------------------
    def next_signal(self):
        """Event yielding the next asynchronous signal (§3.3)."""
        return self.signals.get()

    def next_notification(self):
        """Event yielding the next state-change notification (§5.2.3)."""
        return self.notifications.get()

    # -- suspension (driven by the daemon) -------------------------------------
    def _suspend(self) -> None:
        self._resume_gate.reset()

    def _resume(self) -> None:
        self._resume_gate.open()

    def sleep(self, seconds: float):
        """Plain wall-clock sleep (no CPU accounting)."""
        return self.sim.timeout(seconds)
