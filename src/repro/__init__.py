"""SNIPE — Scalable Networked Information Processing Environment.

A full reproduction of Fagg, Moore & Dongarra's SNIPE (SC'97 / FGCS 1999)
on a deterministic discrete-event substrate. See DESIGN.md for the system
inventory and EXPERIMENTS.md for the reproduced evaluation.

Layering (bottom-up): :mod:`repro.sim` (event kernel) → :mod:`repro.net`
(hosts/links/media) → :mod:`repro.transport` (SRUDP/TCP/multicast) →
:mod:`repro.rcds` + :mod:`repro.security` → :mod:`repro.daemon`,
:mod:`repro.files`, :mod:`repro.rm`, :mod:`repro.playground` →
:mod:`repro.core` (the SNIPE client library) → :mod:`repro.console`,
:mod:`repro.mpi`; with :mod:`repro.pvm` as the comparison baseline.
"""

__version__ = "1.0.0"
