"""Mini-MPI, PVMPI, and MPI_Connect (§6.1).

The paper's flagship application: PVMPI let different vendor MPI
implementations interoperate by bridging them through PVM; MPI_Connect
re-based the bridge on SNIPE "for name resolution and across host
communication instead of utilizing PVM", which "proved easier to
maintain (no virtual machine to disappear) and also offered a slightly
higher point-to-point communication performance".

* :mod:`repro.mpi.mpi` — a real mini-MPI: ranks, tagged point-to-point,
  binomial-tree broadcast/reduce, barrier, gather — running on each
  MPP's fast internal fabric.
* :mod:`repro.mpi.bridge` — the intercommunicator bridges:
  :class:`PvmpiBridge` (name registry + routing through pvmds) and
  :class:`MpiConnectBridge` (names in RC metadata, direct SRUDP
  task-to-task traffic).
"""

from repro.mpi.mpi import MpiContext, MpiJob, MpiError
from repro.mpi.bridge import InterBridgeError, MpiConnectBridge, PvmpiBridge

__all__ = [
    "InterBridgeError",
    "MpiConnectBridge",
    "MpiContext",
    "MpiError",
    "MpiJob",
    "PvmpiBridge",
]
