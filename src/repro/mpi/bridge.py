"""Inter-MPI bridges: PVMPI (via PVM) vs MPI_Connect (via SNIPE) — §6.1.

Both bridges expose the same API — register an application under a
global name, connect to a named remote application, and exchange tagged
messages with its ranks — so experiment E2 compares them head-to-head on
identical fabric:

* :class:`PvmpiBridge` enrolls each rank as a PVM task; names live in
  the master pvmd's registry; every inter-application message takes the
  default PVM route **through the pvmds** (task → pvmd → pvmd → task),
  and the whole thing dies with the PVM master.
* :class:`MpiConnectBridge` registers names in replicated RC metadata
  and sends **directly task-to-task** over SRUDP — no daemon in the data
  path and no virtual machine to disappear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.mpi.mpi import MpiJob
from repro.pvm.pvmd import PvmContext, PvmError, Pvmd
from repro.rcds import uri as uri_mod
from repro.rcds.client import QUORUM, RCClient
from repro.rpc import RpcError, payload_size
from repro.sim.events import Event
from repro.sim.resources import Store
from repro.transport.srudp import SrudpEndpoint

if TYPE_CHECKING:  # pragma: no cover
    pass


class InterBridgeError(Exception):
    """Registration/lookup failed or the remote application is gone."""


@dataclass
class InterMsg:
    """A message between two bridged MPI applications."""

    src_app: str
    src_rank: int
    tag: Any
    payload: Any


class PvmpiBridge:
    """PVMPI: ranks enroll into PVM; data flows through the pvmds."""

    def __init__(self, job: MpiJob, pvmds: Dict[str, Pvmd], app_name: str) -> None:
        self.job = job
        self.sim = job.sim
        self.app_name = app_name
        self.pvmds = pvmds
        self.rank_tids: List[int] = []
        self.rank_ctxs: List[PvmContext] = []
        for ctx in job.contexts:
            pvmd = pvmds.get(ctx.host.name)
            if pvmd is None:
                raise InterBridgeError(f"no pvmd on {ctx.host.name}")
            tid, pvm_ctx = pvmd.enroll()
            self.rank_tids.append(tid)
            self.rank_ctxs.append(pvm_ctx)
        self._master = next(iter(pvmds.values()))

    def register(self):
        """Publish this application's tids in the PVM registry (a process)."""
        return self._master.putinfo(f"pvmpi:{self.app_name}", list(self.rank_tids))

    def connect(self, remote_app: str, timeout: float = 10.0):
        """Resolve a remote application's rank tids (a process)."""
        return self.sim.process(
            self._connect(remote_app, timeout), name=f"pvmpi-connect:{remote_app}"
        )

    def _connect(self, remote_app: str, timeout: float):
        deadline = self.sim.now + timeout
        while True:
            try:
                tids = yield self._master.getinfo(f"pvmpi:{remote_app}")
                return {"app": remote_app, "tids": list(tids)}
            except (RpcError, PvmError) as exc:
                if self.sim.now >= deadline:
                    raise InterBridgeError(f"connect {remote_app!r}: {exc}") from None
                yield self.sim.timeout(0.2)

    def send(self, my_rank: int, remote: Dict, remote_rank: int, payload: Any,
             tag: Any = 0, size: Optional[int] = None):
        """Inter-application send via the pvmd route (a process)."""
        ctx = self.rank_ctxs[my_rank]
        msg = InterMsg(self.app_name, my_rank, tag, payload)
        if size is None:
            size = payload_size(payload)
        return ctx.send(remote["tids"][remote_rank], msg, tag=("inter", tag), size=size)

    def recv(self, my_rank: int, tag: Any = 0):
        """Event yielding the next :class:`InterMsg` for this rank."""
        ev = Event(self.sim)
        inner = self.rank_ctxs[my_rank].recv(tag=("inter", tag))

        def unwrap(e):
            if e._exc is not None:
                ev.fail(e._exc)
            else:
                ev.succeed(e._value.payload)

        inner.add_callback(unwrap)
        return ev


class MpiConnectBridge:
    """MPI_Connect: names in RC metadata, direct task-to-task traffic."""

    def __init__(
        self,
        job: MpiJob,
        rc_replicas: List[Tuple[str, int]],
        app_name: str,
        secret: Optional[bytes] = None,
    ) -> None:
        self.job = job
        self.sim = job.sim
        self.app_name = app_name
        self.endpoints: List[SrudpEndpoint] = []
        self.inboxes: List[Dict[Any, Store]] = []
        self._rc_clients: List[RCClient] = []
        for ctx in job.contexts:
            port = ctx.host.ephemeral_port()
            ep = SrudpEndpoint(ctx.host, port)
            self.endpoints.append(ep)
            self.inboxes.append({})
            self._rc_clients.append(RCClient(ctx.host, rc_replicas, secret=secret))
            self.sim.process(self._rx_loop(ctx.rank), name=f"mpic-rx:{app_name}[{ctx.rank}]")

    def _inbox(self, rank: int, tag: Any) -> Store:
        box = self.inboxes[rank].get(tag)
        if box is None:
            box = self.inboxes[rank][tag] = Store(self.sim)
        return box

    def _rx_loop(self, rank: int):
        ep = self.endpoints[rank]
        while True:
            raw = yield ep.recv()
            msg = raw.payload
            if isinstance(msg, InterMsg):
                self._inbox(rank, msg.tag).try_put(msg)

    def register(self):
        """Publish rank addresses in RC metadata (a process)."""
        urn = uri_mod.service_urn(f"mpi:{self.app_name}")
        assertions = {
            f"rank:{i}": (ep.host.name, ep.port)
            for i, ep in enumerate(self.endpoints)
        }
        assertions["size"] = len(self.endpoints)
        return self._rc_clients[0].update(urn, assertions, QUORUM)

    def connect(self, remote_app: str, timeout: float = 10.0):
        """Resolve a remote application's rank addresses (a process)."""
        return self.sim.process(
            self._connect(remote_app, timeout), name=f"mpic-connect:{remote_app}"
        )

    def _connect(self, remote_app: str, timeout: float):
        urn = uri_mod.service_urn(f"mpi:{remote_app}")
        deadline = self.sim.now + timeout
        rc = self._rc_clients[0]
        while True:
            try:
                meta = yield rc.lookup(urn, QUORUM)
            except Exception:
                meta = {}
            ranks = {}
            for key, info in meta.items():
                if key.startswith("rank:"):
                    ranks[int(key[5:])] = tuple(info["value"])
            if ranks:
                return {"app": remote_app, "ranks": ranks}
            if self.sim.now >= deadline:
                raise InterBridgeError(f"connect {remote_app!r}: no metadata")
            yield self.sim.timeout(0.2)

    def send(self, my_rank: int, remote: Dict, remote_rank: int, payload: Any,
             tag: Any = 0, size: Optional[int] = None):
        """Direct task-to-task send over SRUDP (a process)."""
        host, port = remote["ranks"][remote_rank]
        msg = InterMsg(self.app_name, my_rank, tag, payload)
        if size is None:
            size = payload_size(payload)
        return self.endpoints[my_rank].send(host, port, msg, size)

    def recv(self, my_rank: int, tag: Any = 0):
        """Event yielding the next :class:`InterMsg` for this rank."""
        return self._inbox(my_rank, tag).get()
