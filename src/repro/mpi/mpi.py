"""A mini-MPI: the vendor-optimized intra-MPP message passing layer.

One :class:`MpiJob` = one MPI_COMM_WORLD: N ranks, one per host of an
MPP, communicating over the machine's internal fabric with SRUDP
endpoints. Point-to-point is tagged and source-filtered; broadcast and
reduce use binomial trees (log₂N rounds, as real implementations do),
with large broadcasts switching to a pipelined chunk chain (also as
real implementations do); barrier is a reduce-then-broadcast of
nothing.
"""

from __future__ import annotations

import itertools
import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.bulk.chunks import DEFAULT_CHUNK_SIZE, split_chunks
from repro.rpc import ENVELOPE_BYTES, payload_size
from repro.sim.events import Event, defuse
from repro.transport.srudp import SrudpEndpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.sim.kernel import Simulator

_job_ids = itertools.count(1)

#: Base port for MPI jobs; each job gets its own port (shared by ranks,
#: which live on distinct hosts).
MPI_PORT_BASE = 4200


class MpiError(Exception):
    """Communicator misuse (bad rank, mismatched collective, ...)."""


@dataclass
class _RankMsg:
    src: int
    tag: Any
    payload: Any


class MpiContext:
    """Per-rank handle: the MPI API surface the job's program uses."""

    def __init__(self, job: "MpiJob", rank: int, host: "Host") -> None:
        self.job = job
        self.rank = rank
        self.size = job.size
        self.host = host
        self.sim: "Simulator" = job.sim
        self.endpoint = SrudpEndpoint(host, job.port)
        self._pending: List[_RankMsg] = []
        self._waiters: List[Tuple[Optional[int], Any, Event]] = []
        # Collective ordinal: MPI requires every rank to call collectives
        # in the same order, so this counter agrees across ranks and tags
        # each collective's traffic unambiguously.
        self._coll_seq = itertools.count()
        self.sim.process(self._rx_loop(), name=f"mpi-rx:{job.name}[{rank}]")

    # -- point to point ------------------------------------------------------
    def send(self, dst: int, payload: Any, tag: Any = 0, size: Optional[int] = None):
        """Blocking-semantics send (completion = delivered); yield it."""
        if not 0 <= dst < self.size:
            raise MpiError(f"rank {dst} out of range 0..{self.size - 1}")
        if size is None:
            size = payload_size(payload)
        msg = _RankMsg(self.rank, tag, payload)
        return self.endpoint.send(self.job.hosts[dst].name, self.job.port, msg, size)

    def recv(self, src: Optional[int] = None, tag: Any = None):
        """Event yielding the next matching message's payload holder."""
        ev = Event(self.sim)
        for i, msg in enumerate(self._pending):
            if self._match(msg, src, tag):
                del self._pending[i]
                ev.succeed(msg)
                return ev
        self._waiters.append((src, tag, ev))
        return ev

    @staticmethod
    def _match(msg: _RankMsg, src: Optional[int], tag: Any) -> bool:
        return (src is None or msg.src == src) and (tag is None or msg.tag == tag)

    def _rx_loop(self):
        while True:
            raw = yield self.endpoint.recv()
            msg = raw.payload
            if not isinstance(msg, _RankMsg):
                continue
            for i, (src, tag, ev) in enumerate(self._waiters):
                if self._match(msg, src, tag):
                    del self._waiters[i]
                    ev.succeed(msg)
                    break
            else:
                self._pending.append(msg)

    # -- collectives -------------------------------------------------------------

    #: Payloads whose encoding exceeds this many bytes switch the
    #: broadcast to a pipelined chunk chain; smaller values take the
    #: classic binomial whole-message path unchanged. The value is the
    #: system-wide bulk chunk size, so MPI, the file servers, and the
    #: bulk data plane all stream in the same units.
    pipeline_threshold = DEFAULT_CHUNK_SIZE

    def bcast(self, value: Any, root: int = 0):
        """Broadcast; returns a process yielding the value on every rank.

        Like real MPI implementations, the algorithm switches on message
        size. Small values use the binomial tree (latency-optimal:
        log2 N rounds). Large values (encoding > than
        :attr:`pipeline_threshold`) are split into bulk-sized chunks and
        pipelined down a rank chain — each rank forwards chunk *k* to
        its successor while chunk *k+1* is still in flight from its
        predecessor — so every interface serialises the object exactly
        once and the time scales like ``size/bandwidth + N*chunk_time``
        instead of the binomial tree's ``log2(N) * size/bandwidth``.
        Non-root ranks discover which algorithm the root chose from the
        shape of the first message, so the caller API is unchanged.
        """
        return self.sim.process(self._bcast(value, root), name=f"bcast:{self.rank}")

    def _bcast(self, value: Any, root: int):
        # Canonical binomial broadcast (MPICH-style), renumbered so the
        # root is virtual rank 0.
        size = self.size
        vrank = (self.rank - root) % size
        tag = ("__bcast__", next(self._coll_seq))
        mask = 1
        first = None
        while mask < size:
            if vrank & mask:
                first = yield self.recv(tag=tag)
                break
            mask <<= 1
        mask >>= 1
        children = []
        while mask > 0:
            if vrank + mask < size:
                children.append((vrank + mask + root) % size)
            mask >>= 1
        if first is None:  # root
            if size == 1 or payload_size(value) - ENVELOPE_BYTES <= self.pipeline_threshold:
                for real in children:
                    yield self.send(real, value, tag=tag)
                return value
            # Large message: head of the pipelined chunk chain.
            blob = pickle.dumps(value, protocol=4)
            chunks = split_chunks(blob, self.pipeline_threshold)
            nxt = (1 + root) % size
            for seq, part in enumerate(chunks):
                yield self.send(
                    nxt, ("__mpi_chunk__", seq, len(chunks), part),
                    tag=tag, size=len(part) + 32,
                )
            return value
        payload = first.payload
        if not self._is_chunk(payload):  # classic small-message path
            for real in children:
                yield self.send(real, payload, tag=tag)
            return payload
        # Chunk chain: forward each chunk to the successor the moment it
        # arrives (the pipelining), reassemble once all are here.
        nxt = ((vrank + 1) + root) % size if vrank + 1 < size else None
        _, seq, nchunks, part = payload
        parts = {seq: part}
        while True:
            if nxt is not None:
                yield self.send(
                    nxt, ("__mpi_chunk__", seq, nchunks, part),
                    tag=tag, size=len(part) + 32,
                )
            if len(parts) == nchunks:
                break
            msg = yield self.recv(tag=tag)
            _, seq, nchunks, part = msg.payload
            parts[seq] = part
        return pickle.loads(b"".join(parts[i] for i in range(nchunks)))

    @staticmethod
    def _is_chunk(payload: Any) -> bool:
        return (
            isinstance(payload, tuple)
            and len(payload) == 4
            and payload[0] == "__mpi_chunk__"
        )

    def reduce(self, value: Any, op: Callable[[Any, Any], Any], root: int = 0):
        """Binomial-tree reduction toward *root*; non-roots yield None."""
        return self.sim.process(self._reduce(value, op, root), name=f"reduce:{self.rank}")

    def _reduce(self, value: Any, op: Callable[[Any, Any], Any], root: int):
        # Commutative-op binomial reduction: children's partial results
        # may arrive in any order, which is fine for commutative ops.
        vrank = (self.rank - root) % self.size
        tag = ("__reduce__", next(self._coll_seq))
        mask = 1
        acc = value
        while mask < self.size:
            if vrank & mask:
                parent = ((vrank & ~mask) + root) % self.size
                yield self.send(parent, acc, tag=tag)
                return None
            partner = vrank | mask
            if partner < self.size:
                msg = yield self.recv(tag=tag)
                acc = op(acc, msg.payload)
            mask <<= 1
        return acc

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]):
        return self.sim.process(self._allreduce(value, op), name=f"allreduce:{self.rank}")

    def _allreduce(self, value: Any, op):
        acc = yield self.reduce(value, op, root=0)
        return (yield self.bcast(acc, root=0))

    def barrier(self):
        """All ranks synchronize; returns a process to yield."""
        return self.sim.process(self._barrier(), name=f"barrier:{self.rank}")

    def _barrier(self):
        yield self.reduce(0, lambda a, b: 0, root=0)
        yield self.bcast(None, root=0)
        return None

    def gather(self, value: Any, root: int = 0):
        """Linear gather; root yields the rank-ordered list, others None."""
        return self.sim.process(self._gather(value, root), name=f"gather:{self.rank}")

    def _gather(self, value: Any, root: int):
        tag = ("__gather__", next(self._coll_seq))
        if self.rank != root:
            yield self.send(root, value, tag=tag)
            return None
        out: List[Any] = [None] * self.size
        out[root] = value
        for _ in range(self.size - 1):
            msg = yield self.recv(tag=tag)
            out[msg.src] = msg.payload
        return out

    def scatter(self, values: Optional[List[Any]], root: int = 0):
        """Linear scatter from *root*; every rank yields its slice."""
        return self.sim.process(self._scatter(values, root), name=f"scatter:{self.rank}")

    def _scatter(self, values: Optional[List[Any]], root: int):
        tag = ("__scatter__", next(self._coll_seq))
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise MpiError("scatter needs one value per rank at the root")
            for dst in range(self.size):
                if dst != root:
                    yield self.send(dst, values[dst], tag=tag)
            return values[root]
        msg = yield self.recv(src=root, tag=tag)
        return msg.payload

    def compute(self, cpu_seconds: float):
        return self.sim.timeout(cpu_seconds / self.host.cpu_speed)

    def sleep(self, seconds: float):
        return self.sim.timeout(seconds)


class MpiJob:
    """One MPI application instance spanning the hosts of an MPP."""

    def __init__(
        self,
        sim: "Simulator",
        hosts: List["Host"],
        program: Callable[..., Generator],
        params: Optional[Dict[str, Any]] = None,
        name: Optional[str] = None,
    ) -> None:
        if not hosts:
            raise MpiError("an MPI job needs at least one host")
        self.sim = sim
        self.hosts = list(hosts)
        self.size = len(hosts)
        self.job_id = next(_job_ids)
        self.name = name or f"mpijob{self.job_id}"
        self.port = MPI_PORT_BASE + self.job_id
        self.contexts: List[MpiContext] = [
            MpiContext(self, rank, host) for rank, host in enumerate(self.hosts)
        ]
        self.procs = [
            sim.process(program(ctx, **(params or {})), name=f"{self.name}[{ctx.rank}]")
            for ctx in self.contexts
        ]
        for proc in self.procs:
            defuse(proc)

    def wait_all(self):
        """Event firing when every rank's program has returned."""
        return self.sim.all_of(self.procs)

    @property
    def results(self) -> List[Any]:
        return [p._value if p.triggered and p.ok else None for p in self.procs]
