"""The SNIPE client library (§3.4) — the paper's primary user-facing API.

    "The SNIPE client libraries provide interfaces for resource location,
    communications, authentication, task management, and access to
    external data stores."

* :class:`SnipeEnvironment` — builds a complete SNIPE site (RC servers,
  daemons, file servers, resource managers, consoles) over a simulated
  topology; the entry point used by all examples and benchmarks.
* :class:`SnipeContext` — what a SNIPE process sees: URN-addressed
  messaging with system buffering, resource location, spawning, group
  communication, checkpointing, and self-initiated migration (§5.6).
* :mod:`repro.core.messages` — the XDR-style codec used for data
  conversion between heterogeneous hosts.
* :mod:`repro.core.replicated` — replicated pseudo-processes (§5.7).
"""

from repro.core.messages import XdrError, xdr_decode, xdr_encode, xdr_size
from repro.core.process import Envelope, SnipeContext
from repro.core.environment import SnipeEnvironment
from repro.core.replicated import (
    make_replicated_process,
    make_replicated_service,
    service_locations,
)

__all__ = [
    "Envelope",
    "SnipeContext",
    "SnipeEnvironment",
    "XdrError",
    "make_replicated_process",
    "make_replicated_service",
    "service_locations",
    "xdr_decode",
    "xdr_encode",
    "xdr_size",
]
