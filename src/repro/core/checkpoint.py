"""Checkpoint/restart via the file service (§5.6).

    "Temporary storage of state is provided by the SNIPE file servers."

A task's ``checkpoint_state`` (which, for playground tasks, includes the
whole VM image) can be written to the replicated file service under a
LIFN and later restarted on any suitable host — surviving even the
death of the original host, which in-band migration cannot.

Checkpoints are *digest-verified* and *versioned*: each record carries a
content hash computed before it leaves the writer, and successive
checkpoints go to fresh versioned LIFNs with the task's RC record
rotating ``checkpoint-lifn`` / ``checkpoint-prev-lifn`` pointers. A
gray storage fault that corrupts a checkpoint on its way to disk is
therefore detected at restart time (the digest no longer matches) and
recovery falls back to the previous good version instead of silently
respawning from garbage — or, worse, crash-looping on an unreadable
record while the one-before-last sits there intact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.daemon.daemon import DAEMON_PORT
from repro.daemon.tasks import TaskSpec
from repro.files.client import FileClient
from repro.rcds.client import QUORUM
from repro.rpc import RpcClient, payload_size
from repro.security.hashes import content_hash

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.process import SnipeContext
    from repro.net.host import Host
    from repro.rcds.client import RCClient


class CheckpointCorrupt(Exception):
    """A checkpoint record failed digest verification."""


def checkpoint_lifn(urn: str, version: Optional[int] = None) -> str:
    """Checkpoint file name for a process URN.

    Without *version* this is the task's base name (useful for tests and
    ad-hoc writes); :func:`checkpoint_to_files` writes versioned names so
    a corrupt write never destroys the last good checkpoint.
    """
    name = urn.rsplit(":", 1)[-1]
    if version is None:
        return f"checkpoints/{name}.ckpt"
    return f"checkpoints/{name}.v{version}.ckpt"


def record_digest(record: dict) -> str:
    """Content hash of a checkpoint record, excluding the digest itself."""
    return content_hash({k: v for k, v in record.items() if k != "digest"})


def seal_record(record: dict, host=None, scramble_key: str = "state") -> dict:
    """Stamp a content digest on *record* (in place) and model the
    ``corrupt_ckpt_writes`` gray fault: when *host* is under it, the
    *scramble_key* field is scrambled **after** digesting — the
    in-memory record was fine, the bytes that landed are not — so the
    reader's digest check is what catches the rot.

    Shared by the file-service checkpoint writer and the RC catalog's
    durable snapshot/journal, so both storage paths fail the same way.
    """
    record["digest"] = record_digest(record)
    if host is not None and getattr(host, "corrupt_ckpt_writes", False):
        record[scramble_key] = {"__bitrot__": host.sim.now}
        host.sim.obs.metrics.counter("ckpt.corrupt_writes").inc()
    return record


def verify_checkpoint_record(record: dict) -> bool:
    """True iff the record's embedded digest matches its content.

    Records without a digest (written by pre-digest code or hand-rolled
    tests) are accepted: verification can only vouch for records whose
    writer stamped one.
    """
    if not isinstance(record, dict):
        return False
    digest = record.get("digest")
    if digest is None:
        return True
    try:
        return record_digest(record) == digest
    except Exception:
        return False


def spec_from_record(record: dict, keep_urn: bool = True) -> TaskSpec:
    """Reconstruct a spawnable :class:`TaskSpec` from a checkpoint record.

    Used by :func:`restart_from_files` and by the Guardian when it
    respawns a dead task on a fresh host.
    """
    return TaskSpec(
        program=record["program"],
        params=record["params"],
        arch=record["arch"],
        os=record["os"],
        min_memory=record["min_memory"],
        cpu_quota=record["cpu_quota"],
        memory_quota=record["memory_quota"],
        mobile_code=record["mobile_code"],
        owner=record["owner"],
        initial_state=dict(record["state"]),
        urn_override=record["urn"] if keep_urn else None,
    )


def checkpoint_to_files(ctx: "SnipeContext", lifn: Optional[str] = None, replicas: int = 2):
    """Write this task's checkpoint to the file service (a process).

    The stored record carries everything needed to respawn: the spec's
    program/params/requirements and the application state. The write goes
    synchronously to up to *replicas* file servers — a checkpoint that
    only exists on the host about to die is no checkpoint at all.
    Returns the LIFN used.

    Each call writes a *fresh versioned* LIFN and rotates the task's
    ``checkpoint-lifn`` / ``checkpoint-prev-lifn`` catalog pointers, so
    the previous good checkpoint survives a corrupting write. The record
    embeds a content digest (stamped before the bytes leave this host);
    if the host is under a ``corrupt_ckpt_writes`` gray fault the state
    is scrambled *after* digesting, exactly as bit-rot between memory
    and disk would leave it.
    """
    if lifn is None:
        version = ctx.sim.sequence(f"ckpt:{ctx.urn}")
        lifn = checkpoint_lifn(ctx.urn, version=version)
    spec = ctx.info.spec
    record = {
        "urn": ctx.urn,
        "program": spec.program,
        "params": spec.params,
        "arch": spec.arch,
        "os": spec.os,
        "min_memory": spec.min_memory,
        "cpu_quota": spec.cpu_quota,
        "memory_quota": spec.memory_quota,
        "mobile_code": spec.mobile_code,
        "owner": spec.owner,
        "state": dict(ctx.checkpoint_state),
        "taken_at": ctx.sim.now,
    }
    seal_record(record, ctx.host, scramble_key="state")
    if getattr(ctx.host, "corrupt_ckpt_writes", False):
        tracer = ctx.sim.obs.tracer
        if tracer.enabled:
            tracer.event("ckpt.corrupt_write", urn=ctx.urn, lifn=lifn)

    def go():
        fc = FileClient(ctx.host, ctx.rc)
        servers = yield fc.file_servers()
        # Local server first (cheap), then others for durability.
        servers.sort(key=lambda s: (s[0] != ctx.host.name, s[0]))
        written = 0
        size = payload_size(record)
        for server in servers:
            if written >= replicas:
                break
            try:
                yield fc.write(lifn, record, size, server=server)
                written += 1
            except Exception:
                continue
        if written == 0:
            raise RuntimeError(f"checkpoint {lifn!r}: no file server reachable")
        # Register the checkpoint in the process's own metadata so a
        # resource manager or Guardian can find it after the host dies.
        # The outgoing current pointer becomes the previous-good pointer:
        # a Guardian that rejects the new record on digest grounds falls
        # back to it.
        assertions = {"checkpoint-lifn": lifn, "checkpoint-at": ctx.sim.now}
        prev = getattr(ctx, "_ckpt_lifn", None)
        if prev is not None and prev != lifn:
            assertions["checkpoint-prev-lifn"] = prev
        # Quorum write: a versioned pointer registered only on the local
        # replica dies with the host — the one failure checkpoints exist
        # to survive. Fall back to ONE if no quorum is reachable (a
        # slightly stale pointer beats no checkpoint at all).
        try:
            yield ctx.rc.update(ctx.urn, assertions, consistency=QUORUM)
        except Exception:
            yield ctx.rc.update(ctx.urn, assertions)
        ctx._ckpt_lifn = lifn
        # A checkpointed task is recoverable — from now on a Guardian may
        # respawn it, so watch for the fence that would make us a zombie.
        if hasattr(ctx, "enable_supervision"):
            ctx.enable_supervision()
        return lifn

    return ctx.sim.process(go(), name=f"ckpt:{ctx.urn}")


def restart_from_files(host: "Host", rc: "RCClient", lifn: str, keep_urn: bool = True):
    """Restart a checkpointed task on *host* from its stored state.

    Returns a process yielding the (old or new) URN. The restarted task
    resumes from ``checkpoint_state`` exactly as a migrated one would.
    """

    def go():
        fc = FileClient(host, rc)
        got = yield fc.read(lifn)
        record = got["payload"]
        if not verify_checkpoint_record(record):
            host.sim.obs.metrics.counter("ckpt.verify_failures").inc()
            raise CheckpointCorrupt(f"checkpoint {lifn!r} failed digest verification")
        spec = spec_from_record(record, keep_urn=keep_urn)
        client = RpcClient(host)
        try:
            result = yield client.call(
                host.name, DAEMON_PORT, "daemon.spawn", spec=spec, direct=True
            )
        finally:
            client.close()
        return result["urn"]

    return host.sim.process(go(), name=f"restart:{lifn}")
