"""Checkpoint/restart via the file service (§5.6).

    "Temporary storage of state is provided by the SNIPE file servers."

A task's ``checkpoint_state`` (which, for playground tasks, includes the
whole VM image) can be written to the replicated file service under a
LIFN and later restarted on any suitable host — surviving even the
death of the original host, which in-band migration cannot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.daemon.daemon import DAEMON_PORT
from repro.daemon.tasks import TaskSpec
from repro.files.client import FileClient
from repro.rpc import RpcClient, payload_size

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.process import SnipeContext
    from repro.net.host import Host
    from repro.rcds.client import RCClient


def checkpoint_lifn(urn: str) -> str:
    """Canonical checkpoint file name for a process URN."""
    return f"checkpoints/{urn.rsplit(':', 1)[-1]}.ckpt"


def spec_from_record(record: dict, keep_urn: bool = True) -> TaskSpec:
    """Reconstruct a spawnable :class:`TaskSpec` from a checkpoint record.

    Used by :func:`restart_from_files` and by the Guardian when it
    respawns a dead task on a fresh host.
    """
    return TaskSpec(
        program=record["program"],
        params=record["params"],
        arch=record["arch"],
        os=record["os"],
        min_memory=record["min_memory"],
        cpu_quota=record["cpu_quota"],
        memory_quota=record["memory_quota"],
        mobile_code=record["mobile_code"],
        owner=record["owner"],
        initial_state=dict(record["state"]),
        urn_override=record["urn"] if keep_urn else None,
    )


def checkpoint_to_files(ctx: "SnipeContext", lifn: Optional[str] = None, replicas: int = 2):
    """Write this task's checkpoint to the file service (a process).

    The stored record carries everything needed to respawn: the spec's
    program/params/requirements and the application state. The write goes
    synchronously to up to *replicas* file servers — a checkpoint that
    only exists on the host about to die is no checkpoint at all.
    Returns the LIFN used.
    """
    lifn = lifn or checkpoint_lifn(ctx.urn)
    spec = ctx.info.spec
    record = {
        "urn": ctx.urn,
        "program": spec.program,
        "params": spec.params,
        "arch": spec.arch,
        "os": spec.os,
        "min_memory": spec.min_memory,
        "cpu_quota": spec.cpu_quota,
        "memory_quota": spec.memory_quota,
        "mobile_code": spec.mobile_code,
        "owner": spec.owner,
        "state": dict(ctx.checkpoint_state),
        "taken_at": ctx.sim.now,
    }

    def go():
        fc = FileClient(ctx.host, ctx.rc)
        servers = yield fc.file_servers()
        # Local server first (cheap), then others for durability.
        servers.sort(key=lambda s: (s[0] != ctx.host.name, s[0]))
        written = 0
        size = payload_size(record)
        for server in servers:
            if written >= replicas:
                break
            try:
                yield fc.write(lifn, record, size, server=server)
                written += 1
            except Exception:
                continue
        if written == 0:
            raise RuntimeError(f"checkpoint {lifn!r}: no file server reachable")
        # Register the checkpoint in the process's own metadata so a
        # resource manager or Guardian can find it after the host dies.
        yield ctx.rc.update(ctx.urn, {"checkpoint-lifn": lifn, "checkpoint-at": ctx.sim.now})
        # A checkpointed task is recoverable — from now on a Guardian may
        # respawn it, so watch for the fence that would make us a zombie.
        if hasattr(ctx, "enable_supervision"):
            ctx.enable_supervision()
        return lifn

    return ctx.sim.process(go(), name=f"ckpt:{ctx.urn}")


def restart_from_files(host: "Host", rc: "RCClient", lifn: str, keep_urn: bool = True):
    """Restart a checkpointed task on *host* from its stored state.

    Returns a process yielding the (old or new) URN. The restarted task
    resumes from ``checkpoint_state`` exactly as a migrated one would.
    """

    def go():
        fc = FileClient(host, rc)
        got = yield fc.read(lifn)
        spec = spec_from_record(got["payload"], keep_urn=keep_urn)
        client = RpcClient(host)
        try:
            result = yield client.call(
                host.name, DAEMON_PORT, "daemon.spawn", spec=spec, direct=True
            )
        finally:
            client.close()
        return result["urn"]

    return host.sim.process(go(), name=f"restart:{lifn}")
