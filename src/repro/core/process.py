"""SnipeContext: what a SNIPE process sees (§3.4, §5.3, §5.6, §5.7).

Messaging is URN-addressed: the destination is a *name*, resolved through
RC metadata to the task's current (host, port). Three paper guarantees
are implemented here:

* **System buffering** (§6): a send to a temporarily unreachable or
  migrating task is held and retried (with re-resolution) until a
  deadline, so "migrating or temporarily unavailable tasks did not
  result in lost messages".
* **Zero-loss migration** (§5.6): a migrating process checkpoints its
  communication state (undelivered envelopes, duplicate filters,
  sequence counters) along with its application state; the old instance
  "act[s] as a relay or redirect for a short period", and per-source
  sequence numbers deduplicate anything delivered twice.
* **Replicated pseudo-processes** (§5.7): a destination whose metadata
  names a multicast group fans out to every member.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.core.messages import xdr_size
from repro.daemon.daemon import DAEMON_PORT, SnipeDaemon
from repro.daemon.tasks import TaskContext, TaskInfo, TaskSpec, TaskState
from repro.rcds import uri as uri_mod
from repro.robust import TIMEOUTS
from repro.robust.overload import CONTROL
from repro.rpc import RpcError, payload_size
from repro.sim.errors import Interrupt
from repro.sim.events import Event, defuse
from repro.transport.base import SendError
from repro.transport.srudp import SrudpEndpoint

if TYPE_CHECKING:  # pragma: no cover
    pass

#: Envelope framing overhead charged on the wire.
ENVELOPE_OVERHEAD = 64


@dataclass
class Envelope:
    """One URN-addressed application message.

    ``src_inc`` is the sender's *incarnation*: a context restarted from a
    checkpoint is a new incarnation of the same URN, so receivers scope
    their exactly-once/FIFO filters to (urn, incarnation) streams rather
    than treating all history as one sequence space.
    """

    src_urn: str
    dst_urn: str
    seq: int
    tag: str
    payload: Any
    size: int
    src_inc: int = 0


class SnipeContext(TaskContext):
    """The full client-library context (daemon's ``context_factory``)."""

    #: Test hook for the model checker (:mod:`repro.check`): when False,
    #: the receiver accepts envelopes from superseded incarnations instead
    #: of fencing them — a deliberately seeded bug that the delivery
    #: oracle's no-incarnation-regression check must catch.
    rx_fencing_enabled = True
    #: How long sends are buffered/retried before giving up.
    buffer_timeout = 30.0
    #: Retry cadence while a destination is unresolvable/unreachable.
    retry_interval = 0.25
    #: Resolution cache TTL (so migrations are noticed promptly).
    resolve_ttl = 1.0
    #: How long a migrated instance keeps relaying (§5.6 "short period").
    redirect_grace = 10.0

    def __init__(self, daemon: SnipeDaemon, info: TaskInfo) -> None:
        super().__init__(daemon, info)
        self.rc = daemon.rc
        self.port = self.host.ephemeral_port()
        self.endpoint = SrudpEndpoint(self.host, self.port)
        self._pending: List[Envelope] = []
        self._waiters: List[Tuple[Optional[str], Event]] = []
        self._send_seq: Dict[str, int] = {}
        #: Per-destination send locks: messages to one destination are
        #: serialized so a receiver syncing onto a stream mid-way (after
        #: a restart) can never skip an in-flight earlier message.
        self._send_locks: Dict[str, Any] = {}
        #: Per-(source, incarnation) delivery cursor.
        self._next_seq: Dict[Tuple[str, int], int] = {}
        #: Out-of-order arrivals held until their predecessors land.
        self._ooo: Dict[Tuple[str, int], Dict[int, Envelope]] = {}
        #: Highest incarnation seen per source URN. Envelopes from an
        #: older incarnation are *fenced* (dropped): once the Guardian has
        #: restarted a task, the zombie original's late messages must not
        #: interleave with the successor's stream.
        self._max_inc: Dict[str, int] = {}
        #: This context's incarnation (carried across live migration,
        #: fresh after a checkpoint restart). Allocated per simulation so
        #: identical runs assign identical incarnations (replayability).
        self.incarnation = self.sim.sequence("incarnation")
        self._resolve_cache: Dict[str, Tuple[float, Any]] = {}
        self._redirect: Optional[Tuple[str, int]] = None
        #: Set while a migration is capturing state: arrivals in this
        #: window are held and forwarded once the new location is known.
        self._frozen = False
        self._freeze_backlog: List[Envelope] = []
        self.msgs_sent = 0
        self.msgs_received = 0
        self.msgs_deduped = 0
        self.msgs_fenced = 0
        self._fence_watch_proc = None
        # Restore communication state shipped by a migration.
        comm = self.checkpoint_state.pop("__comm__", None)
        if comm is not None:
            self._pending = list(comm["pending"])
            self._send_seq = dict(comm["send_seq"])
            self._next_seq = dict(comm["next_seq"])
            self._ooo = {k: dict(v) for k, v in comm["ooo"].items()}
            self._max_inc = dict(comm.get("max_inc", {}))
            self.incarnation = comm["incarnation"]
        self._rx_proc = self.sim.process(self._rx_loop(), name=f"ctx-rx:{self.urn}")
        if self.sim.probes is not None:
            self.sim.probes.emit(
                "ctx.start", urn=self.urn, inc=self.incarnation,
                host=self.host.name, info=self.info,
            )
        if self.rc is not None:
            defuse(self.sim.process(self._register_comm(), name=f"ctx-reg:{self.urn}"))

    # -- registration (§5.2.3 process metadata) ----------------------------------
    def _register_comm(self):
        yield self.rc.update(
            self.urn,
            {
                "comm-host": self.host.name,
                "comm-port": self.port,
                "comm-addresses": [str(a) for a in self.host.addresses],
                "incarnation": self.incarnation,
            },
        )

    # -- supervision (Guardian fencing, §5.6) -------------------------------------
    #: Cadence of the fenced-below check while supervised.
    fence_watch_interval = 1.0

    def enable_supervision(self) -> None:
        """Start watching our own RC record for a Guardian fence.

        Called when the task first checkpoints (that is the moment it
        becomes recoverable, hence the moment a successor could exist).
        When a Guardian writes ``fenced-below: N`` with N > our
        incarnation, this instance has been superseded and terminates
        itself quietly via :meth:`SnipeDaemon.fence` — covering the
        zombie case where the "dead" host was merely partitioned.
        """
        if self._fence_watch_proc is not None or self.rc is None:
            return
        self._fence_watch_proc = self.sim.process(
            self._fence_watch(), name=f"fence-watch:{self.urn}"
        )

    def _fence_watch(self):
        try:
            owner = f"fence-watch:{self.urn}"
            while self.info.state not in TaskState.TERMINAL:
                yield self.sim.timer_event(self.fence_watch_interval, owner=owner)
                if self.info.state in TaskState.TERMINAL:
                    return
                try:
                    # Control lane: a saturated catalog must not delay
                    # the zombie's self-termination check.
                    fence = yield self.rc.get(self.urn, "fenced-below", lane=CONTROL)
                except Exception:
                    continue  # catalog unreachable (e.g. partitioned); keep trying
                if fence is not None and self.incarnation < fence:
                    # Pass ourselves so a displaced zombie cannot fence a
                    # successor that reused its URN on this daemon.
                    self.daemon.fence(self.urn, "superseded", ctx=self)
                    return
        except Interrupt:
            return

    # -- resolution -------------------------------------------------------------
    def _resolve(self, dst_urn: str):
        """(kind, location) for a destination URN; None if unknown yet.

        kind is "direct" with (host, port), or "group" with the group name
        for replicated pseudo-processes.
        """
        cached = self._resolve_cache.get(dst_urn)
        if cached is not None and self.sim.now - cached[0] < self.resolve_ttl:
            return cached[1]
        try:
            meta = yield self.rc.lookup(dst_urn)
        except Exception:
            return None

        def val(key):
            info = meta.get(key)
            return info["value"] if info else None

        result = None
        if val("kind") == "replicated" and val("group"):
            result = ("group", val("group"))
        else:
            chost, cport = val("comm-host"), val("comm-port")
            if chost is not None and cport is not None:
                result = ("direct", (chost, cport))
        if result is not None:
            self._resolve_cache[dst_urn] = (self.sim.now, result)
        return result

    def _invalidate(self, dst_urn: str) -> None:
        self._resolve_cache.pop(dst_urn, None)

    # -- sending ------------------------------------------------------------------
    def send(self, dst_urn: str, payload: Any, tag: str = "", size: Optional[int] = None):
        """Send a message to a URN; returns a process event (yield it).

        Completion means the destination endpoint acknowledged delivery.
        Raises :class:`SendError` only after ``buffer_timeout`` of retries.
        """
        return self.sim.process(
            self._send(dst_urn, payload, tag, size), name=f"ctx-send:{self.urn}"
        )

    def _send(self, dst_urn: str, payload: Any, tag: str, size: Optional[int]):
        if size is None:
            try:
                size = xdr_size(payload) + ENVELOPE_OVERHEAD
            except Exception:
                size = payload_size(payload) + ENVELOPE_OVERHEAD
        from repro.sim.resources import Resource

        lock = self._send_locks.get(dst_urn)
        if lock is None:
            lock = self._send_locks[dst_urn] = Resource(self.sim, capacity=1)
        yield lock.request()
        try:
            yield from self._send_locked(dst_urn, payload, tag, size)
        finally:
            lock.release()
        return True

    def _send_locked(self, dst_urn: str, payload: Any, tag: str, size: int):
        seq = self._send_seq.get(dst_urn, 0) + 1
        self._send_seq[dst_urn] = seq
        env = Envelope(self.urn, dst_urn, seq, tag, payload, size, self.incarnation)
        if self.sim.probes is not None:
            self.sim.probes.emit(
                "ctx.send", src=self.urn, inc=self.incarnation,
                dst=dst_urn, seq=seq, tag=tag,
            )
        deadline = self.sim.now + self.buffer_timeout
        while True:
            loc = yield from self._resolve(dst_urn)
            if loc is not None:
                kind, where = loc
                if kind == "group":
                    if self.daemon.mcast is None:
                        raise SendError(f"{self.host.name}: no multicast service")
                    n = yield self.daemon.mcast.send(where, env, self.urn)
                    if n > 0:
                        self.msgs_sent += 1
                        return True
                else:
                    try:
                        yield self.endpoint.send(where[0], where[1], env, env.size)
                        self.msgs_sent += 1
                        return True
                    except SendError:
                        pass  # buffered: retry after re-resolution
                self._invalidate(dst_urn)
            if self.sim.now >= deadline:
                raise SendError(
                    f"{self.urn}: message to {dst_urn} undeliverable after "
                    f"{self.buffer_timeout}s of buffering"
                )
            yield self.sim.timeout(self.retry_interval)

    # -- receiving ------------------------------------------------------------------
    def recv(self, tag: Optional[str] = None):
        """Event yielding the next :class:`Envelope` (optionally by tag)."""
        ev = Event(self.sim)
        for i, env in enumerate(self._pending):
            if tag is None or env.tag == tag:
                del self._pending[i]
                ev.succeed(env)
                return ev
        self._waiters.append((tag, ev))
        return ev

    def _accept(self, env: Envelope) -> None:
        """Exactly-once, per-stream-FIFO admission.

        A stream is (source URN, source incarnation). SRUDP
        retransmissions and the migration relay can duplicate and reorder
        envelopes; the sequence numbers deliver each stream exactly once,
        in order. First contact with an unknown stream syncs the cursor
        to the arriving sequence number — that is how a receiver
        restarted from a checkpoint (a new incarnation with no memory of
        consumed prefixes) resumes conversations; the sender-side
        per-destination serialization guarantees the sync cannot skip an
        in-flight earlier message.
        """
        max_inc = self._max_inc.get(env.src_urn, 0)
        if env.src_inc < max_inc and self.rx_fencing_enabled:
            # A newer incarnation of this source has already spoken: the
            # sender is a fenced zombie and its stragglers are dropped.
            self.msgs_fenced += 1
            self.sim.obs.metrics.counter("ctx.msgs_fenced").inc()
            return
        if env.src_inc > max_inc:
            self._max_inc[env.src_urn] = env.src_inc
        key = (env.src_urn, env.src_inc)
        expected = self._next_seq.get(key)
        if expected is None:
            expected = env.seq  # sync onto the stream at first contact
        if env.seq < expected:
            self.msgs_deduped += 1
            return
        hold = self._ooo.setdefault(key, {})
        if env.seq > expected:
            if env.seq not in hold:
                hold[env.seq] = env
            else:
                self.msgs_deduped += 1
            return
        # In-order: deliver it, then drain any consecutive held arrivals.
        self._deliver(env)
        expected += 1
        while expected in hold:
            self._deliver(hold.pop(expected))
            expected += 1
        self._next_seq[key] = expected

    def _deliver(self, env: Envelope) -> None:
        self.msgs_received += 1
        if self.sim.probes is not None:
            self.sim.probes.emit(
                "ctx.deliver", dst=self.urn, dst_inc=self.incarnation,
                src=env.src_urn, src_inc=env.src_inc, seq=env.seq, tag=env.tag,
            )
        for i, (tag, ev) in enumerate(self._waiters):
            if tag is None or env.tag == tag:
                del self._waiters[i]
                ev.succeed(env)
                return
        self._pending.append(env)

    def _rx_loop(self):
        try:
            while True:
                msg = yield self.endpoint.recv()
                env = msg.payload
                if not isinstance(env, Envelope):
                    continue
                if self._redirect is not None:
                    # §5.6: the original acts as a relay after migrating.
                    host, port = self._redirect
                    defuse(self.endpoint.send(host, port, env, env.size))
                    continue
                if self._frozen:
                    # Between checkpoint capture and redirect activation:
                    # holding these (instead of accepting them into the
                    # already-captured pending list) is what makes
                    # migration lossless.
                    self._freeze_backlog.append(env)
                    continue
                self._accept(env)
        except Interrupt:
            return

    # -- group communication (§5.4, via the daemon's multicast service) ----------
    def join_group(self, group: str, mode: str = "majority"):
        if self.daemon.mcast is None:
            raise RuntimeError(f"{self.host.name}: no multicast service attached")
        return self.daemon.mcast.join(group, self.urn, mode)

    def send_group(self, group: str, payload: Any, tag: str = "", mode: str = "majority"):
        if self.daemon.mcast is None:
            raise RuntimeError(f"{self.host.name}: no multicast service attached")
        env = Envelope(self.urn, uri_mod.mcast_urn(group), 0, tag, payload, 0)
        return self.daemon.mcast.send(group, env, self.urn, mode)

    def recv_group(self, group: str):
        """Event yielding the next group message's :class:`Envelope`."""
        ev = Event(self.sim)
        inner = self.daemon.mcast.recv(group, self.urn)

        def unwrap(e):
            if e._exc is not None:
                ev.fail(e._exc)
                return
            item = e._value
            env = item["payload"] if isinstance(item, dict) else item
            ev.succeed(env)

        inner.add_callback(unwrap)
        return ev

    def leave_group(self, group: str):
        return self.daemon.mcast.leave(group, self.urn)

    # -- metadata access ------------------------------------------------------------
    def lookup(self, uri: str):
        return self.rc.lookup(uri)

    def publish(self, assertions: Dict[str, Any], uri: Optional[str] = None):
        """Publish assertions about self (or another URI) to the catalog."""
        return self.rc.update(uri or self.urn, assertions)

    def watch(self, target_urn: str):
        """Add self to *target*'s notify list (a process; yield it)."""
        return self.sim.process(self._watch(target_urn), name=f"watch:{target_urn}")

    def _watch(self, target_urn: str):
        meta = yield self.rc.lookup(target_urn)
        current = (meta.get("notify-list") or {}).get("value") or []
        if self.urn not in current:
            current = current + [self.urn]
        yield self.rc.update(target_urn, {"notify-list": current})
        return True

    # -- spawning ----------------------------------------------------------------
    def spawn(self, spec: TaskSpec, on_host: Optional[str] = None):
        """Spawn a task (on a named host, or locally); yields the URN."""
        return self.sim.process(self._spawn(spec, on_host), name=f"ctx-spawn:{self.urn}")

    def _spawn(self, spec: TaskSpec, on_host: Optional[str]):
        if on_host is None or on_host == self.host.name:
            info = self.daemon.spawn(spec)
            return info.urn
        result = yield self.daemon._client.call(
            on_host, DAEMON_PORT, "daemon.spawn", timeout=TIMEOUTS["ctx.spawn"],
            spec=spec, direct=True
        )
        return result["urn"]

    def spawn_via_rm(self, spec: TaskSpec, owner: str = "anonymous"):
        """Spawn through the resource managers (§3.4: "either directly or
        via a resource manager"); yields the RM's allocation result."""
        if getattr(self, "_rm_client", None) is None:
            from repro.rm.client import RmClient

            self._rm_client = RmClient(self.host, self.rc)
        return self._rm_client.request(spec, owner=owner)

    # -- migration (§5.6: self-initiated) ----------------------------------------
    def migrate(self, to_host: str):
        """Move this process to *to_host*; returns a process event.

        Contract: the program calls ``moved = yield ctx.migrate(h)`` and
        returns immediately when ``moved`` is True — execution continues
        on the new host from ``ctx.checkpoint_state``.
        """
        return self.sim.process(self._migrate(to_host), name=f"migrate:{self.urn}")

    def _migrate(self, to_host: str):
        # 1. Freeze: capture application + communication state. Anything
        #    already received but not yet consumed travels with us;
        #    anything arriving from here on is backlogged for the relay.
        self._frozen = True
        comm = {
            "pending": list(self._pending),
            "send_seq": dict(self._send_seq),
            "next_seq": dict(self._next_seq),
            "ooo": {k: dict(v) for k, v in self._ooo.items()},
            "max_inc": dict(self._max_inc),
            "incarnation": self.incarnation,
        }
        state = dict(self.checkpoint_state)
        state["__comm__"] = comm
        self._pending.clear()
        spec = self.info.spec
        new_spec = TaskSpec(
            program=spec.program,
            params=spec.params,
            arch=spec.arch,
            os=spec.os,
            min_memory=spec.min_memory,
            cpu_quota=spec.cpu_quota,
            memory_quota=spec.memory_quota,
            name=spec.name,
            initial_state=state,
            mobile_code=spec.mobile_code,
            owner=spec.owner,
            urn_override=self.urn,
        )
        # 2. Start the new instance (it re-registers its comm address).
        try:
            yield self.daemon._client.call(
                to_host, DAEMON_PORT, "daemon.spawn",
                timeout=TIMEOUTS["ctx.spawn"], spec=new_spec, direct=True,
            )
        except RpcError:
            # Migration failed: keep running here, tell the caller.
            self.checkpoint_state.pop("__comm__", None)
            self._pending = comm["pending"]
            self._frozen = False
            backlog, self._freeze_backlog = self._freeze_backlog, []
            for env in backlog:
                self._accept(env)
            return False
        # 3. Find the new instance's comm address and become a relay.
        new_loc = None
        for _ in range(50):
            self._invalidate(self.urn)
            loc = yield from self._resolve(self.urn)
            if loc is not None and loc[0] == "direct" and loc[1][0] == to_host:
                new_loc = loc[1]
                break
            yield self.sim.timeout(0.1)
        if new_loc is not None:
            self._redirect = new_loc
            # Flush everything that arrived during the freeze window.
            backlog, self._freeze_backlog = self._freeze_backlog, []
            for env in backlog:
                defuse(self.endpoint.send(new_loc[0], new_loc[1], env, env.size))
        # 4. Mark ourselves migrated locally and notify watchers. The RC
        #    *state* record is deliberately NOT republished from here: the
        #    new instance already wrote state=running with its new host,
        #    and a later write from the old instance would win the
        #    last-writer-wins race and advertise a dead location.
        self.info.state = TaskState.MIGRATED
        self.info.ended_at = self.sim.now
        self.daemon._fire_notifications(self.info)
        defuse(self.sim.process(self._relay_then_close(), name=f"relay:{self.urn}"))
        return True

    def _relay_then_close(self):
        yield self.sim.timeout(self.redirect_grace)
        self.endpoint.close()
        if self._rx_proc.is_alive:
            self._rx_proc.interrupt("migrated")
