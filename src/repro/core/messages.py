"""XDR-style message encoding (§3.4: "data conversion (e.g. between
different host architectures)").

A small, real, self-contained external data representation: big-endian,
4-byte aligned, type-tagged. It exists so messages between heterogeneous
hosts have a defined on-the-wire form and an honest byte count — SNIPE
charges the *encoded* size on the wire, exactly as the 1997 system did
with its XDR-derived packing.

Supported types: None, bool, int (arbitrary precision via hyper or
bignum), float, str, bytes, list, tuple, dict.
"""

from __future__ import annotations

import struct
from typing import Any

_T_NONE = 0
_T_FALSE = 1
_T_TRUE = 2
_T_INT = 3  # 8-byte signed
_T_BIGINT = 4  # length-prefixed big integer
_T_FLOAT = 5  # IEEE 754 double
_T_STR = 6
_T_BYTES = 7
_T_LIST = 8
_T_TUPLE = 9
_T_DICT = 10


class XdrError(Exception):
    """Unencodable value or malformed buffer."""


def _pad(buf: bytearray) -> None:
    while len(buf) % 4:
        buf.append(0)


def _encode_into(obj: Any, buf: bytearray) -> None:
    if obj is None:
        buf += struct.pack(">I", _T_NONE)
    elif obj is False:
        buf += struct.pack(">I", _T_FALSE)
    elif obj is True:
        buf += struct.pack(">I", _T_TRUE)
    elif isinstance(obj, int):
        if -(2**63) <= obj < 2**63:
            buf += struct.pack(">Iq", _T_INT, obj)
        else:
            raw = obj.to_bytes((obj.bit_length() + 8) // 8 + 1, "big", signed=True)
            buf += struct.pack(">II", _T_BIGINT, len(raw))
            buf += raw
            _pad(buf)
    elif isinstance(obj, float):
        buf += struct.pack(">Id", _T_FLOAT, obj)
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        buf += struct.pack(">II", _T_STR, len(raw))
        buf += raw
        _pad(buf)
    elif isinstance(obj, (bytes, bytearray)):
        buf += struct.pack(">II", _T_BYTES, len(obj))
        buf += bytes(obj)
        _pad(buf)
    elif isinstance(obj, (list, tuple)):
        tag = _T_LIST if isinstance(obj, list) else _T_TUPLE
        buf += struct.pack(">II", tag, len(obj))
        for item in obj:
            _encode_into(item, buf)
    elif isinstance(obj, dict):
        buf += struct.pack(">II", _T_DICT, len(obj))
        for key, value in obj.items():
            _encode_into(key, buf)
            _encode_into(value, buf)
    else:
        raise XdrError(f"cannot XDR-encode {type(obj).__name__}")


def xdr_encode(obj: Any) -> bytes:
    """Encode *obj* to its XDR wire form."""
    buf = bytearray()
    _encode_into(obj, buf)
    return bytes(buf)


def xdr_size(obj: Any) -> int:
    """Wire size of *obj* without keeping the buffer."""
    return len(xdr_encode(obj))


class _Reader:
    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes) -> None:
        self.buf = buf
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.buf):
            raise XdrError("truncated buffer")
        out = self.buf[self.pos:self.pos + n]
        self.pos += n
        return out

    def align(self) -> None:
        while self.pos % 4:
            self.pos += 1

    def u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]


def _decode_one(r: _Reader) -> Any:
    tag = r.u32()
    if tag == _T_NONE:
        return None
    if tag == _T_FALSE:
        return False
    if tag == _T_TRUE:
        return True
    if tag == _T_INT:
        return struct.unpack(">q", r.take(8))[0]
    if tag == _T_BIGINT:
        n = r.u32()
        raw = r.take(n)
        r.align()
        return int.from_bytes(raw, "big", signed=True)
    if tag == _T_FLOAT:
        return struct.unpack(">d", r.take(8))[0]
    if tag == _T_STR:
        n = r.u32()
        raw = r.take(n)
        r.align()
        return raw.decode("utf-8")
    if tag == _T_BYTES:
        n = r.u32()
        raw = r.take(n)
        r.align()
        return bytes(raw)
    if tag in (_T_LIST, _T_TUPLE):
        n = r.u32()
        items = [_decode_one(r) for _ in range(n)]
        return items if tag == _T_LIST else tuple(items)
    if tag == _T_DICT:
        n = r.u32()
        return {_decode_one(r): _decode_one(r) for _ in range(n)}
    raise XdrError(f"unknown type tag {tag}")


def xdr_decode(buf: bytes) -> Any:
    """Decode one value; the buffer must contain exactly one value."""
    r = _Reader(buf)
    out = _decode_one(r)
    if r.pos != len(buf):
        raise XdrError(f"{len(buf) - r.pos} trailing bytes")
    return out
