"""SnipeEnvironment: one-stop construction of a complete SNIPE site.

The examples and benchmarks all start here: declare segments and hosts,
say which hosts carry RC replicas / file servers / resource managers,
register programs, spawn, run. Hosts booted into SNIPE get a daemon whose
``context_factory`` is the full :class:`SnipeContext`, so every spawned
program speaks the complete client API.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bulk.distribute import Distributor
from repro.bulk.service import BulkService
from repro.core.process import SnipeContext
from repro.daemon.daemon import SnipeDaemon
from repro.daemon.mcast import McastService
from repro.daemon.tasks import ProgramRegistry, TaskInfo, TaskSpec
from repro.files.client import FileClient
from repro.files.replicate import ReplicationDaemon
from repro.files.server import FileServer
from repro.guardian.guardian import GUARDIAN_PORT, Guardian
from repro.net.failures import FailureInjector
from repro.net.media import ETHERNET_100, Medium
from repro.net.segment import Segment
from repro.net.topology import Topology
from repro.rcds.client import RCClient
from repro.rcds.server import RCServer
from repro.rcds.shard import ROOT_SID, ShardedRCClient, ShardManager, ShardRCServer
from repro.rm.client import RmClient
from repro.rm.manager import ResourceManager
from repro.sim.kernel import Simulator
from repro.sim.monitor import TraceMonitor


class SnipeEnvironment:
    """Builder + registry for a simulated SNIPE deployment."""

    def __init__(self, seed: int = 0, secret: Optional[bytes] = None) -> None:
        self.sim = Simulator(seed=seed)
        self.topology = Topology(self.sim)
        self.programs = ProgramRegistry()
        self.monitor = TraceMonitor(self.sim)
        self.failures = FailureInjector(self.sim, self.topology)
        self.secret = secret
        self.rc_replicas: List[Tuple[str, int]] = []
        self.rc_servers: Dict[str, RCServer] = {}
        self.daemons: Dict[str, SnipeDaemon] = {}
        self.file_servers: Dict[str, FileServer] = {}
        self.replication_daemons: Dict[str, ReplicationDaemon] = {}
        self.bulk_services: Dict[str, BulkService] = {}
        self.rms: Dict[str, ResourceManager] = {}
        self.guardians: Dict[str, Guardian] = {}
        self.shard_manager: Optional[ShardManager] = None
        self._clients: Dict[str, RCClient] = {}

    # -- topology ---------------------------------------------------------
    def add_segment(self, name: str, medium: Medium = ETHERNET_100) -> Segment:
        return self.topology.add_segment(name, medium)

    def add_host(self, name: str, segments: Sequence[str] = (), **host_kw):
        host = self.topology.add_host(name, **host_kw)
        for seg_name in segments:
            self.topology.connect(host, self.topology.segments[seg_name])
        return host

    # -- services -----------------------------------------------------------
    def add_rc_servers(self, host_names: Sequence[str], sharded: bool = False,
                       **server_kw) -> List[RCServer]:
        """Place RC replicas on the named hosts (they peer with each other).

        With ``sharded=True`` the group is built from shard-aware
        servers (the future *root directory* group) so
        :meth:`enable_sharding` can adopt it."""
        self.rc_replicas = [(name, 385) for name in host_names]
        servers = []
        for name in host_names:
            peers = [r for r in self.rc_replicas if r[0] != name]
            if sharded:
                server: RCServer = ShardRCServer(
                    self.topology.hosts[name], ROOT_SID, ("",),
                    root_replicas=self.rc_replicas, peers=peers,
                    secret=self.secret, **server_kw)
            else:
                server = RCServer(
                    self.topology.hosts[name], peers=peers, secret=self.secret,
                    **server_kw)
            self.rc_servers[name] = server
            servers.append(server)
        return servers

    def enable_sharding(self, **manager_kw) -> ShardManager:
        """Federate the catalog: the replicas from ``add_rc_servers(...,
        sharded=True)`` become the root directory group and every
        subsequent :meth:`rc_client` (daemons, guardians, RMs, programs)
        routes through a :class:`ShardedRCClient`. Call before any
        client exists; carve initial shards with
        ``shard_manager.add_shard`` before traffic starts."""
        if self.shard_manager is not None:
            return self.shard_manager
        if not self.rc_servers:
            raise RuntimeError("add_rc_servers(sharded=True) must run first")
        if not all(isinstance(s, ShardRCServer) for s in self.rc_servers.values()):
            raise RuntimeError("root replicas are not shard-aware: "
                               "use add_rc_servers(..., sharded=True)")
        if self._clients:
            raise RuntimeError("enable_sharding() must run before rc_client()")
        self.shard_manager = ShardManager(
            self.sim, self.topology.hosts, self.rc_replicas,
            secret=self.secret, **manager_kw)
        self.shard_manager.register_root(
            {s.store.server_id: s for s in self.rc_servers.values()})
        return self.shard_manager

    def all_rc_servers(self) -> Dict[str, RCServer]:
        """Every catalog replica on the site keyed by server id — the
        root/full-replication group plus, when sharding is enabled,
        every shard group (the check oracles' attach surface)."""
        out: Dict[str, RCServer] = {
            s.store.server_id: s for s in self.rc_servers.values()
        }
        if self.shard_manager is not None:
            out.update(self.shard_manager.all_servers())
        return out

    def rc_client(self, host_name: str) -> RCClient:
        """An RC client bound to *host* (cached per host). On a sharded
        site this is the facade — same API, map-routed underneath."""
        client = self._clients.get(host_name)
        if client is None:
            if not self.rc_replicas:
                raise RuntimeError("add_rc_servers() must run before clients")
            if self.shard_manager is not None:
                client = ShardedRCClient(
                    self.topology.hosts[host_name], self.rc_replicas,
                    secret=self.secret)
            else:
                client = RCClient(
                    self.topology.hosts[host_name], self.rc_replicas,
                    secret=self.secret)
            self._clients[host_name] = client
        return client

    def boot_daemon(self, host_name: str, mcast: bool = True, **daemon_kw) -> SnipeDaemon:
        """Start the SNIPE daemon (with the full client context) on a host."""
        daemon = SnipeDaemon(
            self.topology.hosts[host_name],
            self.rc_client(host_name),
            self.programs,
            secret=self.secret,
            context_factory=SnipeContext,
            **daemon_kw,
        )
        if mcast:
            McastService(daemon)
        self.daemons[host_name] = daemon
        return daemon

    def add_file_server(
        self, host_name: str, replicate: bool = True, **repl_kw
    ) -> FileServer:
        server = FileServer(
            self.topology.hosts[host_name], self.rc_client(host_name), secret=self.secret
        )
        self.file_servers[host_name] = server
        if replicate:
            self.replication_daemons[host_name] = ReplicationDaemon(
                server, secret=self.secret, **repl_kw
            )
        return server

    def add_bulk_service(self, host_name: str, **bulk_kw) -> BulkService:
        """Put a bulk-plane endpoint on a host; if the host also runs a
        file server, its stored payloads become chunk sources."""
        service = BulkService(
            self.topology.hosts[host_name], self.rc_client(host_name),
            secret=self.secret, **bulk_kw,
        )
        if host_name in self.file_servers:
            service.attach_file_server(self.file_servers[host_name])
        self.bulk_services[host_name] = service
        return service

    def bulk_distributor(self, root: str, fanout: int = 2) -> Distributor:
        """A distributor rooted at *root* over every bulk service."""
        return Distributor(self.topology, self.bulk_services, root, fanout=fanout)

    def add_rm(self, host_name: str, port: int = 3600, **rm_kw) -> ResourceManager:
        rm = ResourceManager(
            self.topology.hosts[host_name],
            self.rc_client(host_name),
            port=port,
            secret=self.secret,
            **rm_kw,
        )
        self.rms[host_name] = rm
        return rm

    def add_guardian(self, host_name: str, port: int = GUARDIAN_PORT, **kw) -> Guardian:
        """Place a guardian on a host (boot its daemon first so notify
        delivery works); run at least two for a self-healing site."""
        guardian = Guardian(
            self.topology.hosts[host_name],
            self.rc_client(host_name),
            daemon=self.daemons.get(host_name),
            port=port,
            secret=self.secret,
            **kw,
        )
        self.guardians[host_name] = guardian
        return guardian

    # -- clients for hosts/programs ------------------------------------------
    def file_client(self, host_name: str) -> FileClient:
        return FileClient(
            self.topology.hosts[host_name], self.rc_client(host_name), secret=self.secret
        )

    def rm_client(self, host_name: str) -> RmClient:
        return RmClient(
            self.topology.hosts[host_name], self.rc_client(host_name), secret=self.secret
        )

    # -- programs & spawning ------------------------------------------------------
    def register_program(self, name: str, fn) -> None:
        self.programs.register(name, fn)

    def program(self, name: str):
        """Decorator form: ``@env.program("worker")``."""

        def deco(fn):
            self.programs.register(name, fn)
            return fn

        return deco

    def spawn(self, spec_or_program, on: str, **params) -> TaskInfo:
        """Spawn directly on a host's daemon (bypassing the RMs)."""
        if isinstance(spec_or_program, TaskSpec):
            spec = spec_or_program
        else:
            spec = TaskSpec(program=spec_or_program, params=params)
        return self.daemons[on].spawn(spec)

    # -- execution -------------------------------------------------------------
    def run(self, until=None):
        return self.sim.run(until=until)

    def settle(self, seconds: float = 2.0) -> None:
        """Run briefly so daemons/servers register their metadata."""
        self.sim.run(until=self.sim.now + seconds)

    # -- canned sites ---------------------------------------------------------------
    @classmethod
    def lan_site(
        cls,
        n_hosts: int,
        n_rc: int = 3,
        n_rm: int = 1,
        n_fs: int = 0,
        medium: Medium = ETHERNET_100,
        seed: int = 0,
        mcast: bool = True,
        settle: float = 2.0,
        **host_kw,
    ) -> "SnipeEnvironment":
        """A single-LAN site with services spread over the first hosts."""
        env = cls(seed=seed)
        env.add_segment("lan", medium)
        for i in range(n_hosts):
            env.add_host(f"h{i}", segments=["lan"], **host_kw)
        env.add_rc_servers([f"h{i}" for i in range(min(n_rc, n_hosts))])
        for i in range(n_hosts):
            env.boot_daemon(f"h{i}", mcast=mcast)
        for i in range(min(n_rm, n_hosts)):
            env.add_rm(f"h{i}", port=3600 + i)
        for i in range(min(n_fs, n_hosts)):
            env.add_file_server(f"h{i}")
        if settle > 0:
            env.settle(settle)
        return env
