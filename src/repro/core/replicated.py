"""Replicated processes and services (§5.7).

Two replication patterns from the paper:

1. *Replicated computational processes*: "a multicast group can be
   created to provide input to all of those processes. SNIPE metadata can
   then be created for the new pseudo-process … with the multicast group
   listed as the communications URL. All data sent to the pseudo-process
   will then be transmitted to each member of the group." — and, per the
   paper's caveat, with multiple senders there is *no ordering guarantee*
   across members.
2. *Multi-location services*: "a LIFN can be created for that service,
   and each of the service locations (URLs) associated with that LIFN.
   Any process attempting to communicate with that service will then see
   multiple service locations from which to choose."
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.rcds import uri as uri_mod
from repro.rcds.client import QUORUM, RCClient


def make_replicated_process(rc: RCClient, pseudo_name: str, group: str):
    """Create pseudo-process metadata routing its messages to *group*.

    Members must ``join_group(group)`` themselves; any ``ctx.send`` to the
    returned URN then fans out to every member. Returns a process (yield
    it) whose value is the pseudo-process URN.
    """
    urn = uri_mod.process_urn(pseudo_name)

    def create():
        yield rc.update(urn, {"kind": "replicated", "group": group}, QUORUM)
        return urn

    return rc.sim.process(create(), name=f"make-replicated:{pseudo_name}")


def make_replicated_service(rc: RCClient, service: str, locations: Sequence[Tuple[str, int]]):
    """Register a service reachable at several (host, port) locations.

    Returns a process whose value is the service URN.
    """
    urn = uri_mod.service_urn(service)

    def create():
        assertions = {f"location:{h}:{p}": True for h, p in locations}
        yield rc.update(urn, assertions, QUORUM)
        return urn

    return rc.sim.process(create(), name=f"make-service:{service}")


def service_locations(rc: RCClient, service: str):
    """Resolve a replicated service's current locations (a process)."""

    def resolve() -> List[Tuple[str, int]]:
        assertions = yield rc.lookup(uri_mod.service_urn(service))
        out = []
        for key, info in assertions.items():
            if key.startswith("location:") and info["value"]:
                hostname, port = key[len("location:"):].rsplit(":", 1)
                out.append((hostname, int(port)))
        return sorted(out)

    return rc.sim.process(resolve(), name=f"service-locations:{service}")
