"""Common transport machinery: messages, endpoint base class, send errors.

All SNIPE transports are *message* oriented (PVM heritage): the unit the
client library sees is a tagged message of N bytes, whatever segmentation
the protocol does underneath. Transport headers are charged against frame
size so media overheads come out right in Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.net.packet import Frame
from repro.transport.pathsel import PathSelector

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host, PortBinding
    from repro.sim.kernel import Simulator


class SendError(Exception):
    """A message could not be delivered (peer dead, retries exhausted)."""


@dataclass
class Message:
    """An application-level message as received from a transport.

    ``msg_id`` identifies the message within its transport's dedup scope;
    transports that need one draw it from ``sim.sequence(...)`` so ids are
    per-simulation (never process-global — replays must not depend on how
    many sims ran earlier in the process).
    """

    src_host: str
    src_ip: str
    src_port: int
    payload: Any
    size: int
    msg_id: int = 0


class TransportEndpoint:
    """Base class: binds (proto, port), owns a path selector, sends frames.

    Subclasses implement the actual protocol in :meth:`_rx_loop` and their
    ``send``. The local fast path (destination == own host) bypasses the
    NIC entirely, like a kernel loopback.
    """

    #: Protocol name used for port demultiplexing; subclasses override.
    proto = "raw"
    #: Transport+IP header bytes charged per frame.
    header_bytes = 28

    def __init__(
        self,
        host: "Host",
        port: int,
        path_policy: str = "snipe",
    ) -> None:
        self.sim: "Simulator" = host.sim
        self.host = host
        self.port = port
        self.paths = PathSelector(host, policy=path_policy)
        self.binding: "PortBinding" = host.bind(self.proto, port)
        self.closed = False
        self.tx_messages = 0
        self.rx_messages = 0
        self.rx_drops = 0
        self.rx_corrupt = 0
        # Observability: per-protocol metrics are interned by the registry,
        # so every endpoint of one protocol feeds the same histogram.
        obs = self.sim.obs
        self._tracer = obs.tracer
        self._m_tx = obs.metrics.counter("transport.tx_messages", proto=self.proto)
        self._m_rx = obs.metrics.counter("transport.rx_messages", proto=self.proto)
        self._m_latency = obs.metrics.histogram("transport.msg_latency", proto=self.proto)
        self._m_send_latency = obs.metrics.histogram(
            "transport.send_latency", proto=self.proto
        )
        self._m_retransmits = obs.metrics.counter(
            "transport.retransmits", proto=self.proto
        )
        self._m_send_errors = obs.metrics.counter(
            "transport.send_errors", proto=self.proto
        )
        self._m_rx_drops = obs.metrics.counter(
            "transport.rx_drops", proto=self.proto
        )
        self._m_rx_corrupt = obs.metrics.counter(
            "transport.rx_corrupt", proto=self.proto
        )
        # Per-frame protocols dispatch synchronously from the arrival
        # event via the binding handler (no receive-loop process, no Store
        # hop per frame); a subclass that truly needs a blocking loop can
        # instead override ``_rx_loop``.
        on_frame = getattr(self, "_on_frame", None)
        if on_frame is not None:
            self.binding.handler = on_frame
            self._rx_proc = None
        else:
            self._rx_proc = self.sim.process(
                self._rx_loop(), name=f"{self.proto}:{host.name}:{port}"
            )

    # -- subclass API -------------------------------------------------------
    def _rx_loop(self):
        """Protocol receive loop; subclasses either override this or
        define ``_on_frame(frame)`` for synchronous per-frame dispatch."""
        raise NotImplementedError
        yield  # pragma: no cover

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.host.unbind(self.proto, self.port)
            if self._rx_proc is not None and self._rx_proc.is_alive:
                self._rx_proc.interrupt("closed")

    # -- accounting helpers -------------------------------------------------
    def _note_tx(self) -> None:
        """Count one outgoing application message."""
        self.tx_messages += 1
        self._m_tx.inc()

    def _note_rx(self, sent_at: Optional[float] = None) -> None:
        """Count one delivered message; *sent_at* feeds the end-to-end
        delivery-latency histogram."""
        self.rx_messages += 1
        self._m_rx.inc()
        if sent_at is not None:
            self._m_latency.observe(self.sim.now - sent_at)

    def _note_retransmit(self) -> None:
        self._m_retransmits.inc()

    def _note_rx_drop(self) -> None:
        """Count one message refused at a full receive queue. For reliable
        transports this is backpressure, not loss: the ACK is withheld and
        the sender retransmits once the consumer drains the queue."""
        self.rx_drops += 1
        self._m_rx_drops.inc()

    def _note_rx_corrupt(self, src_host: str) -> None:
        """Count one frame dropped on digest-verification failure, and
        feed the differential health board (bit-flipping paths get
        quarantined). For reliable transports the drop is retried: no
        ACK covers the segment, so the sender retransmits it."""
        self.rx_corrupt += 1
        self._m_rx_corrupt.inc()
        self.host.health.note_outcome(src_host, False, kind="digest")

    # -- frame helpers --------------------------------------------------------
    def max_payload(self, dst_host: str) -> int:
        """Usable bytes per frame toward *dst_host* after headers."""
        choice = self.paths.select(dst_host)
        if choice is None:
            return 1024  # arbitrary; send will fail anyway
        nic = choice[0]
        return nic.medium.mtu - self.header_bytes

    def _send_frame(
        self,
        dst_host: str,
        dst_port: int,
        payload: Any,
        body_bytes: int,
        trace_id: Optional[int] = None,
        digest: Optional[str] = None,
    ) -> bool:
        """Push one protocol frame toward *dst_host*. False if unroutable.

        *trace_id* stamps the frame for causal tracing; a ``frame.tx``
        record naming the chosen interface/network is emitted per frame
        when tracing is on, which is what makes mid-message reroutes
        visible in a trace. *digest* is the end-to-end payload digest for
        verifying transports.
        """
        if dst_host == self.host.name:
            self._send_local(dst_port, payload, body_bytes, trace_id=trace_id)
            return True
        choice = self.paths.select(dst_host)
        if choice is None:
            return False
        nic, dst_ip, l2 = choice
        frame = Frame(
            src=nic.address,
            dst_ip=dst_ip,
            proto=self.proto,
            src_port=self.port,
            dst_port=dst_port,
            payload=payload,
            size=body_bytes + self.header_bytes,
            frame_id=self.sim.next_frame_id(),
            l2_dst=l2,
            trace_id=trace_id,
            digest=digest,
        )
        if self._tracer.enabled:
            self._tracer.event(
                "frame.tx",
                trace_id=trace_id,
                proto=self.proto,
                src=self.host.name,
                dst=dst_host,
                iface=nic.iface,
                net=nic.segment.name,
                bytes=frame.size,
            )
        return nic.send(frame)

    def _send_local(
        self, dst_port: int, payload: Any, body_bytes: int,
        trace_id: Optional[int] = None,
    ) -> None:
        """Loopback delivery on the same host (no NIC, tiny fixed cost)."""
        from repro.net.media import LOOPBACK

        delay = LOOPBACK.latency + body_bytes / LOOPBACK.bandwidth
        binding_key = (self.proto, dst_port)
        ev = self.sim.timeout(delay, value=payload)

        def deliver(e, host=self.host, key=binding_key):
            if not host.up:
                return
            binding = host._bindings.get(key)
            if binding is None:
                host.unclaimed_frames += 1
                return
            # Wrap in a minimal frame-like for uniform rx handling.
            any_nic = next(iter(host.nics.values()), None)
            src_addr = any_nic.address if any_nic else None
            frame = Frame(
                src=src_addr,
                dst_ip=src_addr.ip if src_addr else "127.0.0.1",
                proto=self.proto,
                src_port=self.port,
                dst_port=dst_port,
                payload=e.value,
                size=body_bytes + self.header_bytes,
                frame_id=host.sim.next_frame_id(),
                via_segment="loopback",
                trace_id=trace_id,
            )
            binding.rx_frames += 1
            if binding.handler is not None:
                binding.handler(frame)
            else:
                binding.inbox.try_put(frame)

        ev.add_callback(deliver)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.host.name}:{self.port}>"
