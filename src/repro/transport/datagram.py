"""Unreliable datagrams (UDP): the base protocol SRUDP builds on.

Large datagrams are IP-fragmented; losing any fragment loses the whole
datagram (exactly the classic UDP failure mode the selective-resend layer
exists to fix).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Set, Tuple

from repro.sim.resources import Store
from repro.transport.base import Message, TransportEndpoint


@dataclass
class _Fragment:
    dgram_id: int
    index: int
    count: int
    total_size: int
    payload: Any  # carried on every fragment; delivered once


class DatagramEndpoint(TransportEndpoint):
    """Fire-and-forget datagrams with IP-style fragmentation."""

    proto = "udp"
    header_bytes = 28  # IP 20 + UDP 8

    def __init__(self, host, port, path_policy: str = "snipe") -> None:
        super().__init__(host, port, path_policy)
        self._rx_queue: Store = Store(self.sim)
        self._reassembly: Dict[Tuple[str, int], Set[int]] = {}
        self.datagrams_dropped = 0

    def send(self, dst_host: str, dst_port: int, payload: Any, size: int) -> bool:
        """Send one datagram. True == every fragment entered the network."""
        self.tx_messages += 1
        mss = self.max_payload(dst_host)
        # Per-sim ids: receivers key reassembly on (source, dgram_id), so a
        # process-global counter would make replay depend on earlier sims.
        dgram_id = self.sim.sequence("udp.dgram")
        count = max(1, -(-size // mss))
        ok = True
        for i in range(count):
            body = min(mss, size - i * mss) if size else 0
            frag = _Fragment(dgram_id, i, count, size, payload)
            ok = self._send_frame(dst_host, dst_port, frag, max(body, 1)) and ok
        return ok

    def recv(self):
        """Event yielding the next complete :class:`Message`."""
        return self._rx_queue.get()

    def _on_frame(self, frame) -> None:
        frag: _Fragment = frame.payload
        key = (f"{frame.src.ip}:{frame.src_port}", frag.dgram_id)
        got = self._reassembly.setdefault(key, set())
        got.add(frag.index)
        if len(got) == frag.count:
            del self._reassembly[key]
            self.rx_messages += 1
            self._rx_queue.try_put(
                Message(
                    src_host=frame.src.host,
                    src_ip=frame.src.ip,
                    src_port=frame.src_port,
                    payload=frag.payload,
                    size=frag.total_size,
                    msg_id=frag.dgram_id,
                )
            )
