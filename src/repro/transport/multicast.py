"""The experimental LAN multicast protocol (§6: "an experimental multicast
protocol for ethernet", plotted as Fig. 1's multicast series).

One broadcast frame reaches every NIC on the segment, so N receivers cost
one serialisation instead of N. Reliability is NACK-driven: receivers
report holes when they see a gap or an ack-request probe; the sender
re-broadcasts exactly the missing segments and finishes when every member
has confirmed delivery. This is LAN-scope by construction — the
wide-area, router-based group multicast of §5.4 lives in
:mod:`repro.daemon.mcast` and is a different animal.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.net.packet import BROADCAST, Frame
from repro.robust.overload import BULK, LaneStore, lane_for_request
from repro.sim.events import waker
from repro.sim.resources import Store
from repro.transport.base import Message, SendError, TransportEndpoint

ACK_EVERY = 16
CTRL_BODY_BYTES = 12

# Wire-path payload records are lean __slots__ classes (one _MData per
# broadcast frame); message ids come from ``sim.sequence`` so receiver
# dedup state is per-simulation.


class _MData:
    __slots__ = (
        "msg_id", "seq", "nsegs", "total_size", "ack_req", "payload",
        "reply_port", "sender", "t0",
    )

    def __init__(self, msg_id: int, seq: int, nsegs: int, total_size: int,
                 ack_req: bool, payload: Any, reply_port: int, sender: str,
                 t0: float = 0.0) -> None:
        self.msg_id = msg_id
        self.seq = seq
        self.nsegs = nsegs
        self.total_size = total_size
        self.ack_req = ack_req
        self.payload = payload
        self.reply_port = reply_port
        self.sender = sender
        self.t0 = t0  # virtual send time, for delivery-latency accounting


class _MNack:
    __slots__ = ("msg_id", "member", "missing")

    def __init__(self, msg_id: int, member: str,
                 missing: Tuple[int, ...]) -> None:
        self.msg_id = msg_id
        self.member = member
        self.missing = missing


class _MDone:
    __slots__ = ("msg_id", "member")

    def __init__(self, msg_id: int, member: str) -> None:
        self.msg_id = msg_id
        self.member = member


class EthernetMulticast(TransportEndpoint):
    """Reliable one-to-many message transport over LAN broadcast."""

    proto = "mcast"
    header_bytes = 32

    def __init__(
        self,
        host,
        port,
        segment_name: str,
        initial_rto: float = 0.05,
        min_rto: float = 0.002,
        max_retries: int = 12,
        rx_capacity: Optional[int] = None,
    ) -> None:
        self.segment_name = segment_name
        super().__init__(host, port)
        self.initial_rto = initial_rto
        self.min_rto = min_rto
        self.max_retries = max_retries
        # Bounded ingress, same discipline as SRUDP: a full bulk lane
        # withholds the _MDone confirmation so the sender NACK-repairs.
        if rx_capacity is None:
            rx_capacity = self.sim.overload.transport_rx_capacity
        self._rx_queue: LaneStore = LaneStore(self.sim, bulk_capacity=rx_capacity)
        self._ctrl: Dict[int, Store] = {}  # msg_id -> sender control inbox
        self._rx_state: Dict[Tuple[str, int], Set[int]] = {}
        self._delivered: Set[Tuple[str, int]] = set()
        self.retransmits = 0

    # -- sending ----------------------------------------------------------
    def send_group(
        self, members: Sequence[str], dst_port: int, payload: Any, size: int
    ):
        """Broadcast a message to *members* (host names on this segment).

        Returns a process event that succeeds when every member confirmed
        delivery and fails with :class:`SendError` naming the stragglers.
        """
        return self.sim.process(
            self._sender(list(members), dst_port, payload, size),
            name=f"mcast-send:{self.host.name}",
        )

    def _broadcast(
        self, dst_port: int, item: Any, body_bytes: int, trace_id=None
    ) -> bool:
        nic = self.host.nic_on_segment(self.segment_name)
        if nic is None or not nic.up:
            return False
        frame = Frame(
            src=nic.address,
            dst_ip=BROADCAST,
            proto=self.proto,
            src_port=self.port,
            dst_port=dst_port,
            payload=item,
            size=body_bytes + self.header_bytes,
            frame_id=self.sim.next_frame_id(),
            trace_id=trace_id,
        )
        if self._tracer.enabled:
            self._tracer.event(
                "frame.tx",
                trace_id=trace_id,
                proto=self.proto,
                src=self.host.name,
                dst=BROADCAST,
                iface=nic.iface,
                net=nic.segment.name,
                bytes=frame.size,
            )
        return nic.send(frame)

    def _sender(self, members: List[str], dst_port: int, payload: Any, size: int):
        members = [m for m in members if m != self.host.name]
        if not members:
            return size
        msg_id = self.sim.sequence("mcast.msg")
        nic = self.host.nic_on_segment(self.segment_name)
        if nic is None:
            raise SendError(f"mcast: {self.host.name} not on {self.segment_name}")
        mss = nic.medium.mtu - self.header_bytes
        nsegs = max(1, -(-size // mss))
        ctrl: Store = Store(self.sim)
        self._ctrl[msg_id] = ctrl
        self._note_tx()
        t0 = self.sim.now
        tracer = self._tracer
        trace_id = tracer.maybe_trace_id()
        if tracer.enabled:
            tracer.event(
                "mcast.send", trace_id=trace_id, msg=msg_id, src=self.host.name,
                members=len(members), bytes=size, nsegs=nsegs,
            )
        try:
            done: Set[str] = set()
            rto = self.initial_rto
            retries = 0
            pending = None

            def seg_bytes(seq: int) -> int:
                if size == 0:
                    return 1
                return min(mss, size - seq * mss)

            def push(seq: int, ack_req: bool, retransmit: bool = False) -> bool:
                if retransmit and tracer.enabled:
                    tracer.event(
                        "mcast.retransmit", trace_id=trace_id, msg=msg_id, seq=seq
                    )
                return self._broadcast(
                    dst_port,
                    _MData(msg_id, seq, nsegs, size, ack_req, payload,
                           self.port, self.host.name, t0),
                    seg_bytes(seq),
                    trace_id=trace_id,
                )

            # Pace the broadcast against the NIC: blasting thousands of
            # segments into a bounded transmit queue silently drops the
            # overflow and turns the transfer into a NACK storm.
            backoff = nic.medium.serialize_time(nic.medium.mtu) * 64
            for seq in range(nsegs):
                while not push(seq, ack_req=(seq == nsegs - 1 or (seq + 1) % ACK_EVERY == 0)):
                    yield self.sim.timeout(backoff)
            send_owner = f"mcast-send:{self.host.name}"
            while len(done) < len(members):
                if pending is None:
                    pending = ctrl.get()
                wake = self.sim.event()
                fire = waker(wake)
                pending.add_callback(fire)
                timer = self.sim.schedule_timer(rto, fire, owner=send_owner)
                yield wake
                timer.cancel()
                item = None
                if pending.processed:
                    item = pending.value
                    pending = None
                if isinstance(item, _MDone):
                    if item.member not in done:
                        done.add(item.member)
                        retries = 0
                    # Duplicate confirmations (elicited by probes) are not
                    # progress; without this, one live member keeps a dead
                    # member's send alive forever.
                elif isinstance(item, _MNack):
                    retries = 0
                    for i, seq in enumerate(item.missing):
                        self.retransmits += 1
                        self._note_retransmit()
                        push(seq, ack_req=(i == len(item.missing) - 1), retransmit=True)
                else:
                    retries += 1
                    if retries > self.max_retries:
                        missing = sorted(set(members) - done)
                        self._m_send_errors.inc()
                        if tracer.enabled:
                            tracer.event(
                                "mcast.failed", trace_id=trace_id, msg=msg_id,
                                stragglers=missing,
                            )
                        raise SendError(f"mcast: no confirmation from {missing}")
                    rto = min(rto * 2, 2.0)
                    # Probe: re-broadcast the last segment with ack_req set.
                    self.retransmits += 1
                    self._note_retransmit()
                    push(nsegs - 1, ack_req=True, retransmit=True)
            self._m_send_latency.observe(self.sim.now - t0)
            if tracer.enabled:
                tracer.event("mcast.acked", trace_id=trace_id, msg=msg_id)
            return size
        finally:
            self._ctrl.pop(msg_id, None)

    # -- receiving ------------------------------------------------------------
    def recv(self):
        """Event yielding the next complete group :class:`Message`."""
        return self._rx_queue.get()

    def _on_frame(self, frame) -> None:
        item = frame.payload
        if isinstance(item, (_MNack, _MDone)):
            inbox = self._ctrl.get(item.msg_id)
            if inbox is not None:
                inbox.try_put(item)
            return
        if isinstance(item, _MData):
            self._on_data(frame, item)

    def _unicast_ctrl(self, data: _MData, item: Any, body: int) -> None:
        self._send_frame(data.sender, data.reply_port, item, body)

    def _on_data(self, frame, data: _MData) -> None:
        key = (data.sender, data.msg_id)
        if key in self._delivered:
            self._unicast_ctrl(data, _MDone(data.msg_id, self.host.name), CTRL_BODY_BYTES)
            return
        got = self._rx_state.setdefault(key, set())
        got.add(data.seq)
        if len(got) == data.nsegs:
            admitted = self._rx_queue.try_put(
                Message(
                    src_host=data.sender,
                    src_ip=frame.src.ip,
                    src_port=frame.src_port,
                    payload=data.payload,
                    size=data.total_size,
                ),
                lane=(
                    lane_for_request(data.payload)
                    if self.sim.overload.lanes
                    else BULK
                ),
            )
            if not admitted:
                # Bulk lane full: don't confirm; the sender's repair loop
                # resends and delivery happens once the consumer drains.
                self._note_rx_drop()
                return
            del self._rx_state[key]
            self._delivered.add(key)
            if len(self._delivered) > 8192:
                self._delivered.clear()  # tombstone horizon
            self._note_rx(sent_at=data.t0)
            if self._tracer.enabled:
                self._tracer.event(
                    "mcast.deliver", trace_id=frame.trace_id, msg=data.msg_id,
                    src=data.sender, dst=self.host.name, bytes=data.total_size,
                )
            self._unicast_ctrl(data, _MDone(data.msg_id, self.host.name), CTRL_BODY_BYTES)
        elif data.ack_req:
            horizon = max(got) + 1
            missing = tuple(s for s in range(horizon) if s not in got)
            if missing:
                self._unicast_ctrl(
                    data,
                    _MNack(data.msg_id, self.host.name, missing[:256]),
                    CTRL_BODY_BYTES + 4 * min(len(missing), 256),
                )
