"""Unicast path selection (§5.3).

    "If the source and destination are on a common private network or
    common IP subnet, the message is sent using the fastest of those.
    Otherwise, the message is sent using the host's normal IP routing."

The selector is consulted per transmission burst, not per connection, so
when a segment dies mid-transfer the very next burst flows over the next
best path — this is the §6 claim that the system "switch[es]
routes/interfaces as links failed without user applications intervention"
(experiment E8).

Reroute and quarantine must agree: when the overload layer's circuit
breaker declares a (destination, interface) pair sick, ``select`` demotes
that interface and shops the remaining shared segments, falling back to
the fastest one only when every candidate is quarantined. Transports
report outcomes through :meth:`PathSelector.note_result`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.net.nic import NIC
    from repro.net.topology import Topology

#: Policy constants.
SNIPE = "snipe"  # fastest shared medium, then IP routing
DEFAULT_IP = "default-ip"  # plain IP routing only (the E10 baseline)


class PathSelector:
    """Chooses (outgoing NIC, destination IP, l2 next hop) for a peer host."""

    def __init__(self, host: "Host", policy: str = SNIPE) -> None:
        if policy not in (SNIPE, DEFAULT_IP):
            raise ValueError(f"unknown path policy {policy!r}")
        self.host = host
        self.topology: "Topology" = host.topology
        self.policy = policy
        self._cache: dict = {}
        self.switches = 0  # route changes observed (E8 metric)
        self._last_choice: dict = {}
        self._obs = host.sim.obs
        self._m_switches = self._obs.metrics.counter("pathsel.switches")
        self._breakers = None  # lazy BreakerBoard keyed (dst_host, iface)

    @property
    def breakers(self):
        """Per-(destination, interface) circuit breakers, built lazily so
        selectors on quiet endpoints cost nothing."""
        if self._breakers is None:
            from repro.robust.overload import BreakerBoard

            board = BreakerBoard(
                self.host.sim,
                scope="path",
                window=8,
                min_samples=2,
                failure_threshold=0.75,
                open_for=2.0,
            )
            # Cached choices can't see breaker flips; drop them on any
            # transition so the next select() re-shops the segments.
            board.on_transition = lambda key, old, new: self._invalidate(key[0])
            self._breakers = board
        return self._breakers

    def note_result(self, dst_host: str, ok: bool) -> None:
        """Transport feedback: the last chosen path to *dst_host* carried a
        message successfully (or exhausted its retries). Feeds the path
        breaker so a sick interface is demoted at the next selection, and
        the differential health board so gray peers lose their place in
        every candidate ordering, not just this selector's."""
        last = self._last_choice.get(dst_host)
        self.host.health.note_outcome(
            dst_host, ok, kind="srudp", iface=last[0] if last else "*"
        )
        if not self.host.sim.overload.breakers:
            return
        if last is None:
            return
        self.breakers.record((dst_host, last[0]), ok)

    def _invalidate(self, dst_host: str) -> None:
        for key in [k for k in self._cache if k[0] == dst_host]:
            del self._cache[key]

    def select(self, dst_host: str) -> Optional[Tuple["NIC", str, Optional[str]]]:
        """Path to *dst_host*: (nic, dst_ip, l2_next_hop_ip_or_None).

        Returns None when the destination is unreachable (caller buffers
        or fails). Results are cached per topology version.
        """
        key = (dst_host, self.topology._version, self.policy)
        cached = self._cache.get(key)
        if cached is not None and self.host.sim.now < cached[1]:
            if cached[0] is None or not self.host.health.iface_quarantined(
                dst_host, cached[0][0].iface
            ):
                return cached[0]
            # A health quarantine landed on the cached interface *after*
            # it was cached. The board can't invalidate every endpoint's
            # selector (it doesn't know them), and gray link faults never
            # bump the topology version — so without this check a choice
            # cached before the fault would ride the sick path forever.
            del self._cache[key]
        choice, expires = self._compute(dst_host)
        self._cache[key] = (choice, expires)
        prev = self._last_choice.get(dst_host)
        if choice is not None:
            sig = (choice[0].iface, choice[2])
            if prev is not None and prev != sig:
                self.switches += 1
                self._m_switches.inc()
                self._obs.tracer.event(
                    "path.switch",
                    host=self.host.name,
                    dst=dst_host,
                    old_iface=prev[0],
                    new_iface=sig[0],
                    net=choice[0].segment.name,
                )
            self._last_choice[dst_host] = sig
        if len(self._cache) > 50_000:
            self._cache.clear()
        return choice

    def _compute(
        self, dst_host: str
    ) -> Tuple[Optional[Tuple["NIC", str, Optional[str]]], float]:
        """(choice, cache-expiry). The expiry is finite only when the
        choice demoted a quarantined interface: once that breaker is due
        for its probe, a cached detour must not outlive the quarantine."""
        topo = self.topology
        target = topo.hosts.get(dst_host)
        if target is None or not target.up:
            return None, float("inf")
        if self.policy == SNIPE:
            shared = topo.shared_segments(self.host.name, dst_host)
            if shared:
                # Fastest shared medium first, but demote any interface
                # whose circuit breaker is open: quarantine and reroute
                # must point the same way. If *every* shared candidate is
                # quarantined, fall back to the fastest anyway — a bad
                # path still beats no path, and it doubles as the probe.
                fallback = None
                expires = float("inf")
                quarantine = (
                    self._breakers if self.host.sim.overload.breakers else None
                )
                health = self.host.health
                for seg in shared:
                    nic = self.host.nic_on_segment(seg.name)
                    dst_ip = target.ip_on_segment(seg.name)
                    if nic is None or dst_ip is None:
                        continue
                    if fallback is None:
                        fallback = (nic, dst_ip, None)
                    if quarantine is not None and quarantine.is_open(
                        (dst_host, nic.iface)
                    ):
                        due = quarantine.due_at((dst_host, nic.iface))
                        if due is not None:
                            expires = min(expires, due)
                        continue
                    # The health board quarantines per (peer, iface) too:
                    # a path failing *application* outcomes (digest drops,
                    # delivery failures) is demoted even while its breaker
                    # still thinks it's fine. Probation bounds the detour.
                    if health.iface_quarantined(dst_host, nic.iface):
                        expires = min(expires, self.host.sim.now + health.probation)
                        continue
                    return (nic, dst_ip, None), expires
                if fallback is not None:
                    return fallback, expires
        else:
            # Plain IP: a shared segment is used only if it's the
            # first-configured interface's segment (no media shopping).
            first_nic = next(iter(self.host.nics.values()), None)
            if first_nic is not None and first_nic.up and first_nic.segment.up:
                dst_ip = target.ip_on_segment(first_nic.segment.name)
                if dst_ip is not None and target.nic_on_segment(first_nic.segment.name).up:
                    return (first_nic, dst_ip, None), float("inf")
        # Fall back to routed delivery toward any of the target's IPs.
        for nic in target.nics.values():
            if not nic.up:
                continue
            hop = topo.next_hop(self.host.name, nic.address.ip)
            if hop is not None:
                out_nic, l2_ip = hop
                l2 = None if l2_ip == nic.address.ip else l2_ip
                return (out_nic, nic.address.ip, l2), float("inf")
        return None, float("inf")
