"""Unicast path selection (§5.3).

    "If the source and destination are on a common private network or
    common IP subnet, the message is sent using the fastest of those.
    Otherwise, the message is sent using the host's normal IP routing."

The selector is consulted per transmission burst, not per connection, so
when a segment dies mid-transfer the very next burst flows over the next
best path — this is the §6 claim that the system "switch[es]
routes/interfaces as links failed without user applications intervention"
(experiment E8).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.net.nic import NIC
    from repro.net.topology import Topology

#: Policy constants.
SNIPE = "snipe"  # fastest shared medium, then IP routing
DEFAULT_IP = "default-ip"  # plain IP routing only (the E10 baseline)


class PathSelector:
    """Chooses (outgoing NIC, destination IP, l2 next hop) for a peer host."""

    def __init__(self, host: "Host", policy: str = SNIPE) -> None:
        if policy not in (SNIPE, DEFAULT_IP):
            raise ValueError(f"unknown path policy {policy!r}")
        self.host = host
        self.topology: "Topology" = host.topology
        self.policy = policy
        self._cache: dict = {}
        self.switches = 0  # route changes observed (E8 metric)
        self._last_choice: dict = {}
        self._obs = host.sim.obs
        self._m_switches = self._obs.metrics.counter("pathsel.switches")

    def select(self, dst_host: str) -> Optional[Tuple["NIC", str, Optional[str]]]:
        """Path to *dst_host*: (nic, dst_ip, l2_next_hop_ip_or_None).

        Returns None when the destination is unreachable (caller buffers
        or fails). Results are cached per topology version.
        """
        key = (dst_host, self.topology._version, self.policy)
        if key in self._cache:
            return self._cache[key]
        choice = self._compute(dst_host)
        self._cache[key] = choice
        prev = self._last_choice.get(dst_host)
        if choice is not None:
            sig = (choice[0].iface, choice[2])
            if prev is not None and prev != sig:
                self.switches += 1
                self._m_switches.inc()
                self._obs.tracer.event(
                    "path.switch",
                    host=self.host.name,
                    dst=dst_host,
                    old_iface=prev[0],
                    new_iface=sig[0],
                    net=choice[0].segment.name,
                )
            self._last_choice[dst_host] = sig
        if len(self._cache) > 50_000:
            self._cache.clear()
        return choice

    def _compute(self, dst_host: str) -> Optional[Tuple["NIC", str, Optional[str]]]:
        topo = self.topology
        target = topo.hosts.get(dst_host)
        if target is None or not target.up:
            return None
        if self.policy == SNIPE:
            shared = topo.shared_segments(self.host.name, dst_host)
            if shared:
                seg = shared[0]  # fastest medium
                nic = self.host.nic_on_segment(seg.name)
                dst_ip = target.ip_on_segment(seg.name)
                if nic is not None and dst_ip is not None:
                    return nic, dst_ip, None
        else:
            # Plain IP: a shared segment is used only if it's the
            # first-configured interface's segment (no media shopping).
            first_nic = next(iter(self.host.nics.values()), None)
            if first_nic is not None and first_nic.up and first_nic.segment.up:
                dst_ip = target.ip_on_segment(first_nic.segment.name)
                if dst_ip is not None and target.nic_on_segment(first_nic.segment.name).up:
                    return first_nic, dst_ip, None
        # Fall back to routed delivery toward any of the target's IPs.
        for nic in target.nics.values():
            if not nic.up:
                continue
            hop = topo.next_hop(self.host.name, nic.address.ip)
            if hop is not None:
                out_nic, l2_ip = hop
                l2 = None if l2_ip == nic.address.ip else l2_ip
                return out_nic, nic.address.ip, l2
        return None
