"""SRUDP — SNIPE's selective re-send UDP protocol (§6).

The paper's comm module "supported a selective re-send UDP protocol";
this is a full implementation: messages are segmented, a sliding window
of segments streams without per-segment handshaking, receivers report a
cumulative counter plus the exact missing-segment list, and only those
segments are retransmitted. Compared with TCP this saves the connection
handshake, 8 header bytes per frame, and — under loss — the go-back-N
resend storm; that is where the "slightly higher point-to-point
communication performance" of §6.1 comes from.

End-to-end integrity: the sender stamps every data frame with a SHA-256
digest of the message payload (computed once per message via
:func:`repro.security.hashes.content_hash`); the receiver re-verifies on
arrival and a frame whose bytes no longer match — bit flips injected by
a gray link — is counted (``transport.rx_corrupt``), dropped, and left
out of the selective ACK, so the sender simply retransmits it. Corrupt
data is never delivered upward. ``SrudpEndpoint.digest_enabled = False``
(the ``no-digest`` seeded bug) turns verification off; the corruption
oracle then catches the corrupt delivery.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.robust.overload import BULK, LaneStore, RttEstimator, lane_for_request
from repro.sim.events import waker
from repro.sim.resources import Store
from repro.transport.base import Message, SendError, TransportEndpoint

#: Request an ACK at least every this many data segments.
ACK_EVERY = 16
#: ACK frame body: msg id + cumulative counter + missing-list length.
ACK_BODY_BYTES = 12
#: Extra body bytes per reported missing segment.
ACK_MISS_BYTES = 4


class _Data:
    """One data segment (lean ``__slots__`` class: one per frame sent)."""

    __slots__ = (
        "msg_id", "seq", "nsegs", "total_size", "ack_req", "payload",
        "reply_port", "t0",
    )

    def __init__(self, msg_id: int, seq: int, nsegs: int, total_size: int,
                 ack_req: bool, payload: Any, reply_port: int,
                 t0: float = 0.0) -> None:
        self.msg_id = msg_id
        self.seq = seq
        self.nsegs = nsegs
        self.total_size = total_size
        self.ack_req = ack_req
        self.payload = payload  # the message object; delivered on completion
        self.reply_port = reply_port
        self.t0 = t0  # virtual send time, for delivery-latency accounting


class _LazyDigest:
    """A frame-header digest whose hex value is computed on first read.

    The wire model decides verification outcomes from the frame's
    corruption state, so in the common case the SHA-256 over the
    message's canonical encoding is never needed; this defers it while
    keeping ``frame.digest is not None`` semantics (and a real value for
    anything that prints or compares it).
    """

    __slots__ = ("_payload", "_hex")

    def __init__(self, payload: Any) -> None:
        self._payload = payload
        self._hex: Optional[str] = None

    @property
    def hex(self) -> Optional[str]:
        if self._hex is None:
            from repro.security.hashes import content_hash

            try:
                self._hex = content_hash(self._payload)
            except Exception:
                return None  # unhashable payload object: unverified
        return self._hex

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, _LazyDigest):
            return self.hex == other.hex
        return self.hex == other

    def __hash__(self) -> int:
        return hash(self.hex)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<digest {self.hex}>"


class _Ack:
    __slots__ = ("msg_id", "cumulative", "missing", "done")

    def __init__(self, msg_id: int, cumulative: int,
                 missing: Tuple[int, ...], done: bool) -> None:
        self.msg_id = msg_id
        # Next segment the receiver expects (all below arrived) plus the
        # gaps between that and the highest segment received.
        self.cumulative = cumulative
        self.missing = missing
        self.done = done


class _SingleFlight:
    """Callback-driven sender for messages that fit one segment.

    Control-plane traffic — RPC requests and replies, heartbeats, lease
    refreshes — is overwhelmingly single-segment, and for one segment the
    :meth:`SrudpEndpoint._sender` window loop degenerates to "push, wait
    for the done-ACK, retransmit on timeout". Driving that with two
    callbacks (the ACK route and a cancellable wheel timer) instead of a
    generator process saves the Process/initialise-event/resume machinery
    per message, which was the largest remaining block in the overload
    profile after the wire path was flattened.

    The instance registers *itself* in ``_ack_routes`` (it quacks like
    the Store the generator path uses: :meth:`try_put`), and ``event`` is
    the caller-visible send event — succeeds with the byte count on the
    done-ACK, fails with :class:`SendError` on retry exhaustion, exactly
    like the Process event the slow path returns.
    """

    __slots__ = (
        "ep", "dst_host", "dst_port", "payload", "size", "msg_id",
        "trace_id", "digest", "t0", "sent_at", "est", "rto", "retries",
        "timer", "owner", "event", "finished",
    )

    def __init__(self, ep: "SrudpEndpoint", dst_host: str, dst_port: int,
                 payload: Any, size: int, trace_id: Optional[int],
                 parent: Optional[int]) -> None:
        sim = ep.sim
        self.ep = ep
        self.dst_host = dst_host
        self.dst_port = dst_port
        self.payload = payload
        self.size = size
        self.trace_id = trace_id
        ep._next_msg_id += 1
        self.msg_id = ep._next_msg_id
        self.digest = ep._message_digest(payload) if ep.digest_enabled else None
        ep._ack_routes[self.msg_id] = self
        ep._note_tx()
        self.t0 = sim.now
        self.owner = f"srudp-send:{ep.host.name}"
        tracer = ep._tracer
        if tracer.enabled:
            tracer.event(
                "srudp.send", trace_id=trace_id, msg=self.msg_id,
                src=ep.host.name, dst=dst_host, bytes=size, nsegs=1,
                parent_trace=parent,
            )
        est = ep._estimator(dst_host) if sim.overload.adaptive else None
        self.est = est
        self.rto = est.rto() if est is not None else ep.initial_rto
        self.retries = 0
        self.finished = False
        self.event = sim.event()
        # An unroutable push falls through to the timer, whose timeout
        # path re-probes — same recovery as the generator's window loop.
        self._push(retransmit=False)
        self.sent_at = sim.now
        self.timer = sim.schedule_timer(self.rto, self._on_timeout,
                                        owner=self.owner)

    def _push(self, retransmit: bool) -> None:
        ep = self.ep
        if retransmit and ep._tracer.enabled:
            ep._tracer.event("srudp.retransmit", trace_id=self.trace_id,
                             msg=self.msg_id, seq=0)
        data = _Data(self.msg_id, 0, 1, self.size, True, self.payload,
                     ep.port, self.t0)
        ep._send_frame(self.dst_host, self.dst_port, data,
                       self.size if self.size else 1,
                       trace_id=self.trace_id, digest=self.digest)

    # Ack-route protocol: the endpoint's _on_frame routes ACKs here.
    def try_put(self, ack: _Ack) -> bool:
        if self.finished:
            return True
        ep = self.ep
        sim = ep.sim
        self.timer.cancel()
        rtt = sim.now - self.sent_at
        est = self.est
        if est is not None:
            est.observe(rtt)
            self.rto = est.rto()
        else:
            ep._srtt = (
                rtt if ep._srtt == 0 else 0.875 * ep._srtt + 0.125 * rtt
            )
            self.rto = max(ep.min_rto, 2.5 * ep._srtt)
        self.retries = 0
        if ack.done:
            self.finished = True
            ep._ack_routes.pop(self.msg_id, None)
            ep._m_send_latency.observe(sim.now - self.t0)
            ep.paths.note_result(self.dst_host, True)
            if ep._tracer.enabled:
                ep._tracer.event("srudp.acked", trace_id=self.trace_id,
                                 msg=self.msg_id)
            self.event.succeed(self.size)
            return True
        # Partial ACK naming our only segment as a hole: selective resend.
        if 0 in ack.missing:
            ep.retransmits += 1
            ep._note_retransmit()
            self._push(retransmit=True)
        self.sent_at = sim.now
        self.timer = sim.schedule_timer(self.rto, self._on_timeout,
                                        owner=self.owner)
        return True

    def _on_timeout(self) -> None:
        if self.finished:
            return
        ep = self.ep
        self.retries += 1
        if self.retries > ep.max_retries:
            self.finished = True
            ep._ack_routes.pop(self.msg_id, None)
            ep._m_send_errors.inc()
            ep.paths.note_result(self.dst_host, False)
            if ep._tracer.enabled:
                ep._tracer.event("srudp.failed", trace_id=self.trace_id,
                                 msg=self.msg_id, outstanding=1)
            exc = SendError(
                f"srudp: {self.dst_host}:{self.dst_port} unreachable "
                f"(msg {self.msg_id}, 1/1 outstanding)"
            )
            ev = self.event
            ev.fail(exc)
            # Mirror the Process contract: an unobserved send failure is
            # a background crash in strict mode, not a silent drop.
            if ep.sim.strict_process_errors and not ev.callbacks:
                ep.sim._crashed.append((ev, exc))
            return
        est = self.est
        if est is not None:
            est.backoff()
            self.rto = est.rto()
        else:
            self.rto = min(self.rto * 2, 2.0)
        ep.retransmits += 1
        ep._note_retransmit()
        self._push(retransmit=True)
        self.sent_at = ep.sim.now
        self.timer = ep.sim.schedule_timer(self.rto, self._on_timeout,
                                           owner=self.owner)


class SrudpEndpoint(TransportEndpoint):
    """Reliable message transport over selective-resend UDP."""

    proto = "srudp"
    header_bytes = 32  # IP 20 + SNIPE reliable-datagram header 12
    #: End-to-end payload digesting (class-level so the ``no-digest``
    #: seeded bug can switch every endpoint off at once).
    digest_enabled = True

    def __init__(
        self,
        host,
        port,
        path_policy: str = "snipe",
        window: int = 64,
        initial_rto: float = 0.05,
        min_rto: float = 0.002,
        max_retries: int = 12,
        rx_capacity: Optional[int] = None,
    ) -> None:
        super().__init__(host, port, path_policy)
        self.window = window
        self.initial_rto = initial_rto
        self.min_rto = min_rto
        self.max_retries = max_retries
        # Bounded two-lane ingress: control messages (fencing, leases,
        # guardian probes) jump the bulk queue; a full bulk lane withholds
        # the final ACK so the sender retransmits — backpressure, never
        # silent loss.
        if rx_capacity is None:
            rx_capacity = self.sim.overload.transport_rx_capacity
        self._rx_queue: LaneStore = LaneStore(self.sim, bulk_capacity=rx_capacity)
        self._ack_routes: Dict[int, Store] = {}  # msg_id -> sender's ack inbox
        self._rx_state: Dict[Tuple[str, int], _RxState] = {}
        self._done: "OrderedDict[Tuple[str, int], bool]" = OrderedDict()
        self.retransmits = 0
        # Per-destination Jacobson RTT estimators (adaptive mode) and the
        # legacy endpoint-wide smoothed RTT (static baseline).
        self._rtt: Dict[str, RttEstimator] = {}
        self._srtt = 0.0
        # Message ids are scoped per endpoint (receivers key reassembly on
        # (src host, src port, msg id)), so a local counter suffices and —
        # unlike a process-global one — keeps same-seed runs identical
        # regardless of what else ran in this process.
        self._next_msg_id = 0

    def _estimator(self, dst_host: str) -> RttEstimator:
        est = self._rtt.get(dst_host)
        if est is None:
            est = self._rtt[dst_host] = RttEstimator(
                initial_rto=self.initial_rto, min_rto=self.min_rto, max_rto=2.0
            )
        return est

    # -- sending ----------------------------------------------------------
    def send(self, dst_host: str, dst_port: int, payload: Any, size: int):
        """Reliably send a message; the returned event succeeds on full
        acknowledgement and fails with :class:`SendError` otherwise.

        Single-segment messages return a plain event driven by
        :class:`_SingleFlight`; multi-segment messages return the sender
        Process. Both support ``yield``/``triggered``/``ok``/``value``.
        """
        # One fresh trace id per message (None when tracing is off),
        # allocated at call time so the caller's ambient span (if any) is
        # recorded as the parent.
        trace_id = self._tracer.maybe_trace_id()
        parent = self._tracer.current_trace_id
        if size <= self.max_payload(dst_host):
            # Single-segment fast path: no sender process, just an ACK
            # callback racing a retransmission timer (see _SingleFlight).
            return _SingleFlight(
                self, dst_host, dst_port, payload, size, trace_id, parent
            ).event
        return self.sim.process(
            self._sender(dst_host, dst_port, payload, size, trace_id, parent),
            name=f"srudp-send:{self.host.name}->{dst_host}",
        )

    def _sender(self, dst_host: str, dst_port: int, payload: Any, size: int,
                trace_id: Optional[int], parent: Optional[int] = None):
        self._next_msg_id += 1
        msg_id = self._next_msg_id
        mss = self.max_payload(dst_host)
        nsegs = max(1, -(-size // mss))
        digest = self._message_digest(payload) if self.digest_enabled else None
        acks: Store = Store(self.sim)
        self._ack_routes[msg_id] = acks
        self._note_tx()
        t0 = self.sim.now
        send_owner = f"srudp-send:{self.host.name}"
        tracer = self._tracer
        if tracer.enabled:
            tracer.event(
                "srudp.send", trace_id=trace_id, msg=msg_id,
                src=self.host.name, dst=dst_host, bytes=size, nsegs=nsegs,
                parent_trace=parent,
            )
        try:
            unacked: Set[int] = set(range(nsegs))
            cumulative = 0
            inflight: Set[int] = set()
            next_new = 0
            retries = 0
            # Adaptive mode: per-destination Jacobson estimator owns the
            # RTO (srtt + 4·rttvar, doubled per timeout). Static mode
            # keeps the legacy endpoint-wide 2.5·srtt with ad-hoc backoff.
            est = self._estimator(dst_host) if self.sim.overload.adaptive else None
            rto = est.rto() if est is not None else self.initial_rto
            pending = None  # outstanding acks.get(); reused across timeouts

            def seg_bytes(seq: int) -> int:
                if size == 0:
                    return 1
                return min(mss, size - seq * mss)

            def push(seq: int, ack_req: bool, retransmit: bool = False) -> bool:
                data = _Data(msg_id, seq, nsegs, size, ack_req, payload, self.port, t0)
                if retransmit and tracer.enabled:
                    tracer.event(
                        "srudp.retransmit", trace_id=trace_id, msg=msg_id, seq=seq
                    )
                return self._send_frame(
                    dst_host, dst_port, data, seg_bytes(seq), trace_id=trace_id,
                    digest=digest,
                )

            while unacked:
                # Fill the window with new segments.
                while next_new < nsegs and len(inflight) < self.window:
                    last_of_burst = (
                        next_new == nsegs - 1
                        or len(inflight) == self.window - 1
                        or (next_new + 1) % ACK_EVERY == 0
                    )
                    if not push(next_new, last_of_burst):
                        break  # unroutable right now; rely on timeout path
                    inflight.add(next_new)
                    next_new += 1
                # Wait for an ACK or a retransmission timeout. The get()
                # event is reused across timeouts so an ACK arriving late
                # is never swallowed by an abandoned waiter. The timeout
                # is a cancellable wheel timer: when the ACK wins the race
                # (the overwhelming majority of waits) the timer dies in
                # its bucket without ever touching the event heap.
                sent_at = self.sim.now
                if pending is None:
                    pending = acks.get()
                wake = self.sim.event()
                fire = waker(wake)
                pending.add_callback(fire)
                timer = self.sim.schedule_timer(rto, fire, owner=send_owner)
                yield wake
                timer.cancel()
                ack = None
                if pending.processed:
                    ack = pending.value
                    pending = None
                if isinstance(ack, _Ack):
                    rtt = self.sim.now - sent_at
                    if est is not None:
                        est.observe(rtt)
                        rto = est.rto()
                    else:
                        self._srtt = (
                            rtt if self._srtt == 0 else 0.875 * self._srtt + 0.125 * rtt
                        )
                        rto = max(self.min_rto, 2.5 * self._srtt)
                    retries = 0
                    if ack.done:
                        self._m_send_latency.observe(self.sim.now - t0)
                        self.paths.note_result(dst_host, True)
                        if tracer.enabled:
                            tracer.event(
                                "srudp.acked", trace_id=trace_id, msg=msg_id
                            )
                        return size
                    cumulative = max(cumulative, ack.cumulative)
                    newly_acked = {
                        s
                        for s in unacked
                        if s < cumulative and s not in ack.missing
                    }
                    unacked -= newly_acked
                    inflight -= newly_acked
                    # Selective retransmission of exactly the holes.
                    missing = [s for s in ack.missing if s in unacked]
                    for i, seq in enumerate(missing):
                        self.retransmits += 1
                        self._note_retransmit()
                        push(seq, ack_req=(i == len(missing) - 1), retransmit=True)
                else:
                    # Timeout: probe with the lowest unacked segment.
                    retries += 1
                    if retries > self.max_retries:
                        self._m_send_errors.inc()
                        self.paths.note_result(dst_host, False)
                        if tracer.enabled:
                            tracer.event(
                                "srudp.failed", trace_id=trace_id, msg=msg_id,
                                outstanding=len(unacked),
                            )
                        raise SendError(
                            f"srudp: {dst_host}:{dst_port} unreachable "
                            f"(msg {msg_id}, {len(unacked)}/{nsegs} outstanding)"
                        )
                    if est is not None:
                        est.backoff()
                        rto = est.rto()
                    else:
                        rto = min(rto * 2, 2.0)
                    if unacked:
                        self.retransmits += 1
                        self._note_retransmit()
                        push(min(unacked), ack_req=True, retransmit=True)
            self._m_send_latency.observe(self.sim.now - t0)
            self.paths.note_result(dst_host, True)
            return size
        finally:
            self._ack_routes.pop(msg_id, None)

    # -- receiving ------------------------------------------------------------
    @staticmethod
    def _message_digest(payload) -> Optional["_LazyDigest"]:
        """The end-to-end digest stamped on every data frame.

        Evaluated lazily: receivers decide "does the payload still match
        the header digest?" from the frame's wire-corruption state, so
        the hex value is only ever materialised if something (a debugger,
        a dump) actually reads it — hashing the canonical encoding of
        every message payload up front was a top-five cost in the bulk
        wire profile, for bytes nothing looked at.
        """
        return _LazyDigest(payload)

    def recv(self):
        """Event yielding the next complete :class:`Message`."""
        return self._rx_queue.get()

    def _on_frame(self, frame) -> None:
        item = frame.payload
        if isinstance(item, _Ack):
            if frame.corrupt and self.digest_enabled:
                # Header checksum failed: treat the ACK as lost;
                # the sender's timeout path recovers.
                self._note_rx_corrupt(frame.src.host)
                return
            inbox = self._ack_routes.get(item.msg_id)
            if inbox is not None:
                inbox.try_put(item)
            return
        self._on_data(frame, item)

    def _on_data(self, frame, data: _Data) -> None:
        if frame.corrupt and self.digest_enabled and frame.digest is not None:
            # Recomputing the digest over the received bytes does not
            # match the sender-stamped header digest: count the corrupt
            # receive, drop the segment, and leave it un-ACKed so the
            # sender retransmits. Corrupt bytes never go upward.
            self._note_rx_corrupt(frame.src.host)
            return
        # Keyed by host identity, not IP: a path failover changes the
        # source address mid-message and must not split the reassembly.
        key = (frame.src.host, frame.src_port, data.msg_id)
        if key in self._done:
            # Sender missed our final ACK; repeat it.
            self._send_ack(frame, data, cumulative=data.nsegs, missing=(), done=True)
            return
        state = self._rx_state.get(key)
        if state is None:
            state = self._rx_state[key] = _RxState(data.nsegs)
        if frame.corrupt:
            # Verification is off (no-digest bug) or the payload was
            # unhashable: the flipped bits go undetected and poison the
            # whole reassembly. The corruption oracle's ground truth.
            state.corrupt = True
        state.add(data.seq)
        if state.complete:
            admitted = self._rx_queue.try_put(
                Message(
                    src_host=frame.src.host,
                    src_ip=frame.src.ip,
                    src_port=frame.src_port,
                    payload=data.payload,
                    size=data.total_size,
                ),
                lane=(
                    lane_for_request(data.payload)
                    if self.sim.overload.lanes
                    else BULK
                ),
            )
            if not admitted:
                # Bulk lane full: withhold the final ACK and keep the
                # reassembly state. The sender times out and retransmits;
                # the message is delivered once the consumer drains.
                self._note_rx_drop()
                return
            del self._rx_state[key]
            self._done[key] = True
            while len(self._done) > 4096:
                self._done.popitem(last=False)
            self._note_rx(sent_at=data.t0)
            if state.corrupt:
                probes = self.sim.probes
                if probes is not None:
                    probes.emit(
                        "srudp.corrupt_deliver", src=frame.src.host,
                        dst=self.host.name, msg=data.msg_id,
                    )
            if self._tracer.enabled:
                self._tracer.event(
                    "srudp.deliver", trace_id=frame.trace_id, msg=data.msg_id,
                    src=frame.src.host, dst=self.host.name, bytes=data.total_size,
                )
            self._send_ack(frame, data, cumulative=data.nsegs, missing=(), done=True)
        elif data.ack_req:
            cum, missing = state.report()
            self._send_ack(frame, data, cumulative=cum, missing=missing, done=False)

    def _send_ack(self, frame, data: _Data, cumulative: int, missing, done: bool) -> None:
        ack = _Ack(data.msg_id, cumulative, tuple(missing), done)
        body = ACK_BODY_BYTES + ACK_MISS_BYTES * len(ack.missing)
        # ACKs inherit the data frame's trace id: the reverse path is part
        # of the same causal story.
        self._send_frame(
            frame.src.host, data.reply_port, ack, body, trace_id=frame.trace_id
        )


class _RxState:
    """Receiver-side reassembly: which segments of a message have arrived."""

    __slots__ = ("nsegs", "received", "max_seen", "corrupt", "cum")

    def __init__(self, nsegs: int) -> None:
        self.nsegs = nsegs
        self.received: Set[int] = set()
        self.max_seen = -1
        #: True when an undetected-corrupt segment entered the reassembly.
        self.corrupt = False
        #: Lowest segment not yet received, advanced incrementally in
        #: :meth:`add` — re-deriving it per ACK made bulk-message ACK
        #: generation quadratic in message size.
        self.cum = 0

    def add(self, seq: int) -> None:
        received = self.received
        received.add(seq)
        if seq > self.max_seen:
            self.max_seen = seq
        cum = self.cum
        if seq == cum:
            cum += 1
            while cum in received:
                cum += 1
            self.cum = cum

    @property
    def complete(self) -> bool:
        return len(self.received) == self.nsegs

    def report(self) -> Tuple[int, List[int]]:
        """(horizon, missing-below-horizon) for a selective ACK.

        The sender treats every segment below *horizon* that is not in the
        missing list as received. The missing list is capped to keep ACK
        frames small; when it overflows, the horizon is pulled back so no
        unreported hole is ever mistaken for an acknowledgement.
        """
        horizon = self.max_seen + 1
        missing: List[int] = []
        for s in range(self.cum, horizon):
            if s not in self.received:
                missing.append(s)
                if len(missing) >= 256:
                    horizon = s + 1
                    break
        return horizon, missing
