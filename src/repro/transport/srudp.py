"""SRUDP — SNIPE's selective re-send UDP protocol (§6).

The paper's comm module "supported a selective re-send UDP protocol";
this is a full implementation: messages are segmented, a sliding window
of segments streams without per-segment handshaking, receivers report a
cumulative counter plus the exact missing-segment list, and only those
segments are retransmitted. Compared with TCP this saves the connection
handshake, 8 header bytes per frame, and — under loss — the go-back-N
resend storm; that is where the "slightly higher point-to-point
communication performance" of §6.1 comes from.

End-to-end integrity: the sender stamps every data frame with a SHA-256
digest of the message payload (computed once per message via
:func:`repro.security.hashes.content_hash`); the receiver re-verifies on
arrival and a frame whose bytes no longer match — bit flips injected by
a gray link — is counted (``transport.rx_corrupt``), dropped, and left
out of the selective ACK, so the sender simply retransmits it. Corrupt
data is never delivered upward. ``SrudpEndpoint.digest_enabled = False``
(the ``no-digest`` seeded bug) turns verification off; the corruption
oracle then catches the corrupt delivery.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.robust.overload import BULK, LaneStore, RttEstimator, lane_for_request
from repro.sim.errors import Interrupt
from repro.sim.resources import Store
from repro.transport.base import Message, SendError, TransportEndpoint

#: Request an ACK at least every this many data segments.
ACK_EVERY = 16
#: ACK frame body: msg id + cumulative counter + missing-list length.
ACK_BODY_BYTES = 12
#: Extra body bytes per reported missing segment.
ACK_MISS_BYTES = 4


@dataclass
class _Data:
    msg_id: int
    seq: int
    nsegs: int
    total_size: int
    ack_req: bool
    payload: Any  # the message object; delivered once on completion
    reply_port: int
    t0: float = 0.0  # virtual send time, for delivery-latency accounting


@dataclass
class _Ack:
    msg_id: int
    cumulative: int  # next segment the receiver expects (all below arrived)
    missing: Tuple[int, ...]  # gaps between cumulative and highest received
    done: bool


class SrudpEndpoint(TransportEndpoint):
    """Reliable message transport over selective-resend UDP."""

    proto = "srudp"
    header_bytes = 32  # IP 20 + SNIPE reliable-datagram header 12
    #: End-to-end payload digesting (class-level so the ``no-digest``
    #: seeded bug can switch every endpoint off at once).
    digest_enabled = True

    def __init__(
        self,
        host,
        port,
        path_policy: str = "snipe",
        window: int = 64,
        initial_rto: float = 0.05,
        min_rto: float = 0.002,
        max_retries: int = 12,
        rx_capacity: Optional[int] = None,
    ) -> None:
        super().__init__(host, port, path_policy)
        self.window = window
        self.initial_rto = initial_rto
        self.min_rto = min_rto
        self.max_retries = max_retries
        # Bounded two-lane ingress: control messages (fencing, leases,
        # guardian probes) jump the bulk queue; a full bulk lane withholds
        # the final ACK so the sender retransmits — backpressure, never
        # silent loss.
        if rx_capacity is None:
            rx_capacity = self.sim.overload.transport_rx_capacity
        self._rx_queue: LaneStore = LaneStore(self.sim, bulk_capacity=rx_capacity)
        self._ack_routes: Dict[int, Store] = {}  # msg_id -> sender's ack inbox
        self._rx_state: Dict[Tuple[str, int], _RxState] = {}
        self._done: "OrderedDict[Tuple[str, int], bool]" = OrderedDict()
        self.retransmits = 0
        # Per-destination Jacobson RTT estimators (adaptive mode) and the
        # legacy endpoint-wide smoothed RTT (static baseline).
        self._rtt: Dict[str, RttEstimator] = {}
        self._srtt = 0.0
        # Message ids are scoped per endpoint (receivers key reassembly on
        # (src host, src port, msg id)), so a local counter suffices and —
        # unlike a process-global one — keeps same-seed runs identical
        # regardless of what else ran in this process.
        self._next_msg_id = 0

    def _estimator(self, dst_host: str) -> RttEstimator:
        est = self._rtt.get(dst_host)
        if est is None:
            est = self._rtt[dst_host] = RttEstimator(
                initial_rto=self.initial_rto, min_rto=self.min_rto, max_rto=2.0
            )
        return est

    # -- sending ----------------------------------------------------------
    def send(self, dst_host: str, dst_port: int, payload: Any, size: int):
        """Reliably send a message; the returned Process event succeeds on
        full acknowledgement and fails with :class:`SendError` otherwise."""
        # One fresh trace id per message (None when tracing is off),
        # allocated at call time so the caller's ambient span (if any) is
        # recorded as the parent.
        trace_id = self._tracer.maybe_trace_id()
        parent = self._tracer.current_trace_id
        return self.sim.process(
            self._sender(dst_host, dst_port, payload, size, trace_id, parent),
            name=f"srudp-send:{self.host.name}->{dst_host}",
        )

    def _sender(self, dst_host: str, dst_port: int, payload: Any, size: int,
                trace_id: Optional[int], parent: Optional[int] = None):
        self._next_msg_id += 1
        msg_id = self._next_msg_id
        mss = self.max_payload(dst_host)
        nsegs = max(1, -(-size // mss))
        digest = self._message_digest(payload) if self.digest_enabled else None
        acks: Store = Store(self.sim)
        self._ack_routes[msg_id] = acks
        self._note_tx()
        t0 = self.sim.now
        tracer = self._tracer
        if tracer.enabled:
            tracer.event(
                "srudp.send", trace_id=trace_id, msg=msg_id,
                src=self.host.name, dst=dst_host, bytes=size, nsegs=nsegs,
                parent_trace=parent,
            )
        try:
            unacked: Set[int] = set(range(nsegs))
            cumulative = 0
            inflight: Set[int] = set()
            next_new = 0
            retries = 0
            # Adaptive mode: per-destination Jacobson estimator owns the
            # RTO (srtt + 4·rttvar, doubled per timeout). Static mode
            # keeps the legacy endpoint-wide 2.5·srtt with ad-hoc backoff.
            est = self._estimator(dst_host) if self.sim.overload.adaptive else None
            rto = est.rto() if est is not None else self.initial_rto
            pending = None  # outstanding acks.get(); reused across timeouts

            def seg_bytes(seq: int) -> int:
                if size == 0:
                    return 1
                return min(mss, size - seq * mss)

            def push(seq: int, ack_req: bool, retransmit: bool = False) -> bool:
                data = _Data(msg_id, seq, nsegs, size, ack_req, payload, self.port, t0)
                if retransmit and tracer.enabled:
                    tracer.event(
                        "srudp.retransmit", trace_id=trace_id, msg=msg_id, seq=seq
                    )
                return self._send_frame(
                    dst_host, dst_port, data, seg_bytes(seq), trace_id=trace_id,
                    digest=digest,
                )

            while unacked:
                # Fill the window with new segments.
                while next_new < nsegs and len(inflight) < self.window:
                    last_of_burst = (
                        next_new == nsegs - 1
                        or len(inflight) == self.window - 1
                        or (next_new + 1) % ACK_EVERY == 0
                    )
                    if not push(next_new, last_of_burst):
                        break  # unroutable right now; rely on timeout path
                    inflight.add(next_new)
                    next_new += 1
                # Wait for an ACK or a retransmission timeout. The get()
                # event is reused across timeouts so an ACK arriving late
                # is never swallowed by an abandoned waiter.
                sent_at = self.sim.now
                if pending is None:
                    pending = acks.get()
                yield self.sim.any_of([pending, self.sim.timeout(rto)])
                ack = None
                if pending.processed:
                    ack = pending.value
                    pending = None
                if isinstance(ack, _Ack):
                    rtt = self.sim.now - sent_at
                    if est is not None:
                        est.observe(rtt)
                        rto = est.rto()
                    else:
                        self._srtt = (
                            rtt if self._srtt == 0 else 0.875 * self._srtt + 0.125 * rtt
                        )
                        rto = max(self.min_rto, 2.5 * self._srtt)
                    retries = 0
                    if ack.done:
                        self._m_send_latency.observe(self.sim.now - t0)
                        self.paths.note_result(dst_host, True)
                        if tracer.enabled:
                            tracer.event(
                                "srudp.acked", trace_id=trace_id, msg=msg_id
                            )
                        return size
                    cumulative = max(cumulative, ack.cumulative)
                    newly_acked = {
                        s
                        for s in unacked
                        if s < cumulative and s not in ack.missing
                    }
                    unacked -= newly_acked
                    inflight -= newly_acked
                    # Selective retransmission of exactly the holes.
                    missing = [s for s in ack.missing if s in unacked]
                    for i, seq in enumerate(missing):
                        self.retransmits += 1
                        self._note_retransmit()
                        push(seq, ack_req=(i == len(missing) - 1), retransmit=True)
                else:
                    # Timeout: probe with the lowest unacked segment.
                    retries += 1
                    if retries > self.max_retries:
                        self._m_send_errors.inc()
                        self.paths.note_result(dst_host, False)
                        if tracer.enabled:
                            tracer.event(
                                "srudp.failed", trace_id=trace_id, msg=msg_id,
                                outstanding=len(unacked),
                            )
                        raise SendError(
                            f"srudp: {dst_host}:{dst_port} unreachable "
                            f"(msg {msg_id}, {len(unacked)}/{nsegs} outstanding)"
                        )
                    if est is not None:
                        est.backoff()
                        rto = est.rto()
                    else:
                        rto = min(rto * 2, 2.0)
                    if unacked:
                        self.retransmits += 1
                        self._note_retransmit()
                        push(min(unacked), ack_req=True, retransmit=True)
            self._m_send_latency.observe(self.sim.now - t0)
            self.paths.note_result(dst_host, True)
            return size
        finally:
            self._ack_routes.pop(msg_id, None)

    # -- receiving ------------------------------------------------------------
    @staticmethod
    def _message_digest(payload) -> Optional[str]:
        from repro.security.hashes import content_hash

        try:
            return content_hash(payload)
        except Exception:
            return None  # unhashable payload object: send unverified

    def recv(self):
        """Event yielding the next complete :class:`Message`."""
        return self._rx_queue.get()

    def _rx_loop(self):
        try:
            while True:
                frame = yield self.binding.get()
                item = frame.payload
                if isinstance(item, _Ack):
                    if frame.corrupt and self.digest_enabled:
                        # Header checksum failed: treat the ACK as lost;
                        # the sender's timeout path recovers.
                        self._note_rx_corrupt(frame.src.host)
                        continue
                    inbox = self._ack_routes.get(item.msg_id)
                    if inbox is not None:
                        inbox.try_put(item)
                    continue
                self._on_data(frame, item)
        except Interrupt:
            return

    def _on_data(self, frame, data: _Data) -> None:
        if frame.corrupt and self.digest_enabled and frame.digest is not None:
            # Recomputing the digest over the received bytes does not
            # match the sender-stamped header digest: count the corrupt
            # receive, drop the segment, and leave it un-ACKed so the
            # sender retransmits. Corrupt bytes never go upward.
            self._note_rx_corrupt(frame.src.host)
            return
        # Keyed by host identity, not IP: a path failover changes the
        # source address mid-message and must not split the reassembly.
        key = (frame.src.host, frame.src_port, data.msg_id)
        if key in self._done:
            # Sender missed our final ACK; repeat it.
            self._send_ack(frame, data, cumulative=data.nsegs, missing=(), done=True)
            return
        state = self._rx_state.get(key)
        if state is None:
            state = self._rx_state[key] = _RxState(data.nsegs)
        if frame.corrupt:
            # Verification is off (no-digest bug) or the payload was
            # unhashable: the flipped bits go undetected and poison the
            # whole reassembly. The corruption oracle's ground truth.
            state.corrupt = True
        state.add(data.seq)
        if state.complete:
            admitted = self._rx_queue.try_put(
                Message(
                    src_host=frame.src.host,
                    src_ip=frame.src.ip,
                    src_port=frame.src_port,
                    payload=data.payload,
                    size=data.total_size,
                ),
                lane=(
                    lane_for_request(data.payload)
                    if self.sim.overload.lanes
                    else BULK
                ),
            )
            if not admitted:
                # Bulk lane full: withhold the final ACK and keep the
                # reassembly state. The sender times out and retransmits;
                # the message is delivered once the consumer drains.
                self._note_rx_drop()
                return
            del self._rx_state[key]
            self._done[key] = True
            while len(self._done) > 4096:
                self._done.popitem(last=False)
            self._note_rx(sent_at=data.t0)
            if state.corrupt:
                probes = self.sim.probes
                if probes is not None:
                    probes.emit(
                        "srudp.corrupt_deliver", src=frame.src.host,
                        dst=self.host.name, msg=data.msg_id,
                    )
            if self._tracer.enabled:
                self._tracer.event(
                    "srudp.deliver", trace_id=frame.trace_id, msg=data.msg_id,
                    src=frame.src.host, dst=self.host.name, bytes=data.total_size,
                )
            self._send_ack(frame, data, cumulative=data.nsegs, missing=(), done=True)
        elif data.ack_req:
            cum, missing = state.report()
            self._send_ack(frame, data, cumulative=cum, missing=missing, done=False)

    def _send_ack(self, frame, data: _Data, cumulative: int, missing, done: bool) -> None:
        ack = _Ack(data.msg_id, cumulative, tuple(missing), done)
        body = ACK_BODY_BYTES + ACK_MISS_BYTES * len(ack.missing)
        # ACKs inherit the data frame's trace id: the reverse path is part
        # of the same causal story.
        self._send_frame(
            frame.src.host, data.reply_port, ack, body, trace_id=frame.trace_id
        )


class _RxState:
    """Receiver-side reassembly: which segments of a message have arrived."""

    __slots__ = ("nsegs", "received", "max_seen", "corrupt")

    def __init__(self, nsegs: int) -> None:
        self.nsegs = nsegs
        self.received: Set[int] = set()
        self.max_seen = -1
        #: True when an undetected-corrupt segment entered the reassembly.
        self.corrupt = False

    def add(self, seq: int) -> None:
        self.received.add(seq)
        if seq > self.max_seen:
            self.max_seen = seq

    @property
    def complete(self) -> bool:
        return len(self.received) == self.nsegs

    def report(self) -> Tuple[int, List[int]]:
        """(horizon, missing-below-horizon) for a selective ACK.

        The sender treats every segment below *horizon* that is not in the
        missing list as received. The missing list is capped to keep ACK
        frames small; when it overflows, the horizon is pulled back so no
        unreported hole is ever mistaken for an acknowledgement.
        """
        cum = 0
        while cum in self.received:
            cum += 1
        horizon = self.max_seen + 1
        missing: List[int] = []
        for s in range(cum, horizon):
            if s not in self.received:
                missing.append(s)
                if len(missing) >= 256:
                    horizon = s + 1
                    break
        return horizon, missing
