"""SNIPE's communications sub-library (§3, §5.3–5.4, §6).

The paper's comm module supported "a selective re-send UDP protocol as
well as TCP/IP and an experimental multicast protocol for ethernet",
with multi-path route selection ("the fastest of those") and transparent
failover when links die. This package implements all of it as real
protocol state machines over :mod:`repro.net`:

* :class:`DatagramEndpoint` — raw unreliable datagrams (UDP).
* :class:`SrudpEndpoint` — SNIPE's selective-resend UDP: windowed,
  NACK-driven selective retransmission, low header overhead.
* :class:`StreamEndpoint` — TCP: handshake, cumulative ACKs, slow start
  + AIMD congestion control, go-back-N recovery.
* :class:`EthernetMulticast` — the experimental LAN multicast: broadcast
  frames with NACK-based recovery.
* :class:`PathSelector` — §5.3 unicast routing policy: fastest shared
  medium first, then IP routing; re-evaluated when the topology changes.
"""

from repro.transport.base import Message, SendError, TransportEndpoint
from repro.transport.pathsel import PathSelector
from repro.transport.datagram import DatagramEndpoint
from repro.transport.srudp import SrudpEndpoint
from repro.transport.stream import StreamEndpoint
from repro.transport.multicast import EthernetMulticast

__all__ = [
    "DatagramEndpoint",
    "EthernetMulticast",
    "Message",
    "PathSelector",
    "SendError",
    "SrudpEndpoint",
    "StreamEndpoint",
]
