"""TCP-style reliable streams: the conventional transport SNIPE also offers.

Mechanics implemented: three-way handshake per connection, cumulative
ACKs with receiver-side out-of-order buffering, slow start + AIMD
congestion control, fast retransmit on triple duplicate ACKs, and
timeout-based recovery with exponential backoff. Relative to SRUDP this
pays a 40-byte header (vs 32), a handshake round-trip on first contact,
and one-hole-per-RTT loss recovery (no selective ACKs) — the ingredients
of Fig. 1's TCP-vs-SRUDP gap.
"""

from __future__ import annotations

from typing import Any, Dict, Set, Tuple

from repro.sim.events import waker
from repro.sim.resources import Store
from repro.transport.base import Message, SendError, TransportEndpoint

ACK_BODY_BYTES = 12
CTRL_BODY_BYTES = 8

# Wire-path payload records are lean __slots__ classes (one _Seg per
# data frame); connection and message ids come from the simulation's
# sequence counters, never process-global ones.


class _Syn:
    __slots__ = ("conn_id", "reply_port")

    def __init__(self, conn_id: int, reply_port: int) -> None:
        self.conn_id = conn_id
        self.reply_port = reply_port


class _SynAck:
    __slots__ = ("conn_id",)

    def __init__(self, conn_id: int) -> None:
        self.conn_id = conn_id


class _Seg:
    __slots__ = (
        "conn_id", "msg_id", "seq", "nsegs", "total_size", "payload",
        "reply_port", "t0",
    )

    def __init__(self, conn_id: int, msg_id: int, seq: int, nsegs: int,
                 total_size: int, payload: Any, reply_port: int,
                 t0: float = 0.0) -> None:
        self.conn_id = conn_id
        self.msg_id = msg_id
        self.seq = seq
        self.nsegs = nsegs
        self.total_size = total_size
        self.payload = payload
        self.reply_port = reply_port
        self.t0 = t0  # virtual send time, for delivery-latency accounting


class _Ack:
    __slots__ = ("conn_id", "msg_id", "next_needed", "done")

    def __init__(self, conn_id: int, msg_id: int, next_needed: int,
                 done: bool) -> None:
        self.conn_id = conn_id
        self.msg_id = msg_id
        self.next_needed = next_needed
        self.done = done


class _Conn:
    """Client-side connection state toward one (host, port)."""

    def __init__(self, ep: "StreamEndpoint", dst_host: str, dst_port: int) -> None:
        self.ep = ep
        self.conn_id = ep.sim.sequence("tcp.conn")
        self.dst_host = dst_host
        self.dst_port = dst_port
        self.established = False
        self.dead = False
        self.outbox: Store = Store(ep.sim)
        self.signals: Store = Store(ep.sim)  # _SynAck and _Ack frames
        self.cwnd = 2.0
        self.ssthresh = float(ep.max_window)
        self.srtt = 0.0
        self.rto = ep.initial_rto
        self.proc = ep.sim.process(
            self._run(), name=f"tcp-conn:{ep.host.name}->{dst_host}:{dst_port}"
        )

    # -- sender machinery ---------------------------------------------------
    def _run(self):
        ep = self.ep
        sim = ep.sim
        # Three-way handshake (the third ACK rides on the first data segment).
        pending = None
        owner = f"tcp-conn:{ep.host.name}"
        for _attempt in range(ep.max_retries):
            ep._send_frame(
                self.dst_host, self.dst_port, _Syn(self.conn_id, ep.port), CTRL_BODY_BYTES
            )
            if pending is None:
                pending = self.signals.get()
            wake = sim.event()
            fire = waker(wake)
            pending.add_callback(fire)
            timer = sim.schedule_timer(self.rto, fire, owner=owner)
            yield wake
            timer.cancel()
            if pending.processed:
                item = pending.value
                pending = None
                if isinstance(item, _SynAck):
                    self.established = True
                    break
            self.rto = min(self.rto * 2, 2.0)
        if not self.established:
            self.dead = True
            # Fail anything already queued.
            while True:
                ok, item = self.outbox.try_get()
                if not ok:
                    return
                item[3].fail(SendError(f"tcp: connect to {self.dst_host} failed"))
        self.rto = ep.initial_rto
        while True:
            payload, size, mss, done_ev, t0, trace_id = yield self.outbox.get()
            try:
                yield from self._send_message(payload, size, mss, t0, trace_id)
            except SendError as exc:
                ep._m_send_errors.inc()
                if ep._tracer.enabled:
                    ep._tracer.event("tcp.failed", trace_id=trace_id,
                                     dst=self.dst_host)
                self.dead = True
                done_ev.fail(exc)
                return
            ep._m_send_latency.observe(sim.now - t0)
            done_ev.succeed(size)

    def _send_message(self, payload: Any, size: int, mss: int,
                      t0: float, trace_id: int):
        ep = self.ep
        sim = ep.sim
        tracer = ep._tracer
        msg_id = sim.sequence("tcp.msg")
        nsegs = max(1, -(-size // mss))
        base = 0
        next_i = 0
        dupacks = 0
        last_ack = -1
        retries = 0
        pending = None

        def seg_bytes(seq: int) -> int:
            if size == 0:
                return 1
            return min(mss, size - seq * mss)

        if tracer.enabled:
            tracer.event(
                "tcp.send", trace_id=trace_id, msg=msg_id, conn=self.conn_id,
                src=ep.host.name, dst=self.dst_host, bytes=size, nsegs=nsegs,
            )

        def push(seq: int, retransmit: bool = False) -> None:
            if retransmit and tracer.enabled:
                tracer.event("tcp.retransmit", trace_id=trace_id, msg=msg_id, seq=seq)
            ep._send_frame(
                self.dst_host,
                self.dst_port,
                _Seg(self.conn_id, msg_id, seq, nsegs, size, payload, ep.port, t0),
                seg_bytes(seq),
                trace_id=trace_id,
            )

        while base < nsegs:
            while next_i < nsegs and next_i < base + int(self.cwnd):
                push(next_i)
                next_i += 1
            sent_at = sim.now
            if pending is None:
                pending = self.signals.get()
            wake = sim.event()
            fire = waker(wake)
            pending.add_callback(fire)
            timer = sim.schedule_timer(
                self.rto, fire, owner=f"tcp-conn:{ep.host.name}"
            )
            yield wake
            timer.cancel()
            ack = None
            if pending.processed:
                ack = pending.value
                pending = None
            if isinstance(ack, _Ack) and ack.msg_id == msg_id:
                retries = 0
                rtt = sim.now - sent_at
                self.srtt = rtt if self.srtt == 0 else 0.875 * self.srtt + 0.125 * rtt
                self.rto = max(ep.min_rto, 2.5 * self.srtt)
                if ack.done or ack.next_needed >= nsegs:
                    if tracer.enabled:
                        tracer.event("tcp.acked", trace_id=trace_id, msg=msg_id)
                    return
                if ack.next_needed > base:
                    advanced = ack.next_needed - base
                    base = ack.next_needed
                    dupacks = 0
                    last_ack = ack.next_needed
                    # Slow start doubles per RTT; congestion avoidance adds
                    # one segment per RTT's worth of ACKs.
                    if self.cwnd < self.ssthresh:
                        self.cwnd += advanced
                    else:
                        self.cwnd += advanced / self.cwnd
                    self.cwnd = min(self.cwnd, float(ep.max_window))
                elif ack.next_needed == last_ack:
                    dupacks += 1
                    if dupacks == 3:
                        # Fast retransmit + multiplicative decrease.
                        ep.fast_retransmits += 1
                        ep._m_fast_retransmits.inc()
                        ep._note_retransmit()
                        self.ssthresh = max(2.0, self.cwnd / 2)
                        self.cwnd = self.ssthresh
                        push(base, retransmit=True)
                        dupacks = 0
                else:
                    last_ack = ack.next_needed
                    dupacks = 1
            elif ack is None:
                retries += 1
                if retries > ep.max_retries:
                    raise SendError(
                        f"tcp: {self.dst_host}:{self.dst_port} unreachable "
                        f"(msg {msg_id}, {base}/{nsegs} acked)"
                    )
                ep.timeouts += 1
                ep._m_timeouts.inc()
                ep._note_retransmit()
                if tracer.enabled:
                    tracer.event("tcp.timeout", trace_id=trace_id, msg=msg_id,
                                 base=base)
                self.ssthresh = max(2.0, self.cwnd / 2)
                self.cwnd = 2.0
                self.rto = min(self.rto * 2, 2.0)
                next_i = base  # go-back: resend the window from base
            # Stale ACKs from a previous message are simply skipped.


class _RxConn:
    """Server-side per-connection receive state."""

    __slots__ = ("reply_port", "msgs")

    def __init__(self, reply_port: int) -> None:
        self.reply_port = reply_port
        # msg_id -> (received set, delivered?)
        self.msgs: Dict[int, Tuple[Set[int], bool]] = {}


class StreamEndpoint(TransportEndpoint):
    """Message passing over TCP-like connections (lazily established)."""

    proto = "tcp"
    header_bytes = 40  # IP 20 + TCP 20

    def __init__(
        self,
        host,
        port,
        path_policy: str = "snipe",
        max_window: int = 64,
        initial_rto: float = 0.05,
        min_rto: float = 0.002,
        max_retries: int = 12,
    ) -> None:
        super().__init__(host, port, path_policy)
        self.max_window = max_window
        self.initial_rto = initial_rto
        self.min_rto = min_rto
        self.max_retries = max_retries
        self._rx_queue: Store = Store(self.sim)
        self._conns: Dict[Tuple[str, int], _Conn] = {}
        self._rx_conns: Dict[Tuple[str, int], _RxConn] = {}
        self.fast_retransmits = 0
        self.timeouts = 0
        self._m_fast_retransmits = self.sim.obs.metrics.counter(
            "transport.fast_retransmits", proto=self.proto
        )
        self._m_timeouts = self.sim.obs.metrics.counter(
            "transport.timeouts", proto=self.proto
        )

    # -- sending ----------------------------------------------------------
    def send(self, dst_host: str, dst_port: int, payload: Any, size: int):
        """Queue a message on the (possibly new) connection; returns an
        event that succeeds when the whole message is acknowledged."""
        self._note_tx()
        key = (dst_host, dst_port)
        conn = self._conns.get(key)
        if conn is None or conn.dead:
            conn = self._conns[key] = _Conn(self, dst_host, dst_port)
        done = self.sim.event()
        mss = self.max_payload(dst_host)
        # Latency is charged from enqueue: connection queueing is part of
        # what the application experiences.
        conn.outbox.try_put(
            (payload, size, mss, done, self.sim.now, self._tracer.maybe_trace_id())
        )
        return done

    def connect(self, dst_host: str, dst_port: int) -> None:
        """Pre-establish the connection (optional; send() does it lazily)."""
        key = (dst_host, dst_port)
        if key not in self._conns or self._conns[key].dead:
            self._conns[key] = _Conn(self, dst_host, dst_port)

    # -- receiving ------------------------------------------------------------
    def recv(self):
        """Event yielding the next complete in-order :class:`Message`."""
        return self._rx_queue.get()

    def _on_frame(self, frame) -> None:
        item = frame.payload
        if isinstance(item, _Syn):
            self._rx_conns.setdefault(
                (frame.src.host, item.conn_id), _RxConn(item.reply_port)
            )
            self._send_frame(
                frame.src.host, item.reply_port, _SynAck(item.conn_id), CTRL_BODY_BYTES
            )
        elif isinstance(item, (_SynAck, _Ack)):
            # Route to the owning client connection.
            for conn in self._conns.values():
                if conn.conn_id == item.conn_id:
                    conn.signals.try_put(item)
                    break
        elif isinstance(item, _Seg):
            self._on_data(frame, item)

    def _on_data(self, frame, seg: _Seg) -> None:
        # Host-keyed (not IP): survives source-interface failover.
        key = (frame.src.host, seg.conn_id)
        rxc = self._rx_conns.get(key)
        if rxc is None:
            # Data before SYN (reordered handshake): accept implicitly.
            rxc = self._rx_conns[key] = _RxConn(seg.reply_port)
        received, delivered = rxc.msgs.get(seg.msg_id, (set(), False))
        if delivered:
            self._send_frame(
                frame.src.host,
                rxc.reply_port,
                _Ack(seg.conn_id, seg.msg_id, seg.nsegs, True),
                ACK_BODY_BYTES,
                trace_id=frame.trace_id,
            )
            return
        received.add(seg.seq)
        next_needed = 0
        while next_needed in received:
            next_needed += 1
        done = next_needed >= seg.nsegs
        rxc.msgs[seg.msg_id] = (received, done)
        if done:
            self._note_rx(sent_at=seg.t0)
            if self._tracer.enabled:
                self._tracer.event(
                    "tcp.deliver", trace_id=frame.trace_id, msg=seg.msg_id,
                    src=frame.src.host, dst=self.host.name, bytes=seg.total_size,
                )
            self._rx_queue.try_put(
                Message(
                    src_host=frame.src.host,
                    src_ip=frame.src.ip,
                    src_port=frame.src_port,
                    payload=seg.payload,
                    size=seg.total_size,
                )
            )
            # Keep only the delivered flag; drop the segment set.
            rxc.msgs[seg.msg_id] = (set(), True)
        self._send_frame(
            frame.src.host,
            rxc.reply_port,
            _Ack(seg.conn_id, seg.msg_id, next_needed, done),
            ACK_BODY_BYTES,
            trace_id=frame.trace_id,
        )
