"""LIFNs: Location-Independent File Names (§5.2, ref [13]).

A LIFN names *content*; its RC metadata binds it to the set of concrete
locations (URLs) currently holding a replica, plus an optional content
hash for end-to-end integrity (§2.1). File servers add/remove bindings as
they create and delete replicas; clients resolve a LIFN and pick a
location — the "location of closest resource" policy of §6 is a
preference for locations on the client's own host, then same-segment
hosts, then anything.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.rcds import uri as uri_mod
from repro.rcds.client import QUORUM, RCClient

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host

_LOC_PREFIX = "location:"


class LifnRegistry:
    """LIFN → locations bookkeeping on top of an :class:`RCClient`."""

    def __init__(self, rc: RCClient, consistency: str = QUORUM) -> None:
        self.rc = rc
        self.sim = rc.sim
        self.host: "Host" = rc.host
        # QUORUM by default: bind-then-resolve must read its own writes
        # even before anti-entropy has run.
        self.consistency = consistency

    def bind(self, lifn: str, location_url: str, content_hash: Optional[str] = None,
             consistency: Optional[str] = None):
        """Register a replica location (process; yield it)."""
        assertions = {_LOC_PREFIX + location_url: True}
        if content_hash is not None:
            assertions["content-hash"] = content_hash
        return self.rc.update(
            uri_mod.lifn_name(lifn), assertions, consistency or self.consistency
        )

    def unbind(self, lifn: str, location_url: str):
        return self.rc.delete(
            uri_mod.lifn_name(lifn), [_LOC_PREFIX + location_url], self.consistency
        )

    def locations(self, lifn: str):
        """All current replica locations (process yielding list of URLs)."""
        return self.sim.process(self._locations(lifn), name=f"lifn.locations:{lifn}")

    def _locations(self, lifn: str) -> List[str]:
        assertions = yield self.rc.lookup(uri_mod.lifn_name(lifn), self.consistency)
        return sorted(
            key[len(_LOC_PREFIX):]
            for key, info in assertions.items()
            if key.startswith(_LOC_PREFIX) and info["value"]
        )

    def content_hash(self, lifn: str):
        return self.rc.get(uri_mod.lifn_name(lifn), "content-hash", self.consistency)

    def closest_location(self, lifn: str):
        """Pick the best replica: local host, then same segment, then any."""
        return self.sim.process(self._closest(lifn), name=f"lifn.closest:{lifn}")

    def _closest(self, lifn: str) -> Optional[str]:
        locations = yield from self._locations(lifn)
        if not locations:
            return None
        topo = self.host.topology

        def rank(url: str) -> int:
            h = uri_mod.host_of(url)
            if h == self.host.name:
                return 0
            if h is not None and h in topo.hosts:
                if topo.shared_segments(self.host.name, h):
                    return 1
                return 2
            return 3

        return min(locations, key=lambda u: (rank(u), u))
