"""The epoch-numbered shard map and the prefix router.

A shard owns a set of literal URI prefixes; the *root* shard owns the
empty prefix, so every name has an owner. Routing is longest-prefix
match: of all shard prefixes that prefix a name, the longest wins.
Because any two prefixes of the same string are nested, the matching
prefixes always form a chain — uniqueness of the longest match is
structural, not a tiebreak (the Hypothesis suite pins this).

The map is immutable and versioned by a monotonically increasing
*epoch*. Every change — a split, a replica-set change — produces a new
map at ``epoch + 1``, published to the root replica group under
:data:`MAP_URI` and pushed to the affected shard servers. Splits are
*monotone*: a child shard's prefixes strictly extend one of its
parent's prefixes, so a name only ever moves to a child of its former
shard — never sideways. That invariant is what lets the check oracles
scope convergence per shard and reason about split boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Catalog name the serialized map is published under (owned by root).
MAP_URI = "snipe://shard/map"

#: Assertion key holding the serialized map.
MAP_KEY = "map"

#: Shard id of the root directory shard (owns the empty prefix).
ROOT_SID = "root"


@dataclass(frozen=True)
class ShardInfo:
    """One shard: its owned prefixes and its replica group."""

    sid: str
    prefixes: Tuple[str, ...]
    replicas: Tuple[Tuple[str, int], ...]
    #: Shard this one was split out of (None for root / initial shards).
    parent: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "prefixes": list(self.prefixes),
            "replicas": [list(r) for r in self.replicas],
            "parent": self.parent,
        }


class ShardMap:
    """Immutable prefix → shard assignment at one epoch."""

    def __init__(self, epoch: int, shards: Iterable[ShardInfo]) -> None:
        self.epoch = epoch
        self.shards: Dict[str, ShardInfo] = {s.sid: s for s in shards}
        seen: Dict[str, str] = {}
        for info in self.shards.values():
            for p in info.prefixes:
                if p in seen:
                    raise ValueError(
                        f"prefix {p!r} owned by both {seen[p]!r} and {info.sid!r}")
                seen[p] = info.sid
        if ROOT_SID not in self.shards or "" not in self.shards[ROOT_SID].prefixes:
            raise ValueError("shard map needs a root shard owning the empty prefix")

    @classmethod
    def initial(cls, root_replicas: Sequence[Tuple[str, int]]) -> "ShardMap":
        """Epoch-0 map: the root group owns everything (the un-sharded
        catalog, as a degenerate one-shard federation)."""
        return cls(0, [ShardInfo(ROOT_SID, ("",),
                                 tuple(tuple(r) for r in root_replicas))])

    # -- routing ------------------------------------------------------------
    def route(self, uri: str) -> str:
        """Shard id owning *uri*: the longest matching prefix wins."""
        best_sid, best_len = ROOT_SID, -1
        for sid, info in self.shards.items():
            for p in info.prefixes:
                if len(p) > best_len and uri.startswith(p):
                    best_sid, best_len = sid, len(p)
        return best_sid

    def owner(self, uri: str) -> ShardInfo:
        return self.shards[self.route(uri)]

    def shards_for_prefix(self, prefix: str) -> List[ShardInfo]:
        """Shards whose ownership can intersect a prefix query — the
        scatter set. A shard qualifies if one of its prefixes extends the
        query prefix or vice versa."""
        out = []
        for info in self.shards.values():
            if any(p.startswith(prefix) or prefix.startswith(p)
                   for p in info.prefixes):
                out.append(info)
        return sorted(out, key=lambda s: s.sid)

    # -- evolution (each returns a new map at epoch + 1) --------------------
    def with_split(self, sid: str,
                   children: Sequence[Tuple[str, Tuple[str, ...],
                                            Sequence[Tuple[str, int]]]]) -> "ShardMap":
        """Split *sid*: add child shards whose prefixes strictly extend
        the parent's. The parent keeps its own prefixes (it remains the
        residual owner of names the children's prefixes don't cover)."""
        parent = self.shards[sid]
        for child_sid, prefixes, _ in children:
            if child_sid in self.shards:
                raise ValueError(f"shard id {child_sid!r} already in map")
            for p in prefixes:
                if not any(p.startswith(pp) and p != pp for pp in parent.prefixes):
                    raise ValueError(
                        f"child prefix {p!r} does not extend a prefix of {sid!r}")
        shards = list(self.shards.values())
        shards += [ShardInfo(child_sid, tuple(prefixes),
                             tuple(tuple(r) for r in replicas), parent=sid)
                   for child_sid, prefixes, replicas in children]
        return ShardMap(self.epoch + 1, shards)

    def with_shard(self, sid: str, prefixes: Sequence[str],
                   replicas: Sequence[Tuple[str, int]],
                   parent: Optional[str] = None) -> "ShardMap":
        """Add a pre-planned shard (initial namespace carve-out)."""
        shards = list(self.shards.values())
        shards.append(ShardInfo(sid, tuple(prefixes),
                                tuple(tuple(r) for r in replicas), parent=parent))
        return ShardMap(self.epoch + 1, shards)

    def with_replicas(self, sid: str,
                      replicas: Sequence[Tuple[str, int]]) -> "ShardMap":
        """Replace a shard's replica group (demand-driven widening)."""
        info = self.shards[sid]
        shards = [s for s in self.shards.values() if s.sid != sid]
        shards.append(ShardInfo(info.sid, info.prefixes,
                                tuple(tuple(r) for r in replicas), info.parent))
        return ShardMap(self.epoch + 1, shards)

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"epoch": self.epoch,
                "shards": {sid: info.to_dict()
                           for sid, info in sorted(self.shards.items())}}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ShardMap":
        shards = [
            ShardInfo(sid, tuple(info["prefixes"]),
                      tuple(tuple(r) for r in info["replicas"]),
                      info.get("parent"))
            for sid, info in d["shards"].items()
        ]
        return cls(int(d["epoch"]), shards)


def plan_split(prefix: str, names: Sequence[str],
               fanout: int = 2) -> List[Tuple[str, ...]]:
    """Deterministic split plan for the names under one owned prefix.

    Walks the radix structure of the (sorted) names: first extends
    *prefix* along the common path (so ``urn:snipe:proc:w-`` splits at
    the character that actually varies, not at ``u``), then buckets the
    branching characters into at most *fanout* contiguous, count-
    balanced groups. Each returned group is a tuple of literal child
    prefixes — all strictly extending *prefix*, which is the monotone-
    split invariant the router properties pin. Returns ``[]`` when the
    names cannot be split (fewer than two branches)."""
    candidates = sorted(n for n in set(names)
                        if n.startswith(prefix) and len(n) > len(prefix))
    if len(candidates) < 2:
        return []
    # Extend along the common path until the names branch.
    base = candidates[0]
    for n in candidates[1:]:
        limit = min(len(base), len(n))
        i = 0
        while i < limit and base[i] == n[i]:
            i += 1
        base = base[:i]
    # Names equal to the common path itself stay with the parent residual.
    branching = [n for n in candidates if len(n) > len(base)]
    counts: Dict[str, int] = {}
    for n in branching:
        ch = n[len(base)]
        counts[ch] = counts.get(ch, 0) + 1
    chars = sorted(counts)
    if len(chars) < 2:
        return []
    fanout = max(1, min(fanout, len(chars)))
    target = len(branching) / fanout
    groups: List[Tuple[str, ...]] = []
    current: List[str] = []
    acc = 0
    remaining = len(chars)
    for ch in chars:
        current.append(base + ch)
        acc += counts[ch]
        remaining -= 1
        # Close the bucket once it reaches its share — but never strand
        # more chars than there are buckets left to hold them.
        if (acc >= target and len(groups) < fanout - 1) or remaining == 0:
            groups.append(tuple(current))
            current, acc = [], 0
        elif remaining <= (fanout - 1 - len(groups)):
            groups.append(tuple(current))
            current, acc = [], 0
    if current:
        groups.append(tuple(current))
    return groups
