"""The shard director: map publication, splits, and hot-shard widening.

One :class:`ShardManager` owns the authoritative map for a site. Its
control loop (a sim process anchored on a core host) watches every
shard group's size and lookup demand:

* **Split** — when a shard's live-name count crosses
  ``split_threshold``, the director samples the names under the
  heaviest owned prefix, plans deterministic child prefixes
  (:func:`~repro.rcds.shard.map.plan_split`), creates the child replica
  groups on the least-loaded placement hosts, and publishes the map at
  ``epoch + 1``. Data movement is *not* the director's job: each parent
  replica's janitor hands its misplaced names off to the children once
  it adopts the new epoch, so a partitioned replica that misses the
  push simply migrates later — no coordinator stall.

* **Widen** — when a shard's served-lookup rate crosses
  ``widen_lookup_rate`` (the Globus replica-selection move: replicate
  what is hot), the director adds a replica on a fresh host and
  publishes the widened group; the new replica catches up through the
  existing anti-entropy/snapshot machinery, and clients fan over it as
  soon as they see the new epoch.

Publication order is safety-first: the serialized map is written to the
root directory group at QUORUM *before* the new config is pushed to the
affected shard servers, so by the time any server starts fencing on the
new epoch, a redirected client can already read the map that resolves
the redirect. A failed publication leaves ``published_epoch`` behind
``map.epoch`` and is retried every control tick.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.rcds.client import QUORUM, ConsistencyError, RCClient
from repro.rcds.shard.map import MAP_KEY, MAP_URI, ROOT_SID, ShardMap, plan_split
from repro.rcds.shard.server import ShardRCServer
from repro.robust import TIMEOUTS
from repro.robust.overload import CONTROL
from repro.rpc import RpcClient, RpcError
from repro.sim.errors import Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host


class ShardManager:
    """Creates shard replica groups and drives the map's evolution."""

    def __init__(
        self,
        sim,
        hosts: Dict[str, "Host"],
        root_replicas: Sequence[Tuple[str, int]],
        secret: Optional[bytes] = None,
        director_host: Optional[str] = None,
        placement_hosts: Optional[Sequence[str]] = None,
        replicas_per_shard: int = 3,
        split_threshold: Optional[int] = None,
        split_fanout: int = 2,
        split_sample: int = 512,
        split_cooldown: float = 15.0,
        widen_lookup_rate: Optional[float] = None,
        widen_max_replicas: int = 5,
        check_interval: float = 1.0,
        port_base: int = 1400,
        server_kw: Optional[Dict] = None,
    ) -> None:
        self.sim = sim
        self.hosts = hosts
        self.secret = secret
        self.root_replicas = [tuple(r) for r in root_replicas]
        self.placement_hosts = list(placement_hosts
                                    or sorted(h for h, _ in self.root_replicas))
        self.replicas_per_shard = replicas_per_shard
        self.split_threshold = split_threshold
        self.split_fanout = split_fanout
        self.split_sample = split_sample
        self.split_cooldown = split_cooldown
        self._split_after: Dict[str, float] = {}
        self.widen_lookup_rate = widen_lookup_rate
        self.widen_max_replicas = widen_max_replicas
        self.check_interval = check_interval
        self.server_kw = dict(server_kw or {})
        self.map = ShardMap.initial(self.root_replicas)
        self.published_epoch = 0
        self.splits = 0
        self.widenings = 0
        #: sid -> {server_id: ShardRCServer}, every group this manager
        #: created (root servers are registered by the environment).
        self.servers: Dict[str, Dict[str, ShardRCServer]] = {}
        self._next_port = port_base
        self._lookup_marks: Dict[str, Tuple[float, int]] = {}
        director = director_host or self.root_replicas[0][0]
        self._host = hosts[director]
        self._rc: Optional[RCClient] = None
        self._rpc: Optional[RpcClient] = None
        self._proc = None
        obs = sim.obs
        self._g_shard_count = obs.metrics.gauge("rcds.shard_count")
        self._m_splits = obs.metrics.counter("rcds.shard_splits")
        self._m_widenings = obs.metrics.counter("rcds.shard_widenings")
        self._g_records: Dict[str, object] = {}

    # -- group construction -------------------------------------------------
    def register_root(self, servers: Dict[str, ShardRCServer]) -> None:
        """Adopt the root directory group (created by the environment so
        existing boot order is preserved) and seed its map."""
        self.servers[ROOT_SID] = dict(servers)
        for server in servers.values():
            server.adopt_map(self.map)

    def add_shard(self, sid: str, prefixes: Sequence[str],
                  host_names: Optional[Sequence[str]] = None) -> List[ShardRCServer]:
        """Carve an initial shard out of the namespace (pre-traffic):
        create its replica group and push the new map to every server
        directly — nothing to migrate yet, no races to respect."""
        names = list(host_names or self._place(self.replicas_per_shard, set()))
        port = self._alloc_port()
        replicas = tuple((h, port) for h in names)
        self.map = self.map.with_shard(sid, prefixes, replicas, parent=ROOT_SID)
        group = self._make_group(sid, prefixes, replicas)
        self._adopt_everywhere()
        return list(group.values())

    def _make_group(self, sid: str, prefixes: Sequence[str],
                    replicas: Sequence[Tuple[str, int]]) -> Dict[str, ShardRCServer]:
        group: Dict[str, ShardRCServer] = {}
        for hname, port in replicas:
            server = ShardRCServer(
                self.hosts[hname], sid, prefixes,
                root_replicas=self.root_replicas,
                port=port, peers=[tuple(r) for r in replicas],
                secret=self.secret, **self.server_kw)
            group[server.store.server_id] = server
        self.servers[sid] = group
        return group

    def _alloc_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        return port

    def _place(self, n: int, exclude: set) -> List[str]:
        """Least-loaded live placement hosts, deterministic tiebreak."""
        load: Dict[str, int] = {h: 0 for h in self.placement_hosts}
        for group in self.servers.values():
            for server in group.values():
                if server.host.name in load:
                    load[server.host.name] += 1
        candidates = [h for h in self.placement_hosts
                      if h not in exclude and self.hosts[h].up]
        candidates.sort(key=lambda h: (load[h], h))
        return candidates[:n]

    def _adopt_everywhere(self) -> None:
        for group in self.servers.values():
            for server in group.values():
                server.adopt_map(self.map)
        self.published_epoch = self.map.epoch

    # -- control loop -------------------------------------------------------
    def start(self) -> None:
        if self._proc is None:
            self._rc = RCClient(self._host, self.root_replicas, secret=self.secret)
            self._rpc = RpcClient(self._host, secret=self.secret)
            self._proc = self.sim.process(self._control_loop(),
                                          name="shard-director")

    def seed_map(self):
        """Write the current map into the root catalog (call once after
        initial shards exist, before traffic starts)."""
        return self.sim.process(self._publish([]), name="shard-seed-map")

    def _control_loop(self):
        rng = self.sim.rng.stream("shard.director")
        try:
            while True:
                yield self.sim.timer_event(
                    self.check_interval * (0.75 + 0.5 * rng.random()),
                    owner="shard-director")
                if not self._host.up:
                    continue
                self._set_gauges()
                if self.published_epoch < self.map.epoch:
                    yield from self._publish(self._changed_sids())
                    continue  # re-observe before changing the map again
                if self.split_threshold is not None:
                    if (yield from self._maybe_split()):
                        continue
                if self.widen_lookup_rate is not None:
                    yield from self._maybe_widen()
        except Interrupt:
            return

    def _set_gauges(self) -> None:
        self._g_shard_count.set(len(self.map.shards))
        for sid, group in self.servers.items():
            size = max((s.store.live_uri_count() for s in group.values()),
                       default=0)
            gauge = self._g_records.get(sid)
            if gauge is None:
                gauge = self._g_records[sid] = self.sim.obs.metrics.gauge(
                    "rcds.shard_records", shard=sid)
            gauge.set(size)

    def _shard_size(self, sid: str) -> int:
        group = self.servers.get(sid, {})
        return max((s.store.live_uri_count() for s in group.values()), default=0)

    def _changed_sids(self) -> List[str]:
        """Groups whose servers must hear about an unpublished map: any
        group whose replica set or prefix ownership differs from what
        its servers were last told. Cheap over-approximation: all."""
        return list(self.servers)

    # -- split --------------------------------------------------------------
    def _maybe_split(self):
        for sid in sorted(self.servers):
            if sid == ROOT_SID:
                continue  # the directory shard never splits
            if self.sim.now < self._split_after.get(sid, 0.0):
                continue  # handoff from the last split still draining
            if self._shard_size(sid) < self.split_threshold:
                continue
            if (yield from self._split(sid)):
                return True
        return False

    def _split(self, sid: str):
        """Plan and publish one split. Name sampling reads the biggest
        replica directly — the director is control plane; what must ride
        RPCs (map publication, config push) does."""
        group = self.servers.get(sid)
        if not group:
            return False
        biggest = max(group.values(), key=lambda s: s.store.live_uri_count())
        info = self.map.shards[sid]
        prefix = max(info.prefixes,
                     key=lambda p: len(biggest.store.query(p, limit=self.split_sample)))
        # Plan only over names the *current map* still routes here. The
        # store also holds records a previous split already gave away
        # (handoff still draining); planning over those would mint child
        # prefixes that collide with the earlier split's children. The
        # sample strides the whole owned block rather than taking the
        # sorted-first page — a head page sees only the lexicographically
        # smallest branch and the plan would strand every later branch on
        # the parent. (A branch rarer than pool/sample can still be
        # missed; it just stays with the parent for a later pass.)
        pool = [n for n in biggest.store.query(prefix)
                if self.map.route(n) == sid]
        step = max(1, -(-len(pool) // self.split_sample))
        names = pool[::step][:self.split_sample]
        groups = plan_split(prefix, names, fanout=self.split_fanout)
        if not groups:
            return False
        children = []
        for i, child_prefixes in enumerate(groups):
            port = self._alloc_port()
            hosts = self._place(self.replicas_per_shard, set())
            if not hosts:
                return False
            replicas = tuple((h, port) for h in hosts)
            children.append((f"{sid}.{self.splits}{chr(ord('a') + i)}",
                             child_prefixes, replicas))
        new_map = self.map.with_split(sid, children)
        for child_sid, child_prefixes, replicas in children:
            self._make_group(child_sid, child_prefixes, replicas)
        self.map = new_map
        self.splits += 1
        self._m_splits.inc()
        # Cooldown covers the parent (its count only drops once handoff
        # drains) and the children (their counts are still filling).
        until = self.sim.now + self.split_cooldown
        self._split_after[sid] = until
        for child_sid, _, _ in children:
            self._split_after[child_sid] = until
        if self.sim.probes is not None:
            self.sim.probes.emit("shard.split", sid=sid,
                                 children=[c[0] for c in children],
                                 epoch=new_map.epoch)
        yield from self._publish([sid] + [c[0] for c in children])
        return True

    # -- widening -----------------------------------------------------------
    def _maybe_widen(self):
        now = self.sim.now
        for sid in sorted(self.servers):
            group = self.servers[sid]
            served = sum(s.lookups_served for s in group.values())
            last_t, last_n = self._lookup_marks.get(sid, (now, served))
            self._lookup_marks[sid] = (now, served)
            dt = now - last_t
            if dt <= 0:
                continue
            rate = (served - last_n) / dt
            info = self.map.shards[sid]
            if (rate < self.widen_lookup_rate
                    or len(info.replicas) >= self.widen_max_replicas):
                continue
            used = {h for h, _ in info.replicas}
            hosts = self._place(1, used)
            if not hosts:
                continue
            port = info.replicas[0][1]
            replicas = tuple(info.replicas) + ((hosts[0], port),)
            server = ShardRCServer(
                self.hosts[hosts[0]], sid, info.prefixes,
                root_replicas=self.root_replicas,
                port=port, peers=[tuple(r) for r in replicas],
                secret=self.secret, **self.server_kw)
            self.servers[sid][server.store.server_id] = server
            self.map = self.map.with_replicas(sid, replicas)
            self.widenings += 1
            self._m_widenings.inc()
            if self.sim.probes is not None:
                self.sim.probes.emit("shard.widen", sid=sid, host=hosts[0],
                                     replicas=len(replicas),
                                     epoch=self.map.epoch)
            yield from self._publish([sid])

    # -- publication --------------------------------------------------------
    def _publish(self, sids: Sequence[str]):
        """Map to the root catalog first (QUORUM), then config pushes to
        the affected groups. Any failure leaves ``published_epoch``
        behind and the control loop retries next tick; servers that miss
        the push converge through their periodic map refresh."""
        try:
            yield self._rc.update(MAP_URI, {MAP_KEY: self.map.to_dict()},
                                  consistency=QUORUM, lane=CONTROL)
        except ConsistencyError:
            return
        if self.sim.probes is not None:
            self.sim.probes.emit("shard.map", epoch=self.map.epoch,
                                 shards=sorted(self.map.shards))
        payload = self.map.to_dict()
        for sid in sids:
            for server in self.servers.get(sid, {}).values():
                try:
                    yield self._rpc.call(
                        server.host.name, server.port, "rc.shard_config",
                        timeout=TIMEOUTS["rc.call"], lane=CONTROL, map=payload)
                except RpcError:
                    continue
        self.published_epoch = self.map.epoch

    # -- teardown -----------------------------------------------------------
    def all_servers(self) -> Dict[str, ShardRCServer]:
        """Every shard server (root excluded — the environment owns those),
        keyed by server id."""
        out: Dict[str, ShardRCServer] = {}
        for sid, group in self.servers.items():
            if sid == ROOT_SID:
                continue
            out.update(group)
        return out

    def close(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("closed")
        if self._rc is not None:
            self._rc.close()
        if self._rpc is not None:
            self._rpc.close()
        for sid, group in self.servers.items():
            if sid == ROOT_SID:
                continue  # environment-owned
            for server in group.values():
                server.close()
