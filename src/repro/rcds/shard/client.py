"""The sharded catalog facade — drop-in for :class:`RCClient`.

Callers keep the exact RCClient API (lookup/update/delete/query/get/
set/stats, consistency levels, lanes); underneath, every operation is
routed by the cached shard map to an :class:`RCClient` over the owning
shard's replica group. The map is fetched from the root directory group
(QUORUM when possible), cached for ``map_ttl`` seconds, and refreshed
early whenever an operation fails against a whole group — the signature
of an epoch-fenced redirect. If the refreshed map carries a newer
epoch, the operation re-routes and retries; if the epoch did not move,
the group is genuinely unreachable and the failure surfaces unchanged.

Cross-shard prefix queries scatter to every shard whose ownership can
intersect the prefix, page each shard with ``after``/``limit`` cursors
(no unbounded responses), and merge the sorted streams. Before any map
is published — or when the root group is unreachable at first use —
the facade degrades to the epoch-0 map where the root group owns
everything, i.e. exactly the un-sharded catalog.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.rcds.client import ONE, QUORUM, ConsistencyError, RCClient
from repro.rcds.shard.map import MAP_KEY, MAP_URI, ShardInfo, ShardMap
from repro.robust.overload import BULK, CONTROL
from repro.robust.retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host

#: Page size for scatter-gather prefix queries.
QUERY_PAGE = 256

#: Routed-operation attempts: first try + retries after map refreshes.
_MAX_REROUTES = 3


class ShardedRCClient:
    """Client-side access to the federated catalog from one host."""

    def __init__(
        self,
        host: "Host",
        root_replicas: List[Tuple[str, int]],
        secret: Optional[bytes] = None,
        rpc_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        map_ttl: float = 5.0,
        query_page: int = QUERY_PAGE,
    ) -> None:
        if not root_replicas:
            raise ValueError("ShardedRCClient needs at least one root replica")
        self.sim = host.sim
        self.host = host
        self.secret = secret
        self.rpc_timeout = rpc_timeout
        self.retry = retry
        self.map_ttl = map_ttl
        self.query_page = query_page
        self.root_replicas = [tuple(r) for r in root_replicas]
        #: Surface compatibility with RCClient (callers introspect this).
        self.replicas = list(self.root_replicas)
        self.map: ShardMap = ShardMap.initial(self.root_replicas)
        self._map_fetched = -1e18
        self._clients: Dict[Tuple[Tuple[str, int], ...], RCClient] = {}
        self._root = self._client_for_replicas(tuple(self.root_replicas))
        self.redirect_retries = 0
        metrics = self.sim.obs.metrics
        self._m_redirect_retries = metrics.counter("rcds.redirect_retries")
        self._m_map_refreshes = metrics.counter("rcds.map_refreshes")
        self._m_fanout = metrics.histogram("rcds.query_fanout")

    # -- plumbing -----------------------------------------------------------
    def _client_for_replicas(self, replicas: Tuple[Tuple[str, int], ...]) -> RCClient:
        client = self._clients.get(replicas)
        if client is None:
            client = RCClient(self.host, list(replicas), secret=self.secret,
                              rpc_timeout=self.rpc_timeout, retry=self.retry)
            self._clients[replicas] = client
        return client

    def _client_for(self, info: ShardInfo) -> RCClient:
        return self._client_for_replicas(tuple(tuple(r) for r in info.replicas))

    @property
    def failovers(self) -> int:
        return sum(c.failovers for c in self._clients.values())

    def _ensure_map(self, force: bool = False):
        if not force and self.sim.now - self._map_fetched < self.map_ttl:
            return
        self._map_fetched = self.sim.now
        self._m_map_refreshes.inc()
        try:
            assertions = yield from self._root._lookup(MAP_URI, QUORUM, CONTROL)
        except ConsistencyError:
            try:
                assertions = yield from self._root._lookup(MAP_URI, ONE, CONTROL)
            except ConsistencyError:
                return  # root unreachable: keep routing on the cached map
        info = assertions.get(MAP_KEY)
        if info and isinstance(info.get("value"), dict):
            fetched = ShardMap.from_dict(info["value"])
            if fetched.epoch > self.map.epoch:
                self.map = fetched

    def _routed(self, uri: str, op):
        """Run *op(client)* against the owning group, refreshing the map
        and re-routing when the whole group refuses (epoch redirect)."""
        yield from self._ensure_map()
        for _attempt in range(_MAX_REROUTES):
            client = self._client_for(self.map.owner(uri))
            try:
                return (yield from op(client))
            except ConsistencyError:
                before = self.map.epoch
                yield from self._ensure_map(force=True)
                if self.map.epoch == before:
                    raise  # not a stale map — the group is unreachable
                self.redirect_retries += 1
                self._m_redirect_retries.inc()
        raise ConsistencyError(f"shard map unstable for {uri}")

    # -- public API (all return sim processes; use with ``yield``) ----------
    def lookup(self, uri: str, consistency: str = ONE, lane: str = BULK):
        return self.sim.process(
            self._routed(uri, lambda c: c._lookup(uri, consistency, lane)),
            name=f"rc.lookup:{uri}")

    def update(self, uri: str, assertions: Dict[str, Any],
               consistency: str = ONE, lane: str = BULK):
        return self.sim.process(
            self._routed(uri, lambda c: c._update(uri, assertions, consistency, lane)),
            name=f"rc.update:{uri}")

    def delete(self, uri: str, keys: Optional[List[str]] = None,
               consistency: str = ONE, lane: str = BULK):
        return self.sim.process(
            self._routed(uri, lambda c: c._delete(uri, keys, consistency, lane)),
            name=f"rc.delete:{uri}")

    def query(self, prefix: str, lane: str = BULK):
        """URIs under *prefix*, scatter-gathered across every shard whose
        ownership can intersect it and merged."""
        return self.sim.process(self._query(prefix, lane),
                                name=f"rc.query:{prefix}")

    def _query(self, prefix: str, lane: str = BULK):
        yield from self._ensure_map()
        shards = self.map.shards_for_prefix(prefix)
        self._m_fanout.observe(len(shards))
        found = set()
        for info in shards:
            client = self._client_for(info)
            after: Optional[str] = None
            while True:
                page = yield from client._query(prefix, lane, after,
                                                self.query_page)
                found.update(page)
                if len(page) < self.query_page:
                    break
                after = page[-1]
        return sorted(found)

    def stats(self, lane: str = BULK):
        """Replication stats from every reachable replica of every shard,
        keyed by server id (the RCClient.stats shape, federation-wide)."""
        return self.sim.process(self._stats(lane), name="rc.stats")

    def _stats(self, lane: str = BULK):
        yield from self._ensure_map()
        out: Dict[str, Dict[str, Any]] = {}
        for _sid, info in sorted(self.map.shards.items()):
            client = self._client_for(info)
            stats = yield from client._stats(lane)
            out.update(stats)
        return out

    # -- convenience --------------------------------------------------------
    def get(self, uri: str, key: str, consistency: str = ONE, lane: str = BULK):
        return self.sim.process(self._get(uri, key, consistency, lane),
                                name=f"rc.get:{uri}")

    def _get(self, uri: str, key: str, consistency: str, lane: str = BULK):
        assertions = yield self.lookup(uri, consistency, lane=lane)
        info = assertions.get(key)
        return info["value"] if info else None

    def set(self, uri: str, key: str, value: Any, consistency: str = ONE,
            lane: str = BULK):
        return self.update(uri, {key: value}, consistency, lane=lane)

    def close(self) -> None:
        for client in self._clients.values():
            client.close()
