"""Sharded, federated RCDS catalog.

The full-replication catalog holds every name on every replica — fine
for hundreds of URNs, fatal for the millions-of-names north star. This
package partitions the URN namespace by hierarchical prefix into
*shards*, each backed by its own replica group reusing the existing
:class:`~repro.rcds.server.RCServer` machinery (journals, compaction,
anti-entropy, and snapshot catch-up all come for free per shard),
following the AMGA metadata catalog's federation design.

* :mod:`repro.rcds.shard.map` — the epoch-numbered shard map and the
  longest-prefix router, plus the deterministic split planner.
* :mod:`repro.rcds.shard.server` — :class:`ShardRCServer`, an RCServer
  that fences writes by shard ownership (redirecting stale-epoch
  clients) and hands misplaced names off to their owning group.
* :mod:`repro.rcds.shard.client` — :class:`ShardedRCClient`, a facade
  with the exact :class:`~repro.rcds.client.RCClient` API that caches
  the map, routes to owning replicas, retries through redirects, and
  scatter-gathers cross-shard prefix queries with pagination.
* :mod:`repro.rcds.shard.director` — :class:`ShardManager`, the control
  loop that publishes the map, splits shards past the size threshold,
  and widens hot shards' replica groups on demand.
"""

from repro.rcds.shard.client import ShardedRCClient
from repro.rcds.shard.director import ShardManager
from repro.rcds.shard.map import MAP_KEY, MAP_URI, ROOT_SID, ShardMap, plan_split
from repro.rcds.shard.server import ShardRCServer

__all__ = [
    "MAP_KEY",
    "MAP_URI",
    "ROOT_SID",
    "ShardMap",
    "ShardManager",
    "ShardRCServer",
    "ShardedRCClient",
    "plan_split",
]
