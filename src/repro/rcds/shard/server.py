"""One shard's catalog replica: an RCServer that knows its ownership.

A :class:`ShardRCServer` is a normal RC replica — journals, anti-
entropy, compaction, snapshot catch-up all inherited — plus three
shard-aware behaviours:

* **Epoch fencing.** Writes (and lookups) for names the current shard
  map assigns elsewhere are refused with a ``shard-redirect`` error
  instead of being accepted. The refusing reply still proves the server
  alive, so breakers and health boards don't punish it; the client
  facade reacts by refreshing the map and re-routing. This fence is the
  safety property the ``--bug stale-epoch-write`` switch disables: with
  :attr:`epoch_fencing_enabled` False, a client holding a pre-split map
  silently lands writes in the parent shard after the map advanced.

* **Config adoption.** The server adopts any newer map the director
  pushes (``rc.shard_config``) or that its periodic refresh reads from
  the root group, updating its owned prefixes, its epoch, and — for
  replica widening — its anti-entropy peer set. Adoption emits a
  ``shard.config`` probe, which is how the check oracle knows exactly
  what each server believed when it accepted a write.

* **Handoff.** After a split (or any stray merge), a janitor loop scans
  for names the map routes elsewhere and moves them to the owning
  group: live registers and real tombstones ship via ``rc.install``
  with their LWW stamps preserved, then the local copy is overwritten
  with a *moved* tombstone. The moved marker is never forwarded — and
  replicates to group peers, so each name migrates once per replica at
  most — while a racing client write with a newer stamp still beats the
  migrated value at the destination.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.rcds.records import MOVED, Entry
from repro.rcds.server import RCServer
from repro.rcds.shard.map import MAP_KEY, MAP_URI, ShardMap
from repro.robust import TIMEOUTS
from repro.robust.overload import BULK, CONTROL
from repro.rpc import RpcError
from repro.sim.errors import Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host

class ShardRedirect(Exception):
    """Raised by handlers for names this shard does not own; becomes an
    error reply carrying the owner and the server's epoch."""


class ShardRCServer(RCServer):
    """One replica of one shard, aware of the epoch-numbered map."""

    #: Model-checker bug switch (``--bug stale-epoch-write``): set False
    #: to drop the ownership fence in the write/lookup handlers, so a
    #: client routing on a stale pre-split map lands its writes in the
    #: parent shard after the epoch advanced. The shard oracle catches
    #: the acceptance at the moment it happens.
    epoch_fencing_enabled = True

    def __init__(
        self,
        host: "Host",
        sid: str,
        prefixes: Sequence[str],
        root_replicas: Optional[Sequence[Tuple[str, int]]] = None,
        map_refresh_interval: float = 2.0,
        handoff_interval: float = 0.5,
        handoff_batch: int = 64,
        handoff_rounds: int = 8,
        **kw,
    ) -> None:
        self.sid = sid
        self.prefixes: Tuple[str, ...] = tuple(prefixes)
        self.epoch = 0
        self.map: Optional[ShardMap] = None
        self.lookups_served = 0
        # gc_grace discipline: a shard replica receives cross-group
        # imports (handoff), so its tombstones must outlive the longest
        # plausible janitor delay — a source replica can sit through a
        # whole crash/partition window before forwarding. The group's
        # vector-based GC guard cannot see foreign janitors at all.
        kw.setdefault("tombstone_grace", 30.0)
        super().__init__(host, **kw)
        self.root_replicas = [tuple(r) for r in (root_replicas or [])]
        self.map_refresh_interval = map_refresh_interval
        self.handoff_interval = handoff_interval
        self.handoff_batch = handoff_batch
        self.handoff_rounds = handoff_rounds
        self.redirects = 0
        self.handoffs = 0
        self._m_redirects = self.sim.obs.metrics.counter("rcds.redirects")
        self._m_handoffs = self.sim.obs.metrics.counter("rcds.handoffs")
        self.rpc.register("rc.shard_config", self._h_shard_config)
        self.rpc.register("rc.install", self._h_install)
        #: Anything misplaced to look for? Set on config changes and on
        #: applies of foreign-owned names; cleared by a clean scan, so
        #: the steady state pays one flag check per janitor tick.
        self._handoff_dirty = True
        self._map_refreshed = -1e18
        prev_on_apply = self.store.on_apply

        def _watch_apply(uri: str, key: str, entry: Entry) -> None:
            if prev_on_apply is not None:
                prev_on_apply(uri, key, entry)
            if self.map is not None and not self.owns(uri):
                self._handoff_dirty = True

        self.store.on_apply = _watch_apply
        self._shard_proc = self.sim.process(
            self._shard_loop(), name=f"rc-shard:{self.store.server_id}"
        )

    # -- ownership ----------------------------------------------------------
    def owns(self, uri: str) -> bool:
        """Does the *current* map route this name here? Before any map is
        adopted, the static prefixes given at construction decide."""
        if self.map is not None:
            return self.map.route(uri) == self.sid
        return any(uri.startswith(p) for p in self.prefixes)

    def _fence(self, uri: str, read: bool = False) -> None:
        if uri == MAP_URI or self.owns(uri):
            return
        if not self.epoch_fencing_enabled:
            return  # --bug stale-epoch-write: silently accept
        if read and self._holds_live(uri):
            # Serve-from-source-until-cutover: a read of a record this
            # replica still physically holds is just an eventually-
            # consistent read — LWW gives ONE-consistency reads no
            # freshness promise anyway, and the alternative (redirect to
            # a child whose install hasn't landed) reads empty. Once the
            # register ships, its moved marker flips this to a redirect,
            # and by then the child can serve it. Writes never pass: a
            # stale-routed write must bounce (the fence invariant the
            # shard-ownership oracle checks).
            return
        self.redirects += 1
        self._m_redirects.inc()
        owner = self.map.route(uri) if self.map is not None else "?"
        if self.sim.probes is not None:
            self.sim.probes.emit("shard.redirect", sid=self.sid,
                                 server=self.store.server_id, uri=uri,
                                 owner=owner, epoch=self.epoch)
        raise ShardRedirect(
            f"shard-redirect: {uri} owned by {owner} at epoch {self.epoch}")

    def _holds_live(self, uri: str) -> bool:
        bucket = self.store.data.get(uri)
        if not bucket:
            return False
        return any(not e.deleted for e in bucket.values())

    # -- fenced handlers ----------------------------------------------------
    def _h_lookup(self, args: Dict) -> Dict:
        self._fence(args["uri"], read=True)
        self.lookups_served += 1
        return super()._h_lookup(args)

    def _h_update(self, args: Dict) -> Dict:
        self._fence(args["uri"])
        return super()._h_update(args)

    def _h_delete(self, args: Dict) -> Dict:
        self._fence(args["uri"])
        return super()._h_delete(args)

    def _h_stats(self, args: Dict) -> Dict:
        out = super()._h_stats(args)
        out.update({
            "sid": self.sid,
            "epoch": self.epoch,
            "prefixes": list(self.prefixes),
            "live_uris": self.store.live_uri_count(),
            "redirects": self.redirects,
            "handoffs": self.handoffs,
            "lookups_served": self.lookups_served,
        })
        return out

    # -- config -------------------------------------------------------------
    def _h_shard_config(self, args: Dict) -> Dict:
        self.adopt_map(ShardMap.from_dict(args["map"]))
        return {"sid": self.sid, "epoch": self.epoch}

    def adopt_map(self, new_map: ShardMap) -> bool:
        """Adopt a newer map: epoch, owned prefixes, and — when the group
        was widened — the anti-entropy peer set. Older maps are ignored
        (config pushes and periodic refreshes race freely)."""
        if self.map is not None and new_map.epoch <= self.epoch:
            return False
        self.map = new_map
        self.epoch = new_map.epoch
        info = new_map.shards.get(self.sid)
        if info is not None:
            self.prefixes = info.prefixes
            self.peers = [tuple(r) for r in info.replicas]
        self._handoff_dirty = True
        if self.sim.probes is not None:
            self.sim.probes.emit("shard.config", sid=self.sid,
                                 server=self.store.server_id,
                                 epoch=self.epoch,
                                 prefixes=list(self.prefixes))
        return True

    # -- migration receive --------------------------------------------------
    def _h_install(self, args: Dict):
        """Install registers migrated from another shard's replica group,
        preserving their LWW stamps (see ``RCStore.import_entry``)."""
        entries = args["entries"]
        yield from self._apply_delay(len(entries))
        n = 0
        for uri, key, entry in entries:
            if self.store.import_entry(uri, key, entry) is not None:
                n += 1
        return {"installed": n, "sid": self.sid, "epoch": self.epoch}

    # -- janitor ------------------------------------------------------------
    def _shard_loop(self):
        rng = self.sim.rng.stream(f"rc.shard.{self.store.server_id}")
        owner = f"rc-shard:{self.host.name}"
        try:
            while True:
                yield self.sim.timer_event(
                    self.handoff_interval * (0.75 + 0.5 * rng.random()),
                    owner=owner)
                if not self.host.up:
                    continue
                if (self.root_replicas
                        and self.sim.now - self._map_refreshed
                        >= self.map_refresh_interval):
                    yield from self._refresh_map(rng)
                if self._handoff_dirty and self.map is not None:
                    yield from self._handoff_pass()
        except Interrupt:
            return

    def _refresh_map(self, rng) -> None:
        """Read the latest published map — locally when this server's own
        store holds it (root replicas), else from a root replica."""
        self._map_refreshed = self.sim.now
        value = self.store.get(MAP_URI, MAP_KEY)
        if value is None:
            order = list(self.root_replicas)
            rng.shuffle(order)
            for rhost, rport in order:
                if (rhost, rport) == (self.host.name, self.port):
                    continue
                try:
                    assertions = yield self._client.call(
                        rhost, rport, "rc.lookup", timeout=TIMEOUTS["rc.call"],
                        lane=CONTROL, uri=MAP_URI)
                except RpcError:
                    continue
                info = assertions.get(MAP_KEY)
                value = info["value"] if info else None
                break
        if isinstance(value, dict):
            self.adopt_map(ShardMap.from_dict(value))

    def _misplaced(self) -> Dict[str, List[Tuple[str, str, Entry]]]:
        """Registers the current map routes to another shard, grouped by
        owning sid. Moved markers are excluded — they are the record
        that migration already happened."""
        out: Dict[str, List[Tuple[str, str, Entry]]] = {}
        budget = self.handoff_batch * self.handoff_rounds
        for uri in self.store.iter_uris():
            owner = self.map.route(uri)
            if owner == self.sid:
                continue
            for key, entry in self.store.data.get(uri, {}).items():
                if entry.deleted and entry.value == MOVED:
                    continue
                out.setdefault(owner, []).append((uri, key, entry))
                budget -= 1
            if budget <= 0:
                break
        return out

    def _handoff_pass(self):
        """Move one bounded slice of misplaced registers to their owning
        groups. Live entries and real tombstones ship stamp-preserved;
        each successfully shipped register is then overwritten locally
        with a moved marker (which replicates to group peers, so they
        don't re-forward the same migration)."""
        misplaced = self._misplaced()
        if not misplaced:
            self._handoff_dirty = False
            return
        for owner_sid, entries in sorted(misplaced.items()):
            info = self.map.shards.get(owner_sid)
            if info is None:
                continue
            for start in range(0, len(entries), self.handoff_batch):
                batch = entries[start:start + self.handoff_batch]
                if not (yield from self._install_on(info.replicas, batch)):
                    break  # owning group unreachable; retry next pass
                wall = self.host.clock()
                moved = 0
                for uri, key, entry in batch:
                    # Compare-and-mark: the install yielded, so a newer
                    # write or delete may have landed on this register in
                    # the meantime. Overwriting it with a moved marker
                    # would destroy a record that was never forwarded —
                    # leave it for the next pass instead.
                    cur = self.store.data.get(uri, {}).get(key)
                    if cur is None or (cur.wall, cur.lamport, cur.origin) != (
                            entry.wall, entry.lamport, entry.origin):
                        self._handoff_dirty = True
                        continue
                    self.store.mark_moved(uri, key, wall)
                    moved += 1
                self.handoffs += moved
                self._m_handoffs.inc(moved)
                if self.sim.probes is not None:
                    self.sim.probes.emit(
                        "shard.handoff", src=self.sid, dst=owner_sid,
                        server=self.store.server_id, count=len(batch))
                yield self.sim.timeout(self.sync_spacing)

    def _install_on(self, replicas, batch) -> bool:
        """Install *batch* on one reachable replica of the owning group;
        its own anti-entropy spreads the entries from there."""
        for rhost, rport in replicas:
            try:
                yield self._client.call(
                    rhost, rport, "rc.install", timeout=TIMEOUTS["rc.sync"],
                    lane=BULK, entries=batch)
                return True
            except RpcError:
                continue
        return False

    def close(self) -> None:
        if self._shard_proc.is_alive:
            self._shard_proc.interrupt("closed")
        super().close()
