"""RCDS — the Resource Cataloging and Distribution System substrate (§2.1, §3.1, §5.2).

SNIPE stores *everything* nameable — hosts, processes, services, multicast
groups, files — as metadata in replicated resource-catalog servers:
URI-indexed lists of ``name=value`` assertions, automatically timestamped,
optionally signed, replicated with "a true master–master update data
model" (§7). This package provides:

* :class:`RCStore` — the replicated assertion store: last-writer-wins
  registers with per-origin update logs and version vectors, so any two
  replicas converge after exchanging missing records (anti-entropy).
* :class:`RCServer` — the catalog server process: authenticated RPC
  (lookup/update/delete/query) plus periodic push-pull anti-entropy.
* :class:`RCClient` — replica-set client with consistency levels
  (ONE / QUORUM / ALL) and transparent failover between replicas.
* :mod:`repro.rcds.uri` — URL/URN/LIFN naming helpers.
* :class:`LifnRegistry` — location-independent file names bound to sets
  of locations (§5.2.2, [13]).
"""

from repro.rcds.records import Entry, RCStore, Record
from repro.rcds.server import RCServer, RC_PORT
from repro.rcds.client import ALL, ONE, QUORUM, MASTER, ConsistencyError, RCClient
from repro.rcds.lifn import LifnRegistry
from repro.rcds import uri

__all__ = [
    "ALL",
    "ConsistencyError",
    "Entry",
    "LifnRegistry",
    "MASTER",
    "ONE",
    "QUORUM",
    "RCClient",
    "RCServer",
    "RCStore",
    "RC_PORT",
    "Record",
    "uri",
]
