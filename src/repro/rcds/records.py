"""The replicated assertion store behind every RC server.

Design (§2.1, §7): metadata for a URI is a list of ``name=value``
assertions; replicas accept updates independently ("true master–master")
and converge by anti-entropy. Each accepted update becomes an immutable
:class:`Record` tagged with its origin server and per-origin sequence
number; a replica's knowledge is summarised by a version vector
``{origin: max_seq}``, so a sync ships exactly the records the peer
lacks. Conflicting writes to the same (uri, key) resolve last-writer-wins
on a Lamport clock (ties broken by origin id) — deterministic and
convergent on every replica.

Deletions are tombstones; "automatic time stamping of metadata by the RC
servers" (§3.1) is the ``wall`` field, stamped with the accepting
server's simulation time and returned to clients so "temporally dis-joint
tasks" can judge the age of what they read.

Replication state is bounded. The version vector is a *contiguous*
knowledge summary: ``vector[origin] == n`` promises every record
``1..n`` from that origin has been applied here, so out-of-order
records buffer in the log without advancing the vector until the gap
fills. That contract is what makes the rest safe: per-origin logs
compact below a gossiped stability watermark (``compact``), tombstones
are garbage-collected only once every configured peer has acked past
them (``gc_tombstones``), and a peer whose vector predates the
compaction horizon catches up from a register snapshot
(``snapshot_needed_for`` / ``install_entries`` / ``adopt_vector``)
instead of a record replay that no longer exists.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple


#: Tombstone value recording "migrated to the owning shard" rather than
#: "deleted by a client" — see :meth:`RCStore.mark_moved`.
MOVED = "__moved__"


@dataclass(frozen=True)
class Entry:
    """Current state of one (uri, key) register."""

    value: Any
    lamport: int
    origin: str
    wall: float
    deleted: bool = False
    #: Per-origin sequence number of the record that produced this entry.
    #: Tombstone GC compares it against the group's stability watermark:
    #: a tombstone may only be dropped once every peer's vector covers it.
    seq: int = 0

    def stamp(self) -> Tuple[float, int, str]:
        """LWW ordering key: accept timestamp first, then Lamport clock,
        then origin id as the final tiebreak.

        Per-server Lamport counters advance at each server's own write
        rate and are not comparable across replicas between syncs; the
        accept timestamp (the paper's "automatic time stamping") is what
        makes last-writer-wins mean *last in time*, with the Lamport
        clock ordering causally-related writes that share a timestamp.
        """
        return (self.wall, self.lamport, self.origin)

    def to_dict(self) -> Dict[str, Any]:
        return {"value": self.value, "lamport": self.lamport,
                "origin": self.origin, "wall": self.wall,
                "deleted": self.deleted, "seq": self.seq}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Entry":
        return cls(value=d["value"], lamport=d["lamport"], origin=d["origin"],
                   wall=d["wall"], deleted=d.get("deleted", False),
                   seq=d.get("seq", 0))


@dataclass(frozen=True)
class Record:
    """One accepted update, as shipped between replicas."""

    origin: str
    seq: int
    uri: str
    key: str
    entry: Entry

    def to_dict(self) -> Dict[str, Any]:
        return {"origin": self.origin, "seq": self.seq, "uri": self.uri,
                "key": self.key, "entry": self.entry.to_dict()}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Record":
        return cls(origin=d["origin"], seq=d["seq"], uri=d["uri"],
                   key=d["key"], entry=Entry.from_dict(d["entry"]))


class RCStore:
    """One replica's state: registers + per-origin logs + version vector."""

    #: Model-checker test hook: set False to *disable* the last-writer-wins
    #: comparison (every applied entry blindly overwrites), which breaks
    #: replica convergence. Never touched in production paths.
    lww_enabled = True

    #: Model-checker bug switch (``--bug vector-gap``): set False to
    #: restore the legacy ``apply_remote`` that bumps the version vector
    #: to any record's seq even when earlier seqs from that origin are
    #: missing — after which ``missing_for`` never requests the skipped
    #: records and replicas silently diverge.
    contiguous_vector_enabled = True

    #: Model-checker bug switch (``--bug early-gc``): set False to let
    #: ``gc_tombstones`` drop tombstones without waiting for every peer
    #: to ack past them — a peer that still holds the pre-delete write
    #: then resurrects the deleted key on the next sync.
    safe_gc_enabled = True

    def __init__(self, server_id: str) -> None:
        self.server_id = server_id
        self.data: Dict[str, Dict[str, Entry]] = {}
        #: Sorted view of ``data``'s keys. Prefix queries bisect to the
        #: range instead of scanning every uri — the difference between
        #: O(log n + answer) and O(n) per query at 10^5+ names.
        self._index: List[str] = []
        #: uri -> count of live (non-tombstoned) registers, maintained on
        #: every apply so liveness checks and ``live_uri_count`` are O(1).
        self._bucket_live: Dict[str, int] = {}
        self._live_uris = 0
        self.logs: Dict[str, Dict[int, Record]] = {}  # origin -> seq -> record
        self.vector: Dict[str, int] = {}
        #: Compaction horizon per origin: every record with
        #: ``seq <= compacted[origin]`` has been dropped from the log
        #: (its effect lives on in ``data``). A peer whose vector is
        #: below this horizon cannot be served records and must take a
        #: snapshot instead.
        self.compacted: Dict[str, int] = {}
        self.lamport = 0
        self.applied = 0
        self.compactions = 0
        self.records_compacted = 0
        self.tombstones_collected = 0
        #: Optional observer called as ``on_apply(uri, key, entry)`` for
        #: every record folded into this replica (local or remote). The
        #: check subsystem's convergence oracle mirrors replica state
        #: through this hook.
        self.on_apply: Optional[Callable[[str, str, Entry], None]] = None
        #: Optional observer called as ``on_record(record)`` whenever a
        #: record enters this replica's log (local accept or remote
        #: merge). The server's durability journal and the check
        #: subsystem's compaction oracle both hang off this hook.
        self.on_record: Optional[Callable[[Record], None]] = None

    # -- local writes -------------------------------------------------------
    def local_update(self, uri: str, assertions: Dict[str, Any], wall: float) -> List[Record]:
        """Accept a client update at this replica; returns the new records."""
        out = []
        for key, value in assertions.items():
            out.append(self._accept(uri, key, value, wall, deleted=False))
        return out

    def local_delete(self, uri: str, keys: Optional[Iterable[str]], wall: float) -> List[Record]:
        """Tombstone specific keys, or every current key of *uri*."""
        if keys is None:
            keys = list(self.data.get(uri, {}).keys())
        return [self._accept(uri, k, None, wall, deleted=True) for k in keys]

    def _accept(self, uri: str, key: str, value: Any, wall: float, deleted: bool) -> Record:
        self.lamport += 1
        seq = self.vector.get(self.server_id, 0) + 1
        self.vector[self.server_id] = seq
        entry = Entry(value=value, lamport=self.lamport, origin=self.server_id,
                      wall=wall, deleted=deleted, seq=seq)
        record = Record(self.server_id, seq, uri, key, entry)
        self.logs.setdefault(self.server_id, {})[seq] = record
        if self.on_record is not None:
            self.on_record(record)
        self._apply_entry(uri, key, entry)
        return record

    # -- replication --------------------------------------------------------
    def missing_for(self, remote_vector: Dict[str, int]) -> List[Record]:
        """Records this replica has that a peer with *remote_vector* lacks.

        Iterates the version vector (not the logs: a fully-compacted
        origin has an empty log but non-zero knowledge). Sequence
        numbers that fell below the compaction horizon are skipped —
        the batch may therefore carry gaps, which is fine: the
        receiver's contiguous watermark refuses to advance past them
        and its next ``sync_begin`` reports ``snapshot_needed`` so the
        missing prefix arrives as a register snapshot instead.
        """
        out: List[Record] = []
        origins = set(self.logs) | set(self.vector)
        for origin in sorted(origins):
            log = self.logs.get(origin, {})
            have = remote_vector.get(origin, 0)
            mine = self.vector.get(origin, 0)
            for seq in range(have + 1, mine + 1):
                rec = log.get(seq)
                if rec is not None:
                    out.append(rec)
        return out

    def snapshot_needed_for(self, remote_vector: Dict[str, int]) -> bool:
        """True if a peer at *remote_vector* needs more than records:
        some origin's compaction horizon is past what the peer has seen,
        so the records it lacks no longer exist."""
        return any(remote_vector.get(origin, 0) < horizon
                   for origin, horizon in self.compacted.items())

    def apply_remote(self, records: Iterable[Record]) -> int:
        """Merge records from a peer; returns how many were new.

        The version vector only advances over *contiguous* sequence
        runs: a record with ``seq > seen + 1`` buffers in the log (and
        folds into the registers — LWW makes that safe in any order)
        but leaves the vector at the last gap-free point, so
        ``missing_for`` keeps requesting the skipped records. The
        ``contiguous_vector_enabled = False`` branch preserves the
        historical bug for the model checker.
        """
        new = 0
        for rec in records:
            seen = self.vector.get(rec.origin, 0)
            if not self.contiguous_vector_enabled:
                # Legacy behaviour (the vector-gap bug): skip only exact
                # duplicates, and bump the vector to any higher seq.
                if rec.seq <= seen and rec.seq in self.logs.get(rec.origin, {}):
                    continue
                self.logs.setdefault(rec.origin, {})[rec.seq] = rec
                if rec.seq > seen:
                    self.vector[rec.origin] = rec.seq
            else:
                if rec.seq <= seen or rec.seq in self.logs.get(rec.origin, {}):
                    continue  # already covered by the vector or buffered
                self.logs.setdefault(rec.origin, {})[rec.seq] = rec
                self._advance_vector(rec.origin)
            if self.on_record is not None:
                self.on_record(rec)
            if rec.entry.lamport > self.lamport:
                self.lamport = rec.entry.lamport
            self._apply_entry(rec.uri, rec.key, rec.entry)
            new += 1
        return new

    def _advance_vector(self, origin: str) -> None:
        """Slide ``vector[origin]`` forward over the contiguous run of
        buffered records, starting from the later of the current vector
        and the compaction horizon (compacted seqs are known-applied)."""
        log = self.logs.get(origin, {})
        floor = max(self.vector.get(origin, 0), self.compacted.get(origin, 0))
        while floor + 1 in log:
            floor += 1
        if floor > self.vector.get(origin, 0):
            self.vector[origin] = floor

    # -- snapshot catch-up --------------------------------------------------
    def state_entries(self) -> List[Tuple[str, str, Entry]]:
        """Every register — tombstones included — in deterministic order.
        This is the unit of snapshot catch-up: a peer too far behind the
        compaction horizon installs these instead of replaying records."""
        out: List[Tuple[str, str, Entry]] = []
        for uri in sorted(self.data):
            bucket = self.data[uri]
            for key in sorted(bucket):
                out.append((uri, key, bucket[key]))
        return out

    def install_entries(self, entries: Iterable[Tuple[str, str, Entry]]) -> int:
        """LWW-fold snapshot registers into this replica. Order-independent
        and idempotent, so paged snapshot transfer needs no coordination."""
        n = 0
        for uri, key, entry in entries:
            if entry.lamport > self.lamport:
                self.lamport = entry.lamport
            self._apply_entry(uri, key, entry)
            n += 1
        return n

    def import_entry(self, uri: str, key: str, entry: Entry) -> Optional[Record]:
        """Accept a register migrated from *another* replica group.

        Shard handoff moves names between groups whose version vectors
        share no origins, so the entry cannot ship as a foreign record:
        it is re-originated here — new local sequence number, this
        server's origin id — while its LWW stamp (wall, lamport) is
        preserved so a client write racing the migration still orders
        against the migrated value. Returns ``None`` when the local
        register already covers an equal-or-newer stamp (idempotent:
        every parent replica hands off the same names independently).
        """
        current = self.data.get(uri, {}).get(key)
        if current is not None and (current.wall, current.lamport) >= (entry.wall, entry.lamport):
            return None
        if entry.lamport > self.lamport:
            self.lamport = entry.lamport
        seq = self.vector.get(self.server_id, 0) + 1
        self.vector[self.server_id] = seq
        imported = Entry(value=entry.value, lamport=entry.lamport,
                         origin=self.server_id, wall=entry.wall,
                         deleted=entry.deleted, seq=seq)
        record = Record(self.server_id, seq, uri, key, imported)
        self.logs.setdefault(self.server_id, {})[seq] = record
        if self.on_record is not None:
            self.on_record(record)
        self._apply_entry(uri, key, imported)
        return record

    def adopt_vector(self, snap_vector: Dict[str, int]) -> None:
        """After installing a full snapshot taken at *snap_vector*: raise
        our vector and compaction horizon to cover everything the
        snapshot already folded in, then re-run the contiguity scan over
        any records buffered past the adopted point."""
        for origin, seq in snap_vector.items():
            if seq > self.compacted.get(origin, 0):
                self.compacted[origin] = seq
            if seq > self.vector.get(origin, 0):
                self.vector[origin] = seq
            self._advance_vector(origin)

    # -- compaction / tombstone GC -----------------------------------------
    def compact(self, stable: Dict[str, int]) -> int:
        """Drop log records at or below the *stable* watermark (per
        origin: the min of the replica group's version vectors, as
        gossiped by anti-entropy). Returns how many records were
        dropped. Registers are untouched — compaction only forgets the
        *history*, never the state."""
        dropped = 0
        for origin, log in self.logs.items():
            horizon = min(stable.get(origin, 0), self.vector.get(origin, 0))
            if horizon <= self.compacted.get(origin, 0):
                continue
            stale = [seq for seq in log if seq <= horizon]
            for seq in stale:
                del log[seq]
            if horizon > self.compacted.get(origin, 0):
                self.compacted[origin] = horizon
            dropped += len(stale)
        if dropped:
            self.compactions += 1
            self.records_compacted += dropped
        return dropped

    def gc_tombstones(self, stable: Dict[str, int],
                      now: Optional[float] = None,
                      grace: float = 0.0) -> int:
        """Remove tombstones every configured peer has acked past.

        *stable* must be the min over **all** configured peers' vectors
        (unknown peer => 0), not just recently-heard ones: collecting a
        tombstone a partitioned peer never saw lets that peer's stale
        pre-delete write win the next merge — resurrection. The
        ``safe_gc_enabled = False`` branch drops that guard for the
        model checker's ``--bug early-gc``.

        The vector guard only covers *this group's* peers. When the
        store also receives cross-group imports (shard handoff), pass a
        wall-clock *grace*: a tombstone younger than ``grace`` at local
        time *now* is retained even if every group peer acked it, so a
        delayed foreign janitor still finds the tombstone that refuses
        its stale pre-delete entry.
        """
        removed = 0
        for uri in list(self.data):
            bucket = self.data[uri]
            for key in list(bucket):
                entry = bucket[key]
                if not entry.deleted:
                    continue
                if self.safe_gc_enabled:
                    if stable.get(entry.origin, 0) < entry.seq:
                        continue  # a peer hasn't acked past the delete
                    if now is not None and now - entry.wall < grace:
                        continue  # within cross-group handoff grace
                del bucket[key]
                removed += 1
            if not bucket:
                del self.data[uri]
                self._bucket_live.pop(uri, None)
                i = bisect_left(self._index, uri)
                if i < len(self._index) and self._index[i] == uri:
                    del self._index[i]
        self.tombstones_collected += removed
        return removed

    # -- durability support -------------------------------------------------
    def clear(self) -> None:
        """Wipe replica state in place (a crash losing memory), keeping
        the observer hooks attached so oracles and journals survive."""
        self.data.clear()
        self._index.clear()
        self._bucket_live.clear()
        self._live_uris = 0
        self.logs.clear()
        self.vector.clear()
        self.compacted.clear()
        self.lamport = 0

    def record_count(self) -> int:
        """Records currently held across all per-origin logs."""
        return sum(len(log) for log in self.logs.values())

    def tombstone_count(self) -> int:
        """Deleted registers awaiting tombstone GC."""
        return sum(1 for bucket in self.data.values()
                   for e in bucket.values() if e.deleted)

    def _apply_entry(self, uri: str, key: str, entry: Entry) -> None:
        bucket = self.data.get(uri)
        if bucket is None:
            bucket = self.data[uri] = {}
            insort(self._index, uri)
        current = bucket.get(key)
        if current is None or not self.lww_enabled or entry.stamp() > current.stamp():
            was_live = current is not None and not current.deleted
            now_live = not entry.deleted
            if was_live != now_live:
                n = self._bucket_live.get(uri, 0)
                if now_live:
                    if n == 0:
                        self._live_uris += 1
                    self._bucket_live[uri] = n + 1
                else:
                    if n == 1:
                        self._live_uris -= 1
                        del self._bucket_live[uri]
                    elif n > 1:
                        self._bucket_live[uri] = n - 1
            bucket[key] = entry
            self.applied += 1
        if self.on_apply is not None:
            self.on_apply(uri, key, entry)

    # -- reads ------------------------------------------------------------
    def lookup(self, uri: str) -> Dict[str, Dict[str, Any]]:
        """Visible (non-tombstoned) assertions for *uri*, with timestamps."""
        out = {}
        for key, entry in self.data.get(uri, {}).items():
            if not entry.deleted:
                out[key] = {"value": entry.value, "wall": entry.wall, "origin": entry.origin}
        return out

    def get(self, uri: str, key: str) -> Optional[Any]:
        entry = self.data.get(uri, {}).get(key)
        if entry is None or entry.deleted:
            return None
        return entry.value

    def freshest_wall(self, uri: str) -> float:
        """Newest wall timestamp among *uri*'s visible assertions."""
        walls = [e.wall for e in self.data.get(uri, {}).values() if not e.deleted]
        return max(walls) if walls else -1.0

    def query(self, prefix: str, after: Optional[str] = None,
              limit: Optional[int] = None) -> List[str]:
        """URIs starting with *prefix* that have at least one live
        assertion, in sorted order.

        Bisects the sorted uri index to the prefix range instead of
        scanning every name the replica holds. ``after`` resumes
        strictly past a previous page's last uri and ``limit`` caps the
        page size, so cross-shard scatter-gather can stream large
        namespaces without one unbounded response.
        """
        if after is not None and after >= prefix:
            lo = bisect_right(self._index, after)
        else:
            lo = bisect_left(self._index, prefix)
        out: List[str] = []
        for i in range(lo, len(self._index)):
            uri = self._index[i]
            if not uri.startswith(prefix):
                break  # index is sorted: the prefix block is contiguous
            if self._bucket_live.get(uri):
                out.append(uri)
                if limit is not None and len(out) >= limit:
                    break
        return out

    def live_uri_count(self) -> int:
        """URIs with at least one live assertion (the shard split
        trigger reads this every poll, so it must stay O(1))."""
        return self._live_uris

    def iter_uris(self) -> List[str]:
        """Snapshot of every uri this replica holds — tombstoned ones
        included — in sorted order (the shard janitor's scan surface)."""
        return list(self._index)

    def mark_moved(self, uri: str, key: str, wall: float) -> Record:
        """Overwrite one register with a shard-handoff tombstone.

        A normal tombstone, except its value marks *why* the register
        died — migration, not deletion — so the janitor never forwards
        it to the owning shard (which already received the live entry,
        stamp-preserved) and group peers that merge it stop forwarding
        their own copies too."""
        return self._accept(uri, key, MOVED, wall, deleted=True)

    def digest(self) -> Dict[str, int]:
        """Copy of the version vector (what a peer needs for a sync)."""
        return dict(self.vector)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Full visible state — used by convergence tests."""
        return {
            uri: {k: e.value for k, e in bucket.items() if not e.deleted}
            for uri, bucket in self.data.items()
            if any(not e.deleted for e in bucket.values())
        }
