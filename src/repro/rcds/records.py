"""The replicated assertion store behind every RC server.

Design (§2.1, §7): metadata for a URI is a list of ``name=value``
assertions; replicas accept updates independently ("true master–master")
and converge by anti-entropy. Each accepted update becomes an immutable
:class:`Record` tagged with its origin server and per-origin sequence
number; a replica's knowledge is summarised by a version vector
``{origin: max_seq}``, so a sync ships exactly the records the peer
lacks. Conflicting writes to the same (uri, key) resolve last-writer-wins
on a Lamport clock (ties broken by origin id) — deterministic and
convergent on every replica.

Deletions are tombstones; "automatic time stamping of metadata by the RC
servers" (§3.1) is the ``wall`` field, stamped with the accepting
server's simulation time and returned to clients so "temporally dis-joint
tasks" can judge the age of what they read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class Entry:
    """Current state of one (uri, key) register."""

    value: Any
    lamport: int
    origin: str
    wall: float
    deleted: bool = False

    def stamp(self) -> Tuple[float, int, str]:
        """LWW ordering key: accept timestamp first, then Lamport clock,
        then origin id as the final tiebreak.

        Per-server Lamport counters advance at each server's own write
        rate and are not comparable across replicas between syncs; the
        accept timestamp (the paper's "automatic time stamping") is what
        makes last-writer-wins mean *last in time*, with the Lamport
        clock ordering causally-related writes that share a timestamp.
        """
        return (self.wall, self.lamport, self.origin)


@dataclass(frozen=True)
class Record:
    """One accepted update, as shipped between replicas."""

    origin: str
    seq: int
    uri: str
    key: str
    entry: Entry


class RCStore:
    """One replica's state: registers + per-origin logs + version vector."""

    #: Model-checker test hook: set False to *disable* the last-writer-wins
    #: comparison (every applied entry blindly overwrites), which breaks
    #: replica convergence. Never touched in production paths.
    lww_enabled = True

    def __init__(self, server_id: str) -> None:
        self.server_id = server_id
        self.data: Dict[str, Dict[str, Entry]] = {}
        self.logs: Dict[str, Dict[int, Record]] = {}  # origin -> seq -> record
        self.vector: Dict[str, int] = {}
        self.lamport = 0
        self.applied = 0
        #: Optional observer called as ``on_apply(uri, key, entry)`` for
        #: every record folded into this replica (local or remote). The
        #: check subsystem's convergence oracle mirrors replica state
        #: through this hook.
        self.on_apply = None

    # -- local writes -------------------------------------------------------
    def local_update(self, uri: str, assertions: Dict[str, Any], wall: float) -> List[Record]:
        """Accept a client update at this replica; returns the new records."""
        out = []
        for key, value in assertions.items():
            out.append(self._accept(uri, key, value, wall, deleted=False))
        return out

    def local_delete(self, uri: str, keys: Optional[Iterable[str]], wall: float) -> List[Record]:
        """Tombstone specific keys, or every current key of *uri*."""
        if keys is None:
            keys = list(self.data.get(uri, {}).keys())
        return [self._accept(uri, k, None, wall, deleted=True) for k in keys]

    def _accept(self, uri: str, key: str, value: Any, wall: float, deleted: bool) -> Record:
        self.lamport += 1
        seq = self.vector.get(self.server_id, 0) + 1
        self.vector[self.server_id] = seq
        entry = Entry(value=value, lamport=self.lamport, origin=self.server_id,
                      wall=wall, deleted=deleted)
        record = Record(self.server_id, seq, uri, key, entry)
        self.logs.setdefault(self.server_id, {})[seq] = record
        self._apply_entry(uri, key, entry)
        return record

    # -- replication --------------------------------------------------------
    def missing_for(self, remote_vector: Dict[str, int]) -> List[Record]:
        """Records this replica has that a peer with *remote_vector* lacks."""
        out: List[Record] = []
        for origin, log in self.logs.items():
            have = remote_vector.get(origin, 0)
            mine = self.vector.get(origin, 0)
            for seq in range(have + 1, mine + 1):
                rec = log.get(seq)
                if rec is not None:
                    out.append(rec)
        return out

    def apply_remote(self, records: Iterable[Record]) -> int:
        """Merge records from a peer; returns how many were new."""
        new = 0
        for rec in records:
            seen = self.vector.get(rec.origin, 0)
            if rec.seq <= seen and rec.seq in self.logs.get(rec.origin, {}):
                continue  # already have it
            self.logs.setdefault(rec.origin, {})[rec.seq] = rec
            if rec.seq > seen:
                self.vector[rec.origin] = rec.seq
            if rec.entry.lamport > self.lamport:
                self.lamport = rec.entry.lamport
            self._apply_entry(rec.uri, rec.key, rec.entry)
            new += 1
        return new

    def _apply_entry(self, uri: str, key: str, entry: Entry) -> None:
        bucket = self.data.setdefault(uri, {})
        current = bucket.get(key)
        if current is None or not self.lww_enabled or entry.stamp() > current.stamp():
            bucket[key] = entry
            self.applied += 1
        if self.on_apply is not None:
            self.on_apply(uri, key, entry)

    # -- reads ------------------------------------------------------------
    def lookup(self, uri: str) -> Dict[str, Dict[str, Any]]:
        """Visible (non-tombstoned) assertions for *uri*, with timestamps."""
        out = {}
        for key, entry in self.data.get(uri, {}).items():
            if not entry.deleted:
                out[key] = {"value": entry.value, "wall": entry.wall, "origin": entry.origin}
        return out

    def get(self, uri: str, key: str) -> Optional[Any]:
        entry = self.data.get(uri, {}).get(key)
        if entry is None or entry.deleted:
            return None
        return entry.value

    def freshest_wall(self, uri: str) -> float:
        """Newest wall timestamp among *uri*'s visible assertions."""
        walls = [e.wall for e in self.data.get(uri, {}).values() if not e.deleted]
        return max(walls) if walls else -1.0

    def query(self, prefix: str) -> List[str]:
        """URIs starting with *prefix* that have at least one live assertion."""
        return sorted(
            uri
            for uri, bucket in self.data.items()
            if uri.startswith(prefix) and any(not e.deleted for e in bucket.values())
        )

    def digest(self) -> Dict[str, int]:
        """Copy of the version vector (what a peer needs for a sync)."""
        return dict(self.vector)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Full visible state — used by convergence tests."""
        return {
            uri: {k: e.value for k, e in bucket.items() if not e.deleted}
            for uri, bucket in self.data.items()
            if any(not e.deleted for e in bucket.values())
        }
