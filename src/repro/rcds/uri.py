"""Naming: URLs, URNs and LIFNs (§3.1, §5.2).

    "Because RCDS resources are named by URLs or URNs, SNIPE processes and
    their metadata are addressable using a widely-deployed global name
    space."

Conventions used throughout the reproduction:

* hosts:            ``snipe://<host>/``
* host daemons:     ``snipe://<host>/daemon``
* processes:        ``urn:snipe:proc:<name>``
* services:         ``urn:snipe:svc:<name>``
* multicast groups: ``urn:snipe:mcast:<name>``
* users:            ``urn:snipe:user:<name>``
* files:            ``lifn:<name>`` (location-independent) resolving to
  concrete ``file://<host>/<path>`` locations.
"""

from __future__ import annotations

from typing import Optional, Tuple


def host_url(host: str) -> str:
    """The distinguished URL for a host (§5.2.1)."""
    return f"snipe://{host}/"


def daemon_url(host: str) -> str:
    return f"snipe://{host}/daemon"


def process_urn(name: str) -> str:
    """The distinguished URN for a process (§5.2.3)."""
    return f"urn:snipe:proc:{name}"


def service_urn(name: str) -> str:
    return f"urn:snipe:svc:{name}"


def mcast_urn(name: str) -> str:
    return f"urn:snipe:mcast:{name}"


def user_urn(name: str) -> str:
    return f"urn:snipe:user:{name}"


def lifn_name(name: str) -> str:
    return f"lifn:{name}"


def file_url(host: str, path: str) -> str:
    return f"file://{host}/{path.lstrip('/')}"


def scheme_of(uri: str) -> str:
    """The naming scheme: 'snipe', 'urn', 'lifn', 'file', ..."""
    return uri.split(":", 1)[0] if ":" in uri else ""


def host_of(uri: str) -> Optional[str]:
    """Host component of a snipe:// or file:// URL, else None."""
    for prefix in ("snipe://", "file://"):
        if uri.startswith(prefix):
            rest = uri[len(prefix):]
            return rest.split("/", 1)[0] or None
    return None


def urn_kind(uri: str) -> Optional[Tuple[str, str]]:
    """For urn:snipe:<kind>:<name>, return (kind, name); else None."""
    parts = uri.split(":", 3)
    if len(parts) == 4 and parts[0] == "urn" and parts[1] == "snipe":
        return parts[2], parts[3]
    return None
