"""The RC/metadata server process (§3.1, §6).

Serves authenticated lookup/update/delete/query RPCs against its
:class:`~repro.rcds.records.RCStore` and runs push-pull anti-entropy with
its peer replicas: each round it sends a peer its version vector plus the
records the peer was missing last time it heard from it; the peer merges,
and replies with what *this* server lacks. Any replica accepts writes —
the "true master–master update data model" the paper contrasts with
LDAP-based directories (§7).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.rcds.records import RCStore
from repro.robust import TIMEOUTS
from repro.robust.overload import CONTROL
from repro.rpc import RpcClient, RpcError, RpcServer
from repro.sim.errors import Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host

#: Well-known RC server port.
RC_PORT = 385


class RCServer:
    """One catalog replica, hosted on *host*."""

    def __init__(
        self,
        host: "Host",
        port: int = RC_PORT,
        peers: Optional[List[Tuple[str, int]]] = None,
        secret: Optional[bytes] = None,
        sync_interval: float = 0.5,
        service_time: float = 0.0002,
    ) -> None:
        self.sim = host.sim
        self.host = host
        self.port = port
        self.store = RCStore(server_id=f"{host.name}:{port}")
        self.peers = list(peers or [])
        self.sync_interval = sync_interval
        self.rpc = RpcServer(host, port, secret=secret, service_time=service_time)
        self.rpc.register("rc.lookup", self._h_lookup)
        self.rpc.register("rc.update", self._h_update)
        self.rpc.register("rc.delete", self._h_delete)
        self.rpc.register("rc.query", self._h_query)
        self.rpc.register("rc.sync", self._h_sync)
        self._client = RpcClient(host, secret=secret)
        self.syncs_ok = 0
        self.syncs_failed = 0
        obs = self.sim.obs
        self._m_syncs_ok = obs.metrics.counter("rcds.syncs_ok")
        self._m_syncs_failed = obs.metrics.counter("rcds.syncs_failed")
        self._m_updates = obs.metrics.counter("rcds.updates")
        self._m_lookups = obs.metrics.counter("rcds.lookups")
        #: How stale a record was when anti-entropy delivered it here:
        #: virtual now minus the record's origin stamp, per applied record.
        self._m_lag = obs.metrics.histogram("rcds.propagation_lag")
        self._obs = obs
        self._sync_proc = self.sim.process(
            self._anti_entropy(), name=f"rc-sync:{host.name}"
        )

    # -- RPC handlers -------------------------------------------------------
    def _h_lookup(self, args: Dict) -> Dict:
        self._m_lookups.inc()
        return self.store.lookup(args["uri"])

    def _h_update(self, args: Dict) -> Dict:
        self._m_updates.inc()
        # LWW stamps come from the accepting server's *wall clock*, which
        # the failure injector may skew — the whole point of the LWW-skew
        # property tests and the gray scenario. Never self.sim.now here.
        stamp = self.host.clock()
        records = self.store.local_update(args["uri"], args["assertions"], stamp)
        return {"stamped": stamp, "count": len(records)}

    def _h_delete(self, args: Dict) -> Dict:
        records = self.store.local_delete(args["uri"], args.get("keys"),
                                          self.host.clock())
        return {"count": len(records)}

    def _h_query(self, args: Dict) -> List[str]:
        return self.store.query(args.get("prefix", ""))

    def _h_sync(self, args: Dict) -> Dict:
        """Push-pull merge: apply the caller's records, return what it lacks."""
        their_vector = args["vector"]
        want = self.store.missing_for(their_vector)
        self._observe_lag(args.get("records", []))
        self.store.apply_remote(args.get("records", []))
        return {"vector": self.store.digest(), "records": want}

    def _observe_lag(self, records) -> None:
        """Catalog update propagation lag: age of each record arriving via
        anti-entropy, measured against its origin's accept stamp."""
        now = self.sim.now
        for record in records:
            self._m_lag.observe(now - record.entry.wall)

    # -- anti-entropy ---------------------------------------------------------
    def _anti_entropy(self):
        rng = self.sim.rng.stream(f"rc.anti-entropy.{self.store.server_id}")
        try:
            while True:
                yield self.sim.timeout(self.sync_interval * (0.5 + rng.random()))
                if not self.peers or not self.host.up:
                    continue
                peer_host, peer_port = self.peers[rng.randrange(len(self.peers))]
                if peer_host == self.host.name and peer_port == self.port:
                    continue
                yield from self._sync_with(peer_host, peer_port)
        except Interrupt:
            return

    def _sync_with(self, peer_host: str, peer_port: int):
        """One push-pull round with a specific peer (also callable directly)."""
        # Manual finish() rather than a with-block: the span stays open
        # across the RPC yields, and generator code cannot rely on the
        # ambient span stack surviving a context switch.
        span = self._obs.span("rcds.sync", peer=f"{peer_host}:{peer_port}")
        try:
            reply = yield self._client.call(
                peer_host,
                peer_port,
                "rc.sync",
                timeout=TIMEOUTS["rc.sync"],
                lane=CONTROL,
                vector=self.store.digest(),
                records=[],  # pull-first: learn their vector, then push
            )
            self._observe_lag(reply["records"])
            self.store.apply_remote(reply["records"])
            # Push what the peer lacks according to its reported vector.
            missing = self.store.missing_for(reply["vector"])
            if missing:
                yield self._client.call(
                    peer_host,
                    peer_port,
                    "rc.sync",
                    timeout=TIMEOUTS["rc.sync"],
                    lane=CONTROL,
                    vector=self.store.digest(),
                    records=missing,
                )
            self.syncs_ok += 1
            self._m_syncs_ok.inc()
            span.finish("ok")
        except RpcError:
            self.syncs_failed += 1
            self._m_syncs_failed.inc()
            span.finish("error:RpcError")

    def close(self) -> None:
        self.rpc.close()
        self._client.close()
        if self._sync_proc.is_alive:
            self._sync_proc.interrupt("closed")
