"""The RC/metadata server process (§3.1, §6).

Serves authenticated lookup/update/delete/query RPCs against its
:class:`~repro.rcds.records.RCStore` and runs push-pull anti-entropy with
its peer replicas. Any replica accepts writes — the "true master–master
update data model" the paper contrasts with LDAP-based directories (§7).

Anti-entropy is heal-storm controlled. Each round opens with a
``rc.sync_begin`` vector exchange on the CONTROL lane — a few dozen
bytes that must never queue behind a healing backlog — and then moves
records in bounded, spaced batches (``max_sync_records`` per RPC) over
the BULK lane. A peer whose vector predates the compaction horizon is
told ``snapshot_needed`` and pages the full register state across
instead of replaying records that no longer exist. Setting
``max_sync_records=None`` restores the legacy protocol — one unbounded
record blob per sync on the CONTROL lane, no compaction — which is the
E16 baseline.

Each replica is durable by default: every record entering the log is
journaled to the host's :attr:`~repro.net.host.Host.disk` with a
content digest, and the journal folds into a digest-verified snapshot
every ``snapshot_every`` records (two snapshot generations are kept, so
a corrupting write costs one journal replay, not the catalog). A host
crash wipes the in-memory store; recovery — or a cold restart after
*all* replicas crash — rebuilds the full visible state locally instead
of replaying peers' history.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.rcds.records import Entry, RCStore, Record
from repro.robust import TIMEOUTS
from repro.robust.overload import BULK, CONTROL
from repro.rpc import RpcClient, RpcError, RpcServer
from repro.sim.errors import Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host

#: Well-known RC server port.
RC_PORT = 385

#: Hard cap on snapshot catch-up pages per sync round; a guard against a
#: cursor loop, not a tuning knob (the page size bounds each RPC).
_MAX_SNAPSHOT_PAGES = 512


def _ckpt():
    """The checkpoint digest machinery, imported lazily: ``repro.core``
    imports this module at package init, so a top-level import back into
    it would be circular. Durability paths only run post-init."""
    from repro.core.checkpoint import seal_record, verify_checkpoint_record
    return seal_record, verify_checkpoint_record


def _failure_cause(exc: RpcError) -> str:
    """Classify a sync failure so health evidence and the E16 report can
    tell congestion from death: breaker-open (we didn't even try),
    timeout (sent, no answer in time), transport (path/peer refused)."""
    msg = str(exc)
    if "circuit open" in msg:
        return "breaker-open"
    if "timed out" in msg:
        return "timeout"
    return "transport"


class RCServer:
    """One catalog replica, hosted on *host*."""

    def __init__(
        self,
        host: "Host",
        port: int = RC_PORT,
        peers: Optional[List[Tuple[str, int]]] = None,
        secret: Optional[bytes] = None,
        sync_interval: float = 0.5,
        service_time: float = 0.0002,
        apply_cost: float = 0.0002,
        max_sync_records: Optional[int] = 64,
        sync_rounds: int = 8,
        sync_spacing: float = 0.02,
        compact_interval: float = 2.0,
        tombstone_grace: float = 0.0,
        peer_stale_after: float = 10.0,
        log_keep_tail: int = 32,
        durable: bool = True,
        snapshot_every: int = 256,
    ) -> None:
        self.sim = host.sim
        self.host = host
        self.port = port
        self.store = RCStore(server_id=f"{host.name}:{port}")
        self.peers = list(peers or [])
        self.sync_interval = sync_interval
        #: CPU cost per record assembled or applied in a sync payload.
        #: On a single-threaded replica (``service_time > 0``) this is
        #: what makes an unbounded blob a head-of-line block: the serve
        #: loop is occupied for the whole apply, and every queued request
        #: behind it waits.
        self.apply_cost = apply_cost
        #: Records per sync RPC on the BULK lane; ``None`` = legacy
        #: unbounded single-blob protocol with no compaction (baseline).
        self.max_sync_records = max_sync_records
        #: Max pull/push batches per anti-entropy round — the rest of a
        #: large backlog waits for the next round (rate limiting).
        self.sync_rounds = sync_rounds
        #: Pause between consecutive batches of one round.
        self.sync_spacing = sync_spacing
        self.compact_interval = compact_interval
        #: Minimum wall-clock age before a tombstone is GC-eligible.
        #: The vector-based guard in ``gc_tombstones`` only covers this
        #: replica group's peers — any *cross-group* source of imports
        #: (shard handoff via ``rc.install``) needs a time floor instead:
        #: retention must exceed the maximum handoff delay, or a janitor
        #: delayed past it can re-install a stale pre-delete entry after
        #: the tombstone that would have refused it is gone.
        self.tombstone_grace = tombstone_grace
        #: A peer not heard from for this long stops holding the *log*
        #: compaction watermark back (it will catch up from a snapshot);
        #: tombstone GC still waits for every configured peer.
        self.peer_stale_after = peer_stale_after
        #: Recent records kept in the log past the stability watermark,
        #: so a briefly-lagging peer syncs records instead of snapshots.
        self.log_keep_tail = log_keep_tail
        self.durable = durable
        self.snapshot_every = snapshot_every
        #: Last version vector heard from each peer: server_id ->
        #: (vector, sim-time heard). Gossip for the stability watermarks.
        self.peer_vectors: Dict[str, Tuple[Dict[str, int], float]] = {}
        self._snap_sessions: Dict[str, Tuple[list, Dict[str, int]]] = {}
        self.rpc = RpcServer(host, port, secret=secret, service_time=service_time)
        self.rpc.register("rc.lookup", self._h_lookup)
        self.rpc.register("rc.update", self._h_update)
        self.rpc.register("rc.delete", self._h_delete)
        self.rpc.register("rc.query", self._h_query)
        self.rpc.register("rc.sync", self._h_sync)
        self.rpc.register("rc.sync_begin", self._h_sync_begin)
        self.rpc.register("rc.sync_pull", self._h_sync_pull)
        self.rpc.register("rc.sync_push", self._h_sync_push)
        self.rpc.register("rc.snapshot", self._h_snapshot)
        self.rpc.register("rc.stats", self._h_stats)
        self._client = RpcClient(host, secret=secret)
        self.syncs_ok = 0
        self.syncs_failed = 0
        self.snapshot_catchups = 0
        self.snapshots_written = 0
        self.snapshots_rejected = 0
        self.journal_skipped = 0
        self.restores = 0
        obs = self.sim.obs
        self._m_syncs_ok = obs.metrics.counter("rcds.syncs_ok")
        self._m_syncs_failed = obs.metrics.counter("rcds.syncs_failed")
        self._m_updates = obs.metrics.counter("rcds.updates")
        self._m_lookups = obs.metrics.counter("rcds.lookups")
        #: How stale a record was when anti-entropy delivered it here:
        #: virtual now minus the record's origin stamp, per applied record.
        self._m_lag = obs.metrics.histogram("rcds.propagation_lag")
        #: Records per sync payload, observed wherever a batch is
        #: assembled (pull replies, push batches, snapshot pages, legacy
        #: blobs). Its max is the heal-storm SLO.
        self._m_batch = obs.metrics.histogram("rcds.sync_batch_records")
        self._m_compactions = obs.metrics.counter("rcds.compactions")
        self._m_tombstones_gc = obs.metrics.counter("rcds.tombstones_gc")
        self._m_catchups = obs.metrics.counter("rcds.snapshot_catchups")
        self._g_records = obs.metrics.gauge(
            "rcds.store_records", replica=self.store.server_id)
        self._g_tombstones = obs.metrics.gauge(
            "rcds.tombstones", replica=self.store.server_id)
        self._obs = obs
        if durable:
            self._disk = host.disk.setdefault(f"rcds:{port}", {
                "snapshot": None, "snapshot_prev": None,
                "journal": [], "journal_prev": [],
            })
            self._restoring = False
            self.store.on_record = self._journal_record
            host.on_crash.append(self._on_host_crash)
            host.on_recover.append(self._on_host_recover)
            if (self._disk["snapshot"] is not None or self._disk["journal"]
                    or self._disk["journal_prev"]):
                # Cold restart on a machine whose disk has catalog state.
                self._restore_from_disk()
        self._sync_proc = self.sim.process(
            self._anti_entropy(), name=f"rc-sync:{host.name}"
        )
        self._compact_proc = None
        if compact_interval is not None and max_sync_records is not None:
            self._compact_proc = self.sim.process(
                self._maintenance(), name=f"rc-compact:{host.name}"
            )

    # -- RPC handlers -------------------------------------------------------
    def _h_lookup(self, args: Dict) -> Dict:
        self._m_lookups.inc()
        return self.store.lookup(args["uri"])

    def _h_update(self, args: Dict) -> Dict:
        self._m_updates.inc()
        # LWW stamps come from the accepting server's *wall clock*, which
        # the failure injector may skew — the whole point of the LWW-skew
        # property tests and the gray scenario. Never self.sim.now here.
        stamp = self.host.clock()
        records = self.store.local_update(args["uri"], args["assertions"], stamp)
        return {"stamped": stamp, "count": len(records)}

    def _h_delete(self, args: Dict) -> Dict:
        records = self.store.local_delete(args["uri"], args.get("keys"),
                                          self.host.clock())
        return {"count": len(records)}

    def _h_query(self, args: Dict) -> List[str]:
        return self.store.query(args.get("prefix", ""),
                                after=args.get("after"),
                                limit=args.get("limit"))

    def _apply_delay(self, n: int):
        """CPU time to assemble/apply *n* sync records, stretched when the
        host is slowed. On a single-threaded replica the serve loop holds
        this long — the mechanism that turns an unbounded anti-entropy
        blob into a head-of-line block for every queued request."""
        if self.apply_cost > 0 and n > 0:
            speed = max(getattr(self.host, "cpu_speed", 1.0), 1e-9)
            yield self.sim.timeout(self.apply_cost * n / speed)

    def _h_sync(self, args: Dict):
        """Legacy push-pull merge: apply the caller's records, return
        everything it lacks in one blob. Kept for the unbounded baseline
        and for mixed-version peers."""
        their_vector = args["vector"]
        want = self.store.missing_for(their_vector)
        self._m_batch.observe(len(want))
        records = args.get("records", [])
        yield from self._apply_delay(len(want) + len(records))
        self._observe_lag(records)
        self.store.apply_remote(records)
        return {"vector": self.store.digest(), "records": want}

    def _h_sync_begin(self, args: Dict) -> Dict:
        """CONTROL-lane vector exchange opening a bounded sync round."""
        who, their = args.get("who"), args["vector"]
        if who:
            self.peer_vectors[who] = (dict(their), self.sim.now)
        return {
            "who": self.store.server_id,
            "vector": self.store.digest(),
            "snapshot_needed": self.store.snapshot_needed_for(their),
        }

    def _h_sync_pull(self, args: Dict):
        """One bounded batch of records the caller lacks (BULK lane)."""
        who, their = args.get("who"), args["vector"]
        if who:
            self.peer_vectors[who] = (dict(their), self.sim.now)
        want = self.store.missing_for(their)
        more = False
        if self.max_sync_records is not None and len(want) > self.max_sync_records:
            want, more = want[: self.max_sync_records], True
        self._m_batch.observe(len(want))
        yield from self._apply_delay(len(want))
        return {"who": self.store.server_id, "vector": self.store.digest(),
                "records": want, "more": more}

    def _h_sync_push(self, args: Dict):
        """Apply one bounded batch pushed by a peer (BULK lane)."""
        who = args.get("who")
        if who and args.get("vector") is not None:
            self.peer_vectors[who] = (dict(args["vector"]), self.sim.now)
        records = args.get("records", [])
        yield from self._apply_delay(len(records))
        self._observe_lag(records)
        self.store.apply_remote(records)
        return {"who": self.store.server_id, "vector": self.store.digest()}

    def _h_snapshot(self, args: Dict):
        """Serve one page of a frozen register snapshot (BULK lane).

        The first page (cursor 0) freezes ``(state_entries, vector)`` in
        one sim event, so the pages a peer installs are mutually
        consistent with the vector it adopts at the end — entries
        written *during* the transfer arrive by normal record sync.
        """
        who = args.get("who", "?")
        cursor = int(args.get("cursor", 0))
        if cursor == 0 or who not in self._snap_sessions:
            self._snap_sessions[who] = (self.store.state_entries(),
                                        self.store.digest())
        entries, vector = self._snap_sessions[who]
        page = self.max_sync_records or max(len(entries), 1)
        chunk = entries[cursor:cursor + page]
        more = cursor + page < len(entries)
        self._m_batch.observe(len(chunk))
        yield from self._apply_delay(len(chunk))
        out: Dict = {"entries": chunk, "cursor": cursor + page, "more": more}
        if not more:
            out["vector"] = vector
            self._snap_sessions.pop(who, None)
        return out

    def _h_stats(self, args: Dict) -> Dict:
        """Replication-state introspection for ops tooling and reports."""
        return {
            "server_id": self.store.server_id,
            "records": self.store.record_count(),
            "tombstones": self.store.tombstone_count(),
            "vector": self.store.digest(),
            "compacted": dict(self.store.compacted),
            "compactions": self.store.compactions,
            "records_compacted": self.store.records_compacted,
            "tombstones_collected": self.store.tombstones_collected,
            "snapshots_written": self.snapshots_written,
            "snapshots_rejected": self.snapshots_rejected,
            "restores": self.restores,
            "snapshot_catchups": self.snapshot_catchups,
            "syncs_ok": self.syncs_ok,
            "syncs_failed": self.syncs_failed,
        }

    def _observe_lag(self, records) -> None:
        """Catalog update propagation lag: age of each record arriving via
        anti-entropy, measured against its origin's accept stamp."""
        now = self.sim.now
        for record in records:
            self._m_lag.observe(now - record.entry.wall)

    # -- anti-entropy ---------------------------------------------------------
    def _anti_entropy(self):
        rng = self.sim.rng.stream(f"rc.anti-entropy.{self.store.server_id}")
        owner = f"rc:{self.host.name}"
        try:
            while True:
                yield self.sim.timer_event(
                    self.sync_interval * (0.5 + rng.random()), owner=owner
                )
                if not self.peers or not self.host.up:
                    continue
                peer_host, peer_port = self.peers[rng.randrange(len(self.peers))]
                if peer_host == self.host.name and peer_port == self.port:
                    continue
                yield from self._sync_with(peer_host, peer_port)
        except Interrupt:
            return

    def _sync_with(self, peer_host: str, peer_port: int):
        """One sync round with a specific peer (also callable directly)."""
        # Manual finish() rather than a with-block: the span stays open
        # across the RPC yields, and generator code cannot rely on the
        # ambient span stack surviving a context switch.
        span = self._obs.span("rcds.sync", peer=f"{peer_host}:{peer_port}")
        try:
            if self.max_sync_records is None:
                yield from self._sync_unbounded(peer_host, peer_port)
            else:
                yield from self._sync_bounded(peer_host, peer_port)
            self.syncs_ok += 1
            self._m_syncs_ok.inc()
            span.finish("ok")
        except RpcError as exc:
            cause = _failure_cause(exc)
            self.syncs_failed += 1
            self._m_syncs_failed.inc()
            self._obs.metrics.counter("rcds.sync_failures", cause=cause).inc()
            span.finish(f"error:{cause}")

    def _sync_unbounded(self, peer_host: str, peer_port: int):
        """Legacy round: pull-first full exchange, one blob per RPC."""
        reply = yield self._client.call(
            peer_host,
            peer_port,
            "rc.sync",
            timeout=TIMEOUTS["rc.sync"],
            lane=CONTROL,
            vector=self.store.digest(),
            records=[],  # pull-first: learn their vector, then push
        )
        self._observe_lag(reply["records"])
        self.store.apply_remote(reply["records"])
        # Push what the peer lacks according to its reported vector.
        missing = self.store.missing_for(reply["vector"])
        if missing:
            self._m_batch.observe(len(missing))
            yield self._client.call(
                peer_host,
                peer_port,
                "rc.sync",
                timeout=TIMEOUTS["rc.sync"],
                lane=CONTROL,
                vector=self.store.digest(),
                records=missing,
            )

    def _sync_bounded(self, peer_host: str, peer_port: int):
        """Vector exchange on CONTROL, then bounded spaced batches on BULK."""
        begin = yield self._client.call(
            peer_host, peer_port, "rc.sync_begin",
            timeout=TIMEOUTS["rc.sync"], lane=CONTROL,
            who=self.store.server_id, vector=self.store.digest(),
        )
        peer_id = begin.get("who", f"{peer_host}:{peer_port}")
        peer_vec = begin["vector"]
        self.peer_vectors[peer_id] = (dict(peer_vec), self.sim.now)
        if begin.get("snapshot_needed"):
            yield from self._snapshot_catchup(peer_host, peer_port)
        # Pull: bounded batches of what the peer has beyond our vector.
        for _ in range(self.sync_rounds):
            if not self._behind(peer_vec):
                break
            page = yield self._client.call(
                peer_host, peer_port, "rc.sync_pull",
                timeout=TIMEOUTS["rc.sync"], lane=BULK,
                who=self.store.server_id, vector=self.store.digest(),
            )
            self._observe_lag(page["records"])
            self.store.apply_remote(page["records"])
            peer_vec = page["vector"]
            self.peer_vectors[peer_id] = (dict(peer_vec), self.sim.now)
            if not page.get("more"):
                break
            yield self.sim.timeout(self.sync_spacing)
        # Push: bounded batches of what we have beyond the peer's vector.
        for _ in range(self.sync_rounds):
            missing = self.store.missing_for(peer_vec)
            if not missing:
                break
            batch = missing[: self.max_sync_records]
            self._m_batch.observe(len(batch))
            reply = yield self._client.call(
                peer_host, peer_port, "rc.sync_push",
                timeout=TIMEOUTS["rc.sync"], lane=BULK,
                who=self.store.server_id,
                vector=self.store.digest(), records=batch,
            )
            peer_vec = reply["vector"]
            self.peer_vectors[peer_id] = (dict(peer_vec), self.sim.now)
            if len(missing) <= self.max_sync_records:
                break
            yield self.sim.timeout(self.sync_spacing)

    def _behind(self, peer_vec: Dict[str, int]) -> bool:
        return any(seq > self.store.vector.get(origin, 0)
                   for origin, seq in peer_vec.items())

    def _snapshot_catchup(self, peer_host: str, peer_port: int):
        """Page the peer's full register state across and adopt its
        vector — the catch-up path for a replica whose vector predates
        the peer's compaction horizon."""
        cursor = 0
        for _ in range(_MAX_SNAPSHOT_PAGES):
            page = yield self._client.call(
                peer_host, peer_port, "rc.snapshot",
                timeout=TIMEOUTS["rc.sync"], lane=BULK,
                who=self.store.server_id, cursor=cursor,
            )
            self.store.install_entries(page["entries"])
            cursor = page["cursor"]
            if not page.get("more"):
                self.store.adopt_vector(page.get("vector", {}))
                self.snapshot_catchups += 1
                self._m_catchups.inc()
                if self.durable:
                    # Registers adopted from a snapshot never pass through
                    # the journal; persist them before the next crash.
                    self._write_snapshot()
                return
            yield self.sim.timeout(self.sync_spacing)

    # -- compaction / tombstone GC ------------------------------------------
    def _maintenance(self):
        rng = self.sim.rng.stream(f"rc.compact.{self.store.server_id}")
        try:
            while True:
                yield self.sim.timeout(
                    self.compact_interval * (0.75 + 0.5 * rng.random()))
                if not self.host.up:
                    continue
                stable = self._stability(include_stale=False)
                horizon = {
                    origin: min(seq, self.store.vector.get(origin, 0)
                                - self.log_keep_tail)
                    for origin, seq in stable.items()
                }
                dropped = self.store.compact(
                    {o: s for o, s in horizon.items() if s > 0})
                if dropped:
                    self._m_compactions.inc()
                removed = self.store.gc_tombstones(
                    self._stability(include_stale=True),
                    now=self.sim.now, grace=self.tombstone_grace)
                if removed:
                    self._m_tombstones_gc.inc()
                self._g_records.set(self.store.record_count())
                self._g_tombstones.set(self.store.tombstone_count())
        except Interrupt:
            return

    def _stability(self, include_stale: bool) -> Dict[str, int]:
        """Per-origin min across the replica group's version vectors.

        ``include_stale=False`` (log compaction): peers not heard from
        within ``peer_stale_after`` stop holding the watermark back —
        their logs would otherwise grow without bound through a long
        partition — and will catch up from a snapshot instead.

        ``include_stale=True`` (tombstone GC): every configured peer
        counts, and a peer never heard from pins the watermark at zero.
        Collecting a tombstone an unreached peer still predates is how
        deleted keys come back from the dead.
        """
        now = self.sim.now
        vecs = [self.store.vector]
        for peer_host, peer_port in self.peers:
            pid = f"{peer_host}:{peer_port}"
            if pid == self.store.server_id:
                continue
            known = self.peer_vectors.get(pid)
            if known is None:
                if include_stale:
                    return {}
                continue
            vec, heard = known
            if not include_stale and now - heard > self.peer_stale_after:
                continue
            vecs.append(vec)
        return {origin: min(v.get(origin, 0) for v in vecs)
                for origin in self.store.vector}

    # -- durability ----------------------------------------------------------
    def _journal_record(self, record: Record) -> None:
        """Synchronously journal every record entering the log, digest
        stamped (and scrambled after digesting under a gray storage
        fault, so the restore path has to *catch* the rot)."""
        if self._restoring:
            return
        seal_record, _ = _ckpt()
        rec = record.to_dict()
        seal_record(rec, self.host, scramble_key="entry")
        self._disk["journal"].append(rec)
        if len(self._disk["journal"]) >= self.snapshot_every:
            self._write_snapshot()

    def _write_snapshot(self) -> None:
        """Fold the journal into a fresh digest-verified snapshot,
        keeping the previous generation (and its journal) so one
        corrupting write never costs the catalog."""
        snap = {
            "kind": "rcds-snapshot",
            "server_id": self.store.server_id,
            "vector": dict(self.store.vector),
            "compacted": dict(self.store.compacted),
            "lamport": self.store.lamport,
            "entries": [(uri, key, entry.to_dict())
                        for uri, key, entry in self.store.state_entries()],
        }
        seal_record, _ = _ckpt()
        seal_record(snap, self.host, scramble_key="entries")
        d = self._disk
        d["snapshot_prev"], d["journal_prev"] = d["snapshot"], d["journal"]
        d["snapshot"], d["journal"] = snap, []
        self.snapshots_written += 1

    def _restore_from_disk(self) -> int:
        """Rebuild the store from the durable snapshot + journal.

        Falls back to the previous snapshot generation (replaying both
        journals) when the current one fails digest verification;
        journal records that fail verification are skipped — the
        resulting vector gap stalls at the contiguous watermark and
        anti-entropy refills it from peers.
        """
        _, verify_checkpoint_record = _ckpt()
        d = self._disk
        self._restoring = True
        restored = 0
        try:
            self.store.clear()
            snap = d.get("snapshot")
            if snap is not None and verify_checkpoint_record(snap):
                restored += self._install_snapshot(snap)
                journals = [d.get("journal", [])]
            else:
                if snap is not None:
                    self.snapshots_rejected += 1
                prev = d.get("snapshot_prev")
                if prev is not None and verify_checkpoint_record(prev):
                    restored += self._install_snapshot(prev)
                journals = [d.get("journal_prev", []), d.get("journal", [])]
            for journal in journals:
                for rec in journal:
                    if not verify_checkpoint_record(rec):
                        self.journal_skipped += 1
                        continue
                    restored += self.store.apply_remote([Record.from_dict(rec)])
        finally:
            self._restoring = False
        return restored

    def _install_snapshot(self, snap: Dict) -> int:
        entries = [(uri, key, Entry.from_dict(ed))
                   for uri, key, ed in snap["entries"]]
        n = self.store.install_entries(entries)
        self.store.adopt_vector(snap["vector"])
        for origin, horizon in snap.get("compacted", {}).items():
            if horizon > self.store.compacted.get(origin, 0):
                self.store.compacted[origin] = horizon
        if snap.get("lamport", 0) > self.store.lamport:
            self.store.lamport = snap["lamport"]
        return n

    def _on_host_crash(self, host) -> None:
        # Memory is gone; the disk dict survives. Hooks stay attached so
        # oracles and the journal keep observing the rebuilt store. The
        # probe tells shadowing oracles to wipe their reference models
        # too — the rebuilt store starts from the snapshot, not from the
        # full apply history the mirror accumulated.
        self.store.clear()
        if self.sim.probes is not None:
            self.sim.probes.emit("rcds.wipe", server=self.store.server_id)

    def _on_host_recover(self, host) -> None:
        self.restores += 1
        self._restore_from_disk()

    def close(self) -> None:
        self.rpc.close()
        self._client.close()
        if self._sync_proc.is_alive:
            self._sync_proc.interrupt("closed")
        if self._compact_proc is not None and self._compact_proc.is_alive:
            self._compact_proc.interrupt("closed")
        if self.durable:
            if self._on_host_crash in self.host.on_crash:
                self.host.on_crash.remove(self._on_host_crash)
            if self._on_host_recover in self.host.on_recover:
                self.host.on_recover.remove(self._on_host_recover)
