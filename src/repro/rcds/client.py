"""Replica-set client for the RC servers.

Consistency levels trade availability against staleness, the RCDS design
point (§2.1: "When the semantics of the application permit, higher
availability can be obtained by using a consistency model which
sacrifices strict atomicity"):

* ``ONE`` — talk to any live replica (maximum availability; the SNIPE
  default for host/process metadata).
* ``QUORUM`` — read/write a majority, reads return the freshest copy.
* ``ALL`` — every replica must answer.
* ``MASTER`` — all writes go to replica 0 (the LDAP/MDS-style baseline
  for experiment E9; reads may use any replica).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.robust import TIMEOUTS
from repro.robust.overload import BULK
from repro.robust.retry import RetryPolicy
from repro.rpc import RpcClient, RpcError

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host

ONE = "one"
QUORUM = "quorum"
ALL = "all"
MASTER = "master"


class ConsistencyError(Exception):
    """Not enough replicas answered to satisfy the consistency level."""


class RCClient:
    """Client-side access to a set of RC replicas from one host."""

    def __init__(
        self,
        host: "Host",
        replicas: List[Tuple[str, int]],
        secret: Optional[bytes] = None,
        rpc_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if not replicas:
            raise ValueError("RCClient needs at least one replica address")
        self.sim = host.sim
        self.host = host
        self.replicas = list(replicas)
        self.rpc_timeout = rpc_timeout if rpc_timeout is not None else TIMEOUTS["rc.call"]
        #: Temporal retry discipline: each *round* tries every candidate
        #: replica once; the policy decides whether a failed round is
        #: retried (with backoff) or surfaces as ConsistencyError. The
        #: default single-round policy matches the historical behaviour.
        self.retry = retry or RetryPolicy.single()
        self._rpc = RpcClient(host, secret=secret)
        self._rng = host.sim.rng.stream(f"rc-client.{host.name}")
        self.failovers = 0
        metrics = self.sim.obs.metrics
        self._m_failovers = metrics.counter("rcds.failovers")
        self._m_lookup_latency = metrics.histogram("rcds.lookup_latency")
        self._m_update_latency = metrics.histogram("rcds.update_latency")

    # -- helpers --------------------------------------------------------------
    def _required(self, consistency: str) -> int:
        n = len(self.replicas)
        if consistency in (ONE, MASTER):
            return 1
        if consistency == QUORUM:
            return n // 2 + 1
        if consistency == ALL:
            return n
        raise ValueError(f"unknown consistency level {consistency!r}")

    def _candidate_order(self) -> List[Tuple[str, int]]:
        """Local replica first (closest-resource heuristic), then random —
        but replicas under an open circuit breaker or a health-board
        quarantine sink to the back, so a sick or zombie server is only
        tried once every healthy one failed. The health board catches
        what the breaker can't: a replica that answers *some* traffic
        (heartbeats, the occasional call) while failing most work."""
        local = [r for r in self.replicas if r[0] == self.host.name]
        rest = [r for r in self.replicas if r[0] != self.host.name]
        self._rng.shuffle(rest)
        order = local + rest
        health = self.host.health

        def sick(r: Tuple[str, int]) -> bool:
            return self._rpc.breaker_open(*r) or health.is_quarantined(r[0])

        # Deliberately no sort-by-score among the healthy: ordering by a
        # continuously-updated score makes every client herd onto the
        # momentarily-best replica, which is worse under plain overload.
        # Quarantine is a binary demotion; the shuffle keeps the load
        # spread across everything above the bar.
        return [r for r in order if not sick(r)] + [r for r in order if sick(r)]

    def _fanout(self, method: str, need: int, targets: List[Tuple[str, int]],
                lane: str = BULK, **args):
        """Call *method* on successive replicas until *need* succeed.

        One round walks every candidate; ``self.retry`` decides whether a
        failed round (ConsistencyError) is re-attempted with backoff.
        """

        def one_round(_attempt: int):
            results = []
            for rhost, rport in targets:
                try:
                    result = yield self._rpc.call(
                        rhost, rport, method, timeout=self.rpc_timeout, lane=lane, **args
                    )
                    results.append(((rhost, rport), result))
                    if len(results) >= need:
                        return results
                except RpcError:
                    self.failovers += 1
                    self._m_failovers.inc()
            raise ConsistencyError(
                f"{method}: only {len(results)}/{need} replicas reachable"
            )

        return (
            yield from self.retry.run(
                self.sim, one_round, retry_on=(ConsistencyError,),
                rng=self._rng, op=method,
            )
        )

    # -- public API (all return sim processes; use with ``yield``) ----------
    def lookup(self, uri: str, consistency: str = ONE, lane: str = BULK):
        return self.sim.process(
            self._lookup(uri, consistency, lane), name=f"rc.lookup:{uri}"
        )

    def _lookup(self, uri: str, consistency: str, lane: str = BULK):
        need = self._required(consistency)
        targets = self._candidate_order()
        t0 = self.sim.now
        results = yield from self._fanout("rc.lookup", need, targets, lane=lane, uri=uri)
        self._m_lookup_latency.observe(self.sim.now - t0)
        if len(results) == 1:
            return results[0][1]
        # Merge: per key, keep the assertion with the newest timestamp.
        merged: Dict[str, Dict[str, Any]] = {}
        for _, assertions in results:
            for key, info in assertions.items():
                if key not in merged or info["wall"] > merged[key]["wall"]:
                    merged[key] = info
        return merged

    def update(self, uri: str, assertions: Dict[str, Any], consistency: str = ONE,
               lane: str = BULK):
        return self.sim.process(
            self._update(uri, assertions, consistency, lane), name=f"rc.update:{uri}"
        )

    def _update(self, uri: str, assertions: Dict[str, Any], consistency: str,
                lane: str = BULK):
        need = self._required(consistency)
        if consistency == MASTER:
            targets = [self.replicas[0]]  # single-master baseline: no failover
        else:
            targets = self._candidate_order()
        t0 = self.sim.now
        results = yield from self._fanout(
            "rc.update", need, targets, lane=lane, uri=uri, assertions=assertions
        )
        self._m_update_latency.observe(self.sim.now - t0)
        return results[0][1]

    def delete(self, uri: str, keys: Optional[List[str]] = None, consistency: str = ONE,
               lane: str = BULK):
        return self.sim.process(
            self._delete(uri, keys, consistency, lane), name=f"rc.delete:{uri}"
        )

    def _delete(self, uri: str, keys: Optional[List[str]], consistency: str,
                lane: str = BULK):
        need = self._required(consistency)
        targets = [self.replicas[0]] if consistency == MASTER else self._candidate_order()
        results = yield from self._fanout(
            "rc.delete", need, targets, lane=lane, uri=uri, keys=keys
        )
        return results[0][1]

    def query(self, prefix: str, lane: str = BULK,
              after: Optional[str] = None, limit: Optional[int] = None):
        """URIs under *prefix* from any reachable replica. ``after`` and
        ``limit`` page through large namespaces (see ``RCStore.query``)."""
        return self.sim.process(
            self._query(prefix, lane, after, limit), name=f"rc.query:{prefix}"
        )

    def _query(self, prefix: str, lane: str = BULK,
               after: Optional[str] = None, limit: Optional[int] = None):
        results = yield from self._fanout(
            "rc.query", 1, self._candidate_order(), lane=lane, prefix=prefix,
            after=after, limit=limit,
        )
        return results[0][1]

    def stats(self, lane: str = BULK):
        """Replication-state stats from every reachable replica, as
        ``{server_id: stats_dict}`` — the ops view of log sizes,
        tombstone backlog, compaction horizons, and sync health."""
        return self.sim.process(self._stats(lane), name="rc.stats")

    def _stats(self, lane: str = BULK):
        out: Dict[str, Dict[str, Any]] = {}
        for rhost, rport in self._candidate_order():
            try:
                stats = yield self._rpc.call(
                    rhost, rport, "rc.stats", timeout=self.rpc_timeout, lane=lane
                )
                out[stats["server_id"]] = stats
            except RpcError:
                continue
        return out

    # -- convenience -----------------------------------------------------------
    def get(self, uri: str, key: str, consistency: str = ONE, lane: str = BULK):
        """One assertion's value (or None)."""
        return self.sim.process(
            self._get(uri, key, consistency, lane), name=f"rc.get:{uri}"
        )

    def _get(self, uri: str, key: str, consistency: str, lane: str = BULK):
        assertions = yield self.lookup(uri, consistency, lane=lane)
        info = assertions.get(key)
        return info["value"] if info else None

    def set(self, uri: str, key: str, value: Any, consistency: str = ONE,
            lane: str = BULK):
        return self.update(uri, {key: value}, consistency, lane=lane)

    def close(self) -> None:
        self._rpc.close()
