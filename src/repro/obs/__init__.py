"""Observability: tracing, metrics, and reporting for the simulator.

Every :class:`~repro.sim.kernel.Simulator` owns one :class:`Observability`
(reached lazily as ``sim.obs``) bundling a :class:`MetricsRegistry` and a
:class:`Tracer` that both read the virtual clock. Metrics are always on —
an increment is just an attribute add — while trace recording is off by
default and enabled per run with ``sim.obs.tracer.enabled = True``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import Gauge, Histogram, MetricCounter, MetricsRegistry
from repro.obs.prof import KernelProfiler, profile_scenario
from repro.obs.report import (
    BENCH_SCHEMA_VERSION,
    diff_exports,
    gate_diff,
    load_export,
    render_diff,
    render_report,
    save_export,
    write_bench_json,
)
from repro.obs.slo import DEFAULT_SLOS, Slo, SloMonitor, evaluate_slos
from repro.obs.tracing import DEFAULT_CAPACITY, Span, Tracer, load_jsonl

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_CAPACITY",
    "DEFAULT_SLOS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "MetricCounter",
    "MetricsRegistry",
    "Observability",
    "Slo",
    "SloMonitor",
    "Span",
    "Tracer",
    "diff_exports",
    "evaluate_slos",
    "gate_diff",
    "load_export",
    "load_jsonl",
    "profile_scenario",
    "render_diff",
    "render_report",
    "save_export",
    "write_bench_json",
]


class Observability:
    """One simulation's metrics registry + tracer, sharing a clock."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        trace: bool = False,
        trace_capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.metrics = MetricsRegistry(clock=clock)
        self.tracer = Tracer(
            clock=clock, enabled=trace, capacity=trace_capacity, metrics=self.metrics
        )

    def span(self, name: str, trace_id: Optional[int] = None, **tags: Any) -> Span:
        return self.tracer.span(name, trace_id=trace_id, **tags)

    def event(self, kind: str, trace_id: Optional[int] = None, **fields: Any) -> None:
        self.tracer.event(kind, trace_id=trace_id, **fields)

    def export(self) -> dict:
        """JSON-serialisable dump of all metrics plus trace accounting."""
        out = self.metrics.export()
        out["trace"] = {
            "records": len(self.tracer),
            "dropped": self.tracer.dropped,
            "sampled_out": self.tracer.sampled_out,
            "capacity": self.tracer.capacity,
        }
        return out
