"""``python -m repro obs`` — render, diff, profile, and gate observability.

Subcommands:

* ``report`` — no argument: run the built-in lossy-LAN demo scenario
  (srudp, tcp, and ethernet multicast traffic under 5% frame loss) and
  print the per-subsystem metrics report — p50/p95/p99 message latency
  and retransmit counts per transport. With a file argument: render a
  previously saved export (or ``BENCH_*.json``) instead of simulating.
  ``--json PATH`` saves the export; ``--trace PATH`` enables tracing and
  dumps the JSON-lines trace log.
* ``diff BASE NEW`` — align two saved exports by (metric, tags) and
  print per-column deltas. ``--fail-over PCT`` turns the diff into a CI
  regression gate: exit nonzero when any matching metric moved more than
  PCT percent (``--metrics GLOB`` filters, ``--direction up|down|any``
  picks the gated direction).
* ``profile`` — run a scenario (demo/chaos/overload/bulk) under the
  deterministic kernel profiler; print the hot-subsystem table and write
  ``BENCH_profile_<scenario>.json`` (with a d3-flamegraph-style nested
  JSON under ``flame``; ``--flame PATH`` also writes it standalone).
* ``overhead`` — measure the cost of the observability layer itself:
  runs the E12 overload and E13 bulk workloads with tracing detached,
  sampled (1-in-100), and always-on, and writes
  ``BENCH_obs_overhead.json``.
* ``slo`` — evaluate the declarative SLOs (control-RPC p99, heartbeat
  loss, recovery MTTR, shed rate) continuously over an overload run —
  or offline against a saved export (``--export FILE``) — and exit
  nonzero on violation.
* ``perf-gate`` — measure the kernel's wall-clock cost on short E12
  (overload) and E13 (bulk chaos) slices, normalised by a pure-Python
  calibration loop so the numbers compare across machines, and write
  them as an export (``perf.e12_norm`` / ``perf.e13_norm`` gauges).
  CI diffs the file against ``baselines/perf-kernel.json`` with
  ``obs diff --fail-over 20 --metrics 'perf.*' --direction up`` — the
  kernel performance regression gate.
"""

from __future__ import annotations

import argparse
import json
from typing import Callable, List, Optional

from repro.obs.prof import PROFILE_SCENARIOS
from repro.obs.report import (
    diff_exports,
    gate_diff,
    load_export,
    render_diff,
    render_report,
    save_export,
    write_bench_json,
)

#: Demo scenario knobs.
LOSS_RATE = 0.05
N_MESSAGES = 20
MSG_BYTES = 65_536


def demo_scenario(
    loss_rate: float = LOSS_RATE,
    n_messages: int = N_MESSAGES,
    msg_bytes: int = MSG_BYTES,
    seed: int = 7,
    trace: bool = False,
    instrument: Optional[Callable] = None,
):
    """Three hosts on a lossy LAN pushing srudp, tcp, and mcast traffic.

    Returns the finished :class:`~repro.sim.kernel.Simulator`; its
    ``sim.obs`` holds the metrics (and the trace, when enabled).
    ``instrument(sim)`` runs before any process exists — the profiler
    attaches through it.
    """
    from repro.net import ETHERNET_100, Medium, Topology
    from repro.sim import Simulator
    from repro.transport import EthernetMulticast, SrudpEndpoint, StreamEndpoint

    medium = Medium(
        name="lan",
        bandwidth=ETHERNET_100.bandwidth,
        latency=ETHERNET_100.latency,
        mtu=ETHERNET_100.mtu,
        frame_overhead=ETHERNET_100.frame_overhead,
        loss_rate=loss_rate,
    )
    sim = Simulator(seed=seed)
    if trace:
        sim.obs.tracer.enabled = True
    if instrument is not None:
        instrument(sim)
    topo = Topology(sim)
    seg = topo.add_segment("lan", medium)
    hosts = []
    for i in range(3):
        h = topo.add_host(f"h{i}")
        topo.connect(h, seg)
        hosts.append(h)
    a, b, c = hosts

    srudp_tx = SrudpEndpoint(a, 5000)
    srudp_rx = SrudpEndpoint(b, 5000)
    tcp_tx = StreamEndpoint(a, 6000)
    tcp_rx = StreamEndpoint(b, 6000)
    mcast = {h.name: EthernetMulticast(h, 7000, "lan") for h in hosts}

    def drain(ep, n):
        for _ in range(n):
            yield ep.recv()

    def send_all(ep, n):
        for i in range(n):
            yield ep.send(b.name, ep.port, f"msg-{i}", msg_bytes)

    def send_group(ep, n):
        for i in range(n):
            yield ep.send_group([b.name, c.name], 7000, f"m-{i}", msg_bytes)

    sim.process(drain(srudp_rx, n_messages), name="drain-srudp")
    sim.process(drain(tcp_rx, n_messages), name="drain-tcp")
    sim.process(drain(mcast[b.name], n_messages), name="drain-mcast-b")
    sim.process(drain(mcast[c.name], n_messages), name="drain-mcast-c")
    procs = [
        sim.process(send_all(srudp_tx, n_messages), name="send-srudp"),
        sim.process(send_all(tcp_tx, n_messages), name="send-tcp"),
        sim.process(send_group(mcast[a.name], n_messages), name="send-mcast"),
    ]
    sim.run(until=sim.all_of(procs))
    return sim


def _cmd_report(args: argparse.Namespace) -> int:
    if args.export is not None:
        export = load_export(args.export)
        print(render_report(export, title=f"observability report: {args.export}"))
        return 0
    sim = demo_scenario(trace=args.trace is not None)
    export = sim.obs.export()
    title = (
        "observability report: lossy-LAN demo "
        f"(loss={LOSS_RATE:.0%}, {N_MESSAGES}x{MSG_BYTES}B per transport)"
    )
    print(render_report(export, title=title))
    if args.json is not None:
        save_export(export, args.json)
        print(f"\nexport written to {args.json}")
    if args.trace is not None:
        sim.obs.tracer.dump_jsonl(args.trace)
        print(f"trace ({len(sim.obs.tracer)} records) written to {args.trace}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    base = load_export(args.base)
    new = load_export(args.new)
    print(render_diff(base, new, title=f"observability diff: {args.new} vs {args.base}"))
    if args.fail_over is None:
        return 0
    rows = diff_exports(base, new)
    tripped = gate_diff(rows, args.fail_over, metrics_glob=args.metrics,
                        direction=args.direction)
    print()
    if not tripped:
        print(f"GATE OK: no metric matching {args.metrics!r} moved "
              f"{args.direction} by more than {args.fail_over:g}%")
        return 0
    print(f"GATE FAILED: {len(tripped)} metric change(s) beyond "
          f"{args.fail_over:g}% ({args.direction}):")
    for row in tripped:
        tags = f"[{row['tags']}]" if row["tags"] else ""
        print(f"  {row['metric']}{tags} {row['column']}: "
              f"{row['base']} -> {row['new']} ({row['pct']:+.1f}%)")
    return 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.prof import profile_scenario

    result = profile_scenario(args.scenario, seed=args.seed)
    prof = result["profiler"]
    print(prof.format_report(args.scenario))
    path = write_bench_json(
        f"profile_{args.scenario}",
        result["profile"]["by_subsystem"],
        args.out,
        wall_s=result["profile"]["wall_s"],
        scenario=args.scenario,
        seed=args.seed,
        extra={"ok": result["ok"], "profile": result["profile"],
               "flame": result["flame"]},
    )
    print(f"\nprofile written to {path}")
    if args.flame is not None:
        with open(args.flame, "w") as fh:
            json.dump(result["flame"], fh, indent=2)
            fh.write("\n")
        print(f"flamegraph JSON written to {args.flame}")
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    from repro.bench.e14_obs import format_overhead, obs_overhead

    rows = obs_overhead(seed=args.seed, repeats=args.repeats, quick=args.quick)
    print(format_overhead(rows))
    path = write_bench_json(
        "obs_overhead", rows, args.out, seed=args.seed,
        extra={"repeats": args.repeats, "quick": args.quick},
    )
    print(f"\nwritten to {path}")
    return 0


#: Iterations of the pure-Python calibration spin perf-gate divides by.
#: Sized so the spin takes roughly as long as a workload slice (~0.3 s),
#: so each spin samples the same instantaneous machine load as the
#: workload it is paired with.
CALIBRATION_LOOPS = 400_000


def _calibration_spin() -> int:
    # Allocation- and dispatch-heavy on purpose: the simulator's cost is
    # dominated by object churn and method calls, so a spin with the
    # same profile tracks allocator/GC pressure a pure-arithmetic loop
    # would miss.
    acc = []
    n = 0
    for i in range(CALIBRATION_LOOPS):
        acc.append({"i": i, "t": (i, i & 7)})
        if len(acc) >= 64:
            n += sum(d["t"][1] for d in acc)
            acc.clear()
    return n


def _cmd_perf_gate(args: argparse.Namespace) -> int:
    import time

    from repro.bench.table import format_table
    from repro.robust.chaos import run_bulk_chaos, run_overload

    if args.quick:
        workloads = [
            ("e12", lambda: run_overload(args.seed, saturation=3.0, duration=4.0)),
            ("e13", lambda: run_bulk_chaos(args.seed, object_kb=128, duration=20.0)),
        ]
    else:
        workloads = [
            ("e12", lambda: run_overload(args.seed, saturation=3.0, duration=16.0)),
            ("e13", lambda: run_bulk_chaos(args.seed, object_kb=2048, duration=60.0)),
        ]

    def timed(fn) -> float:
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0

    # Each repeat pairs a calibration spin with the workload run and
    # normalises within the pair, so drifting background load (the CI
    # runner's co-tenants) cancels instead of masquerading as a kernel
    # change. The median pair-ratio is reported: the min would reward
    # a pair whose spin ran slow, the max punish one whose workload did.
    rows = []
    gauges = []
    calibs = []
    for name, fn in workloads:
        pairs = []
        for _ in range(args.repeats):
            calib = timed(_calibration_spin)
            wall = timed(fn)
            calibs.append(calib)
            pairs.append((wall / calib, wall))
        pairs.sort()
        norm, wall = pairs[len(pairs) // 2]
        rows.append({"workload": name, "wall_s": round(wall, 4),
                     "norm": round(norm, 3)})
        # Only the normalised costs live under perf.* — the gate's
        # metric glob — because raw wall seconds differ across machines
        # for reasons that are not regressions.
        gauges.append({"name": f"perf.{name}_norm", "tags": {},
                       "value": round(norm, 3)})
        gauges.append({"name": f"info.{name}_wall_s", "tags": {},
                       "value": round(wall, 4)})
    gauges.append({"name": "info.calib_s", "tags": {},
                   "value": round(min(calibs), 4)})
    gauges.sort(key=lambda g: g["name"])
    print(f"calibration spin: {min(calibs):.4f}s (best of "
          f"{len(calibs)}; norm = workload wall / paired spin wall)")
    print(format_table(rows))
    save_export({"counters": [], "gauges": gauges, "histograms": []}, args.out)
    print(f"\nwritten to {args.out}")
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    from repro.obs.slo import (
        DEFAULT_SLOS,
        SloMonitor,
        evaluate_slos,
        format_slo_results,
        parse_slo,
    )

    slos = tuple(parse_slo(s) for s in args.slo) if args.slo else DEFAULT_SLOS
    if args.export is not None:
        results = evaluate_slos(load_export(args.export), slos)
        title = f"SLO evaluation: {args.export}"
    else:
        from repro.robust.chaos import run_overload

        holder = {}

        def instrument(sim):
            holder["monitor"] = SloMonitor(sim, slos,
                                           interval=args.interval).attach()

        run_overload(args.seed, saturation=args.saturation,
                     adaptive=not args.static, duration=args.duration,
                     instrument=instrument)
        results = holder["monitor"].results()
        mode = "static baseline" if args.static else "adaptive"
        title = (f"SLO evaluation: overload seed={args.seed} "
                 f"saturation={args.saturation:g}x ({mode})")
    print(format_slo_results(results, title=title))
    if args.json is not None:
        with open(args.json, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"results written to {args.json}")
    return 0 if all(r["ok"] for r in results) else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="render and diff simulator observability reports",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="print a per-subsystem metrics report")
    p_report.add_argument(
        "export", nargs="?", default=None,
        help="saved export (or BENCH_*.json) to render; omit to run the demo scenario",
    )
    p_report.add_argument("--json", default=None, metavar="PATH",
                          help="save the demo scenario's export as JSON")
    p_report.add_argument("--trace", default=None, metavar="PATH",
                          help="enable tracing and dump the JSON-lines trace log")
    p_report.set_defaults(fn=_cmd_report)

    p_diff = sub.add_parser("diff", help="diff two saved exports "
                                         "(optionally as a CI regression gate)")
    p_diff.add_argument("base")
    p_diff.add_argument("new")
    p_diff.add_argument("--fail-over", type=float, default=None, metavar="PCT",
                        help="exit nonzero if any gated metric changed by "
                             "more than PCT percent")
    p_diff.add_argument("--metrics", default="*", metavar="GLOB",
                        help="glob of metric names the gate applies to "
                             "(default: all)")
    p_diff.add_argument("--direction", choices=("any", "up", "down"),
                        default="any",
                        help="gate increases, decreases, or both (default any)")
    p_diff.set_defaults(fn=_cmd_diff)

    p_prof = sub.add_parser("profile",
                            help="run a scenario under the kernel profiler")
    p_prof.add_argument("--scenario", choices=PROFILE_SCENARIOS, default="demo")
    p_prof.add_argument("--seed", type=int, default=1)
    p_prof.add_argument("--out", default=".", metavar="DIR",
                        help="directory for BENCH_profile_<scenario>.json "
                             "(default: .)")
    p_prof.add_argument("--flame", default=None, metavar="PATH",
                        help="also write the d3-flamegraph JSON standalone")
    p_prof.set_defaults(fn=_cmd_profile)

    p_over = sub.add_parser("overhead",
                            help="measure tracing overhead (off/sampled/on) "
                                 "on the E12/E13 workloads")
    p_over.add_argument("--seed", type=int, default=1)
    p_over.add_argument("--repeats", type=int, default=3,
                        help="wall-clock repeats per cell; min is reported "
                             "(default 3)")
    p_over.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI smoke)")
    p_over.add_argument("--out", default=".", metavar="DIR",
                        help="directory for BENCH_obs_overhead.json (default: .)")
    p_over.set_defaults(fn=_cmd_overhead)

    p_perf = sub.add_parser(
        "perf-gate",
        help="measure normalised kernel cost on E12/E13 slices "
             "(diff the output against baselines/perf-kernel.json)",
    )
    p_perf.add_argument("--seed", type=int, default=1)
    p_perf.add_argument("--repeats", type=int, default=5,
                        help="spin+workload pairs per workload; the median "
                             "pair-ratio is reported (default 5)")
    p_perf.add_argument("--quick", action="store_true",
                        help="smaller workload slices (smoke tests)")
    p_perf.add_argument("--out", default="perf-kernel.json", metavar="PATH",
                        help="export file to write (default perf-kernel.json)")
    p_perf.set_defaults(fn=_cmd_perf_gate)

    p_slo = sub.add_parser("slo", help="evaluate SLOs over an overload run "
                                       "or a saved export")
    p_slo.add_argument("--seed", type=int, default=1)
    p_slo.add_argument("--saturation", type=float, default=5.0,
                       help="offered load as a multiple of site capacity "
                            "(default 5.0)")
    p_slo.add_argument("--static", action="store_true",
                       help="baseline: fixed timeouts, no breakers, no "
                            "priority lanes (the natural SLO breach)")
    p_slo.add_argument("--duration", type=float, default=32.0)
    p_slo.add_argument("--interval", type=float, default=1.0,
                       help="virtual seconds between in-run SLO samples "
                            "(default 1.0)")
    p_slo.add_argument("--slo", action="append", default=None, metavar="SPEC",
                       help="name:metric[:column]:op:threshold (repeatable; "
                            "default: the built-in SLO set)")
    p_slo.add_argument("--export", default=None, metavar="FILE",
                       help="evaluate offline against a saved export instead "
                            "of simulating")
    p_slo.add_argument("--json", default=None, metavar="PATH",
                       help="save the per-SLO verdicts as JSON")
    p_slo.set_defaults(fn=_cmd_slo)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
