"""``python -m repro obs`` — render and diff observability reports.

Subcommands:

* ``report`` — no argument: run the built-in lossy-LAN demo scenario
  (srudp, tcp, and ethernet multicast traffic under 5% frame loss) and
  print the per-subsystem metrics report — p50/p95/p99 message latency
  and retransmit counts per transport. With a file argument: render a
  previously saved export (or ``BENCH_*.json``) instead of simulating.
  ``--json PATH`` saves the export; ``--trace PATH`` enables tracing and
  dumps the JSON-lines trace log.
* ``diff BASE NEW`` — align two saved exports by (metric, tags) and
  print per-column deltas.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.obs.report import load_export, render_diff, render_report, save_export

#: Demo scenario knobs.
LOSS_RATE = 0.05
N_MESSAGES = 20
MSG_BYTES = 65_536


def demo_scenario(
    loss_rate: float = LOSS_RATE,
    n_messages: int = N_MESSAGES,
    msg_bytes: int = MSG_BYTES,
    seed: int = 7,
    trace: bool = False,
):
    """Three hosts on a lossy LAN pushing srudp, tcp, and mcast traffic.

    Returns the finished :class:`~repro.sim.kernel.Simulator`; its
    ``sim.obs`` holds the metrics (and the trace, when enabled).
    """
    from repro.net import ETHERNET_100, Medium, Topology
    from repro.sim import Simulator
    from repro.transport import EthernetMulticast, SrudpEndpoint, StreamEndpoint

    medium = Medium(
        name="lan",
        bandwidth=ETHERNET_100.bandwidth,
        latency=ETHERNET_100.latency,
        mtu=ETHERNET_100.mtu,
        frame_overhead=ETHERNET_100.frame_overhead,
        loss_rate=loss_rate,
    )
    sim = Simulator(seed=seed)
    if trace:
        sim.obs.tracer.enabled = True
    topo = Topology(sim)
    seg = topo.add_segment("lan", medium)
    hosts = []
    for i in range(3):
        h = topo.add_host(f"h{i}")
        topo.connect(h, seg)
        hosts.append(h)
    a, b, c = hosts

    srudp_tx = SrudpEndpoint(a, 5000)
    srudp_rx = SrudpEndpoint(b, 5000)
    tcp_tx = StreamEndpoint(a, 6000)
    tcp_rx = StreamEndpoint(b, 6000)
    mcast = {h.name: EthernetMulticast(h, 7000, "lan") for h in hosts}

    def drain(ep, n):
        for _ in range(n):
            yield ep.recv()

    def send_all(ep, n):
        for i in range(n):
            yield ep.send(b.name, ep.port, f"msg-{i}", msg_bytes)

    def send_group(ep, n):
        for i in range(n):
            yield ep.send_group([b.name, c.name], 7000, f"m-{i}", msg_bytes)

    sim.process(drain(srudp_rx, n_messages), name="drain-srudp")
    sim.process(drain(tcp_rx, n_messages), name="drain-tcp")
    sim.process(drain(mcast[b.name], n_messages), name="drain-mcast-b")
    sim.process(drain(mcast[c.name], n_messages), name="drain-mcast-c")
    procs = [
        sim.process(send_all(srudp_tx, n_messages), name="send-srudp"),
        sim.process(send_all(tcp_tx, n_messages), name="send-tcp"),
        sim.process(send_group(mcast[a.name], n_messages), name="send-mcast"),
    ]
    sim.run(until=sim.all_of(procs))
    return sim


def _cmd_report(args: argparse.Namespace) -> int:
    if args.export is not None:
        export = load_export(args.export)
        print(render_report(export, title=f"observability report: {args.export}"))
        return 0
    sim = demo_scenario(trace=args.trace is not None)
    export = sim.obs.export()
    title = (
        "observability report: lossy-LAN demo "
        f"(loss={LOSS_RATE:.0%}, {N_MESSAGES}x{MSG_BYTES}B per transport)"
    )
    print(render_report(export, title=title))
    if args.json is not None:
        save_export(export, args.json)
        print(f"\nexport written to {args.json}")
    if args.trace is not None:
        sim.obs.tracer.dump_jsonl(args.trace)
        print(f"trace ({len(sim.obs.tracer)} records) written to {args.trace}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    base = load_export(args.base)
    new = load_export(args.new)
    print(render_diff(base, new, title=f"observability diff: {args.new} vs {args.base}"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="render and diff simulator observability reports",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="print a per-subsystem metrics report")
    p_report.add_argument(
        "export", nargs="?", default=None,
        help="saved export (or BENCH_*.json) to render; omit to run the demo scenario",
    )
    p_report.add_argument("--json", default=None, metavar="PATH",
                          help="save the demo scenario's export as JSON")
    p_report.add_argument("--trace", default=None, metavar="PATH",
                          help="enable tracing and dump the JSON-lines trace log")
    p_report.set_defaults(fn=_cmd_report)

    p_diff = sub.add_parser("diff", help="diff two saved exports")
    p_diff.add_argument("base")
    p_diff.add_argument("new")
    p_diff.set_defaults(fn=_cmd_diff)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
