"""Span-based tracing and causal message traces.

Two cooperating ideas:

* **Spans** measure named operations: virtual start/end times, tags,
  nesting (a span started while another is open records it as parent),
  and an outcome ("ok" or the exception type). Closing a span appends one
  trace record and feeds a ``span.<name>`` duration histogram.

* **Trace ids** follow causality across components. A transport allocates
  one id per message send and stamps it on every frame that message
  produces — first transmissions, selective retransmits, reroutes over a
  different interface, gateway forwards — so one logical send can be
  reconstructed end-to-end from the record stream with a single filter.

Records are plain dicts in a bounded ring buffer (oldest evicted first,
with a dropped counter) so week-long simulated runs cannot grow memory
without limit. ``dump_jsonl`` / ``to_jsonl`` export them as JSON lines.

Tracing is zero-cost when off: emit sites guard on ``tracer.enabled``
before building any record, and frame stamping uses
:meth:`Tracer.maybe_trace_id` so a disabled tracer never even allocates
ids. When on, ``sample_rate`` keeps a deterministic 1-in-N subset of
event/span records (counter-based, so the same run keeps the same
records); metrics and span-duration histograms stay exact regardless —
sampling thins the causal record stream, never the quantitative one.

Caveat on nesting: the simulator interleaves many processes in one OS
thread, so the "current span" stack is global, not per-process. Spans
opened and closed without yielding to the kernel nest exactly; spans held
across yields may record an interleaved sibling as parent. For causal
links across processes, pass trace ids explicitly.
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional

#: Default ring-buffer capacity (records).
DEFAULT_CAPACITY = 100_000


class Span:
    """One traced operation; use as a context manager or call ``finish``."""

    __slots__ = ("tracer", "name", "trace_id", "span_id", "parent_id",
                 "tags", "start", "end", "outcome")

    def __init__(self, tracer: "Tracer", name: str,
                 trace_id: Optional[int], tags: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = next(tracer._span_ids)
        parent = tracer.current_span
        self.parent_id = parent.span_id if parent is not None else None
        if trace_id is None:
            trace_id = parent.trace_id if parent is not None else tracer.new_trace_id()
        self.trace_id = trace_id
        self.tags = tags
        self.start = tracer.clock()
        self.end: Optional[float] = None
        self.outcome: Optional[str] = None

    def annotate(self, **tags: Any) -> "Span":
        self.tags.update(tags)
        return self

    def finish(self, outcome: str = "ok") -> None:
        """Close the span (idempotent) and emit its trace record."""
        if self.end is not None:
            return
        self.end = self.tracer.clock()
        self.outcome = outcome
        self.tracer._close_span(self)

    def __enter__(self) -> "Span":
        self.tracer._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish("ok" if exc_type is None else f"error:{exc_type.__name__}")
        return None


class Tracer:
    """Ring-buffered sink for trace events and spans."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = False,
        capacity: int = DEFAULT_CAPACITY,
        metrics=None,
    ) -> None:
        self.clock = clock or (lambda: 0.0)
        self.enabled = enabled
        self.capacity = capacity
        self.metrics = metrics  # optional MetricsRegistry for span durations
        self.dropped = 0
        self.sampled_out = 0
        self._sample_every = 1
        self._sample_tick = 0
        self._records: Deque[Dict[str, Any]] = deque()
        self._ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._stack: List[Span] = []

    # -- ids & ambient context ---------------------------------------------
    def new_trace_id(self) -> int:
        return next(self._ids)

    def maybe_trace_id(self) -> Optional[int]:
        """A fresh trace id when tracing is on, else None.

        Frame-stamping sites use this so a detached tracer costs one
        attribute test — no id allocation, and frames carry ``None``.
        """
        return next(self._ids) if self.enabled else None

    # -- sampling -----------------------------------------------------------
    @property
    def sample_rate(self) -> float:
        """Fraction of event/span records kept (1.0 = keep everything)."""
        return 1.0 / self._sample_every

    @sample_rate.setter
    def sample_rate(self, rate: float) -> None:
        if not rate > 0.0:
            raise ValueError(f"sample rate must be positive, got {rate!r}")
        self._sample_every = max(1, round(1.0 / min(rate, 1.0)))
        self._sample_tick = 0

    def _keep(self) -> bool:
        """Deterministic counter-based keep/drop decision (1-in-N)."""
        if self._sample_every == 1:
            return True
        self._sample_tick += 1
        if self._sample_tick >= self._sample_every:
            self._sample_tick = 0
            return True
        self.sampled_out += 1
        return False

    @property
    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @property
    def current_trace_id(self) -> Optional[int]:
        span = self.current_span
        return span.trace_id if span is not None else None

    # -- recording ---------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> None:
        if self.capacity > 0 and len(self._records) >= self.capacity:
            self._records.popleft()
            self.dropped += 1
        self._records.append(record)

    def event(self, kind: str, trace_id: Optional[int] = None, **fields: Any) -> None:
        """Record one point event (no-op unless tracing is enabled)."""
        if not self.enabled or not self._keep():
            return
        record: Dict[str, Any] = {"t": self.clock(), "kind": kind}
        tid = trace_id if trace_id is not None else self.current_trace_id
        if tid is not None:
            record["trace"] = tid
        record.update(fields)
        self._append(record)

    def span(self, name: str, trace_id: Optional[int] = None, **tags: Any) -> Span:
        """A span starting now. ``with tracer.span(...):`` or ``.finish()``."""
        return Span(self, name, trace_id, tags)

    def _close_span(self, span: Span) -> None:
        try:
            self._stack.remove(span)
        except ValueError:
            pass  # finished without __enter__, or stack already unwound
        if self.metrics is not None:
            self.metrics.histogram(f"span.{span.name}").observe(span.end - span.start)
        if not self.enabled or not self._keep():
            return
        record: Dict[str, Any] = {
            "t": span.start,
            "kind": "span",
            "name": span.name,
            "trace": span.trace_id,
            "span": span.span_id,
            "end": span.end,
            "outcome": span.outcome,
        }
        if span.parent_id is not None:
            record["parent"] = span.parent_id
        if span.tags:
            record.update(span.tags)
        self._append(record)

    # -- inspection & export -----------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> List[Dict[str, Any]]:
        return list(self._records)

    def events(self, trace_id: Optional[int] = None,
               kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """Records filtered by trace id and/or kind, in recorded order."""
        out = []
        for rec in self._records:
            if trace_id is not None and rec.get("trace") != trace_id:
                continue
            if kind is not None and rec.get("kind") != kind:
                continue
            out.append(rec)
        return out

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0
        self.sampled_out = 0

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(rec, default=str) for rec in self._records)

    def dump_jsonl(self, path: str) -> int:
        """Write all records as JSON lines; returns the record count."""
        with open(path, "w") as fh:
            for rec in self._records:
                fh.write(json.dumps(rec, default=str))
                fh.write("\n")
        return len(self._records)


def load_jsonl(lines: Iterable[str]) -> List[Dict[str, Any]]:
    """Parse a JSONL trace dump back into records (blank lines skipped)."""
    return [json.loads(line) for line in lines if line.strip()]
