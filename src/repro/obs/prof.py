"""Deterministic kernel profiler: where does the simulator spend its time?

The profiler hooks the two hot points of :class:`repro.sim.kernel.
Simulator` — ``_schedule`` (heap pushes) and ``step`` (heap pops plus
callback dispatch) — and attributes the wall-clock cost of every event
callback to the component that owns it. Attribution uses what the kernel
already knows: a callback bound to a :class:`~repro.sim.process.Process`
carries the process name (``srudp:h0:5000``, ``nic:10.0.0.1(h0.eth0)``,
``ovl-load:w1``...), whose leading token is the subsystem and whose
second token names the host; unbound callbacks fall back to the module
that defined them.

Alongside wall-clock, the profiler counts the kernel-level work the
ROADMAP's 10x item targets: event-heap pushes/pops and high-water queue
length, timer churn (``Timeout`` events plus wheel timers noted through
:meth:`KernelProfiler.note_timer`), Frame constructions (the simulator's
per-sim frame-id counter), and bytes serialized onto wires (charged by
the NIC tx paths).

Everything is gated on ``sim._prof``: a detached simulator pays one
``is not None`` test per schedule and per step, nothing else. Counts and
attribution are deterministic for a given seed; only the wall-clock
figures vary run to run, which is why the report keeps them separate.

``python -m repro obs profile --scenario <s>`` runs a scenario under the
profiler and writes ``BENCH_profile_<s>.json`` plus a d3-flamegraph-style
nested JSON (root -> subsystem -> host -> event type, value = µs).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.events import Event, Timeout
from repro.sim.kernel import TimerHandle

#: Scenarios ``profile_scenario`` knows how to run.
PROFILE_SCENARIOS = ("demo", "chaos", "overload", "bulk")


def _module_subsystem(mod: Optional[str]) -> str:
    """``repro.transport.base`` -> ``transport``; anything else, last part."""
    if not mod:
        return "unknown"
    parts = mod.split(".")
    if parts[0] == "repro" and len(parts) > 1:
        return parts[1]
    return parts[-1]


def _split_name(name: str) -> Tuple[str, Optional[str]]:
    """(subsystem, host) from a process name.

    ``srudp:h0:5000`` -> (srudp, h0); ``nic:10.0.0.1(h0.eth0)`` -> (nic,
    h0); ``drain-mcast-b`` -> (drain-mcast-b, None).
    """
    parts = name.split(":")
    sub = parts[0] or "anon"
    host: Optional[str] = None
    if len(parts) > 1 and parts[1]:
        p = parts[1]
        if "(" in p:
            host = p.split("(", 1)[1].rstrip(")").split(".", 1)[0]
        else:
            host = p
    return sub, host


class KernelProfiler:
    """Attributes kernel wall-clock and event counts while attached.

    Use :meth:`attach` / :meth:`detach` (or run a scenario through
    :func:`profile_scenario`); while attached, the kernel routes every
    popped event through :meth:`run_event` and notes every push through
    :meth:`note_schedule`.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.events = 0
        self.callbacks = 0
        self.heap_pushes = 0
        self.heap_pops = 0
        self.queue_max = 0
        self.timers_scheduled = 0
        self.wire_bytes = 0
        self.wire_frames = 0
        #: (subsystem, host, event type) -> [wall seconds, callback count]
        self.cells: Dict[Tuple[str, Optional[str], str], List[float]] = {}
        self._frames0 = 0
        self._frames1 = 0
        self._sim = None
        self._attached_at: Optional[float] = None
        self.wall_s: float = 0.0
        #: Memoized owner-name -> (subsystem, host) attribution; parsing
        #: a process name is pure, so splitting each distinct name once
        #: is enough.
        self._owner_cache: Dict[str, Tuple[str, Optional[str]]] = {}

    # -- kernel hooks -------------------------------------------------------
    def attach(self, sim) -> "KernelProfiler":
        sim._prof = self
        self._sim = sim
        self._frames0 = sim.frames_constructed
        self._attached_at = self.clock()
        return self

    def detach(self, sim) -> "KernelProfiler":
        if sim._prof is self:
            sim._prof = None
        self._frames1 = sim.frames_constructed
        if self._attached_at is not None:
            self.wall_s = self.clock() - self._attached_at
            self._attached_at = None
        return self

    def note_schedule(self, event: Event, queue_len: int) -> None:
        """Called by ``Simulator._schedule`` after the heap push."""
        self.heap_pushes += 1
        if queue_len > self.queue_max:
            self.queue_max = queue_len
        if isinstance(event, Timeout):
            self.timers_scheduled += 1

    def note_timer(self, handle: TimerHandle) -> None:
        """Called by ``Simulator.schedule_timer`` for every wheel timer."""
        self.timers_scheduled += 1

    def run_event(self, event: Event) -> None:
        """Process one popped event, timing each callback individually.

        Replicates :meth:`Event._process` so the per-callback clock reads
        surround exactly one callback. An Event subclass that overrides
        ``_process`` (none in-tree does) is timed as a single block so
        behaviour is never changed by profiling.
        """
        self.heap_pops += 1
        self.events += 1
        cls = type(event)
        tname = cls.__name__
        if cls is TimerHandle:
            t0 = self.clock()
            event._process()
            if event.fired:
                self.callbacks += 1
                sub, host = _split_name(event.owner) if event.owner else ("timer", None)
                self._charge(sub, host, "Timer", self.clock() - t0)
            return
        if cls._process is not Event._process:
            t0 = self.clock()
            event._process()
            owner = getattr(event, "prof_owner", None)
            if owner is None:
                self._charge("kernel", None, tname, self.clock() - t0)
            else:
                self._charge(owner[0], owner[1], tname, self.clock() - t0)
            return
        if event._processed:
            return
        event._processed = True
        callbacks, event.callbacks = event.callbacks, None
        if not callbacks:
            self._charge("kernel", None, tname, 0.0)
            return
        clock = self.clock
        for fn in callbacks:
            t0 = clock()
            fn(event)
            dt = clock() - t0
            self.callbacks += 1
            sub, host = self._owner(fn)
            self._charge(sub, host, tname, dt)

    # -- attribution --------------------------------------------------------
    def _owner(self, fn: Callable) -> Tuple[str, Optional[str]]:
        obj = getattr(fn, "__self__", None)
        if obj is not None:
            name = getattr(obj, "name", None)
            if isinstance(name, str) and name:
                cached = self._owner_cache.get(name)
                if cached is None:
                    cached = self._owner_cache[name] = _split_name(name)
                return cached
            return _module_subsystem(type(obj).__module__), None
        return _module_subsystem(getattr(fn, "__module__", None)), None

    def _charge(self, sub: str, host: Optional[str], etype: str, dt: float) -> None:
        key = (sub, host, etype)
        cell = self.cells.get(key)
        if cell is None:
            cell = self.cells[key] = [0.0, 0]
        cell[0] += dt
        cell[1] += 1

    # -- reporting ----------------------------------------------------------
    @property
    def frames_constructed(self) -> int:
        if self._attached_at is None or self._sim is None:
            end = self._frames1
        else:
            end = self._sim.frames_constructed
        return end - self._frames0

    def _aggregate(self, index: int) -> List[Dict[str, Any]]:
        agg: Dict[str, List[float]] = {}
        for key, (wall, count) in self.cells.items():
            k = key[index]
            label = k if k is not None else "-"
            cell = agg.setdefault(label, [0.0, 0])
            cell[0] += wall
            cell[1] += count
        total = sum(w for w, _ in agg.values()) or 1.0
        field = ("subsystem", "host", "event_type")[index]
        rows = [
            {field: label, "wall_ms": round(wall * 1000, 3),
             "share_pct": round(wall / total * 100, 2), "callbacks": count}
            for label, (wall, count) in agg.items()
        ]
        rows.sort(key=lambda r: (-r["wall_ms"], r[field]))
        return rows

    def top_subsystems(self, n: int = 3) -> List[str]:
        """The *n* hottest subsystems by attributed wall-clock."""
        return [r["subsystem"] for r in self._aggregate(0)[:n]]

    def export(self) -> Dict[str, Any]:
        by_sub = self._aggregate(0)
        return {
            "events": self.events,
            "callbacks": self.callbacks,
            "heap": {
                "pushes": self.heap_pushes,
                "pops": self.heap_pops,
                "queue_max": self.queue_max,
            },
            "timers_scheduled": self.timers_scheduled,
            "frames_constructed": self.frames_constructed,
            "wire": {"bytes": self.wire_bytes, "frames": self.wire_frames},
            "wall_s": round(self.wall_s, 6),
            "attributed_wall_s": round(
                sum(w for w, _ in self.cells.values()), 6
            ),
            "by_subsystem": by_sub,
            "by_host": self._aggregate(1),
            "by_event_type": self._aggregate(2),
            "top": [r["subsystem"] for r in by_sub[:3]],
        }

    def flamegraph(self) -> Dict[str, Any]:
        """d3-flamegraph nesting: root -> subsystem -> host -> event type.

        Values are attributed microseconds (ints); every level's value is
        the sum of its children, so any flamegraph renderer that accepts
        the d3 JSON shape can draw it directly.
        """
        tree: Dict[str, Dict[Optional[str], Dict[str, float]]] = {}
        for (sub, host, etype), (wall, _count) in self.cells.items():
            tree.setdefault(sub, {}).setdefault(host, {})
            tree[sub][host][etype] = tree[sub][host].get(etype, 0.0) + wall

        def us(x: float) -> int:
            return int(round(x * 1e6))

        children = []
        for sub in sorted(tree):
            hosts = []
            for host in sorted(tree[sub], key=lambda h: h or ""):
                leaves = [
                    {"name": etype, "value": us(wall)}
                    for etype, wall in sorted(tree[sub][host].items())
                ]
                hosts.append({
                    "name": host if host is not None else "-",
                    "value": sum(leaf["value"] for leaf in leaves),
                    "children": leaves,
                })
            children.append({
                "name": sub,
                "value": sum(h["value"] for h in hosts),
                "children": hosts,
            })
        children.sort(key=lambda c: -c["value"])
        return {
            "name": "kernel",
            "value": sum(c["value"] for c in children),
            "children": children,
        }

    def format_report(self, scenario: str = "") -> str:
        """Human-readable profile summary for the CLI."""
        ex = self.export()
        title = f"kernel profile{f': {scenario}' if scenario else ''}"
        lines = [
            f"== {title} ==",
            f"events processed : {ex['events']} "
            f"({ex['callbacks']} callbacks, "
            f"{ex['timers_scheduled']} timers scheduled)",
            f"event heap       : {ex['heap']['pushes']} pushes / "
            f"{ex['heap']['pops']} pops, queue high-water "
            f"{ex['heap']['queue_max']}",
            f"frames           : {ex['frames_constructed']} constructed, "
            f"{ex['wire']['frames']} serialized onto wires "
            f"({ex['wire']['bytes']} bytes)",
            f"wall clock       : {ex['wall_s'] * 1000:.1f}ms total, "
            f"{ex['attributed_wall_s'] * 1000:.1f}ms attributed to callbacks",
            "",
            "hot subsystems:",
        ]
        for r in ex["by_subsystem"][:10]:
            lines.append(
                f"  {r['subsystem']:16s} {r['wall_ms']:9.2f}ms "
                f"{r['share_pct']:6.2f}%  {r['callbacks']} callbacks"
            )
        lines.append("")
        lines.append("top-3 hot spots: " + ", ".join(ex["top"]))
        return "\n".join(lines)


def profile_scenario(scenario: str, seed: int = 1, **kw: Any) -> Dict[str, Any]:
    """Run one scenario under the profiler; returns a result dict.

    ``{"scenario", "seed", "ok", "profile", "flame"}`` — ``profile`` is
    :meth:`KernelProfiler.export`, ``flame`` the nested flamegraph JSON.
    """
    prof = KernelProfiler()
    ok = True
    if scenario == "demo":
        from repro.obs.cli import demo_scenario

        kw.setdefault("seed", seed)
        sim = demo_scenario(instrument=prof.attach, **kw)
        prof.detach(sim)
    elif scenario == "chaos":
        from repro.robust.chaos import run_chaos

        holder: Dict[str, Any] = {}

        def instrument(sim):
            holder["sim"] = sim
            prof.attach(sim)

        kw.setdefault("duration", 60.0)
        kw.setdefault("total", 30)
        report = run_chaos(seed, instrument=instrument, **kw)
        prof.detach(holder["sim"])
        ok = report["ok"]
    elif scenario == "overload":
        from repro.robust.chaos import run_overload

        holder = {}

        def instrument(sim):
            holder["sim"] = sim
            prof.attach(sim)

        kw.setdefault("duration", 24.0)
        kw.setdefault("saturation", 3.0)
        report = run_overload(seed, instrument=instrument, **kw)
        prof.detach(holder["sim"])
        ok = report["ok"]
    elif scenario == "bulk":
        from repro.robust.chaos import run_bulk_chaos

        holder = {}

        def instrument(sim):
            holder["sim"] = sim
            prof.attach(sim)

        kw.setdefault("object_kb", 1024)
        report = run_bulk_chaos(seed, instrument=instrument, **kw)
        prof.detach(holder["sim"])
        ok = report["ok"]
    else:
        raise ValueError(
            f"unknown profile scenario {scenario!r} (known: {PROFILE_SCENARIOS})"
        )
    return {
        "scenario": scenario,
        "seed": seed,
        "ok": ok,
        "profiler": prof,
        "profile": prof.export(),
        "flame": prof.flamegraph(),
    }
