"""Tagged metrics: counters, gauges, and log-bucketed histograms.

The registry is the quantitative half of the observability layer (the
tracer in :mod:`repro.obs.tracing` is the causal half). Components ask it
for a metric once — ``registry.histogram("transport.msg_latency",
proto="srudp")`` — cache the returned object, and feed it on the hot
path; identical (name, tags) pairs always resolve to the same object, so
every SRUDP endpoint in a simulation accumulates into one histogram.

Histograms are HDR-style: observations land in geometric buckets growing
by ``GROWTH`` per step, so quantile estimates carry a bounded *relative*
error (≤ ``GROWTH - 1``) over an unbounded dynamic range at O(1) memory
per occupied bucket. Count, sum, min and max are tracked exactly.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Geometric bucket growth factor. 1.1 keeps quantile estimates within
#: 10 % of the true value, plenty for p50/p95/p99 latency comparisons.
GROWTH = 1.1

_LOG_GROWTH = math.log(GROWTH)

TagTuple = Tuple[Tuple[str, str], ...]


def _tag_key(tags: Dict[str, Any]) -> TagTuple:
    return tuple(sorted((k, str(v)) for k, v in tags.items()))


def _flat_name(name: str, tags: TagTuple) -> str:
    if not tags:
        return name
    inner = ",".join(f"{k}={v}" for k, v in tags)
    return f"{name}{{{inner}}}"


class MetricCounter:
    """A monotonically increasing tagged counter."""

    __slots__ = ("name", "tags", "value")

    def __init__(self, name: str, tags: TagTuple = ()) -> None:
        self.name = name
        self.tags = tags
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MetricCounter {_flat_name(self.name, self.tags)}={self.value}>"


class Gauge:
    """A tagged point-in-time value (load, queue depth, table size)."""

    __slots__ = ("name", "tags", "value", "updated_at")

    def __init__(self, name: str, tags: TagTuple = ()) -> None:
        self.name = name
        self.tags = tags
        self.value = 0.0
        self.updated_at: Optional[float] = None

    def set(self, value: float, at: Optional[float] = None) -> None:
        self.value = value
        self.updated_at = at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Gauge {_flat_name(self.name, self.tags)}={self.value}>"


class Histogram:
    """Log-bucketed histogram with exact count/sum/min/max.

    Bucket *i* covers ``(GROWTH**(i-1), GROWTH**i]``; an observation is
    charged to the bucket whose upper bound first reaches it, and
    quantiles report that upper bound, clamped into the exact observed
    [min, max]. Values ≤ 0 land in a dedicated underflow bucket reported
    as 0.0 (virtual-time durations are never negative in practice).
    """

    __slots__ = ("name", "tags", "counts", "n", "sum", "_min", "_max")

    def __init__(self, name: str, tags: TagTuple = ()) -> None:
        self.name = name
        self.tags = tags
        self.counts: Dict[Optional[int], int] = {}  # None == underflow (v <= 0)
        self.n = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        self.n += 1
        self.sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        idx = None if value <= 0 else math.ceil(math.log(value) / _LOG_GROWTH)
        self.counts[idx] = self.counts.get(idx, 0) + 1

    # -- summary statistics ------------------------------------------------
    @property
    def mean(self) -> float:
        return self.sum / self.n if self.n else 0.0

    @property
    def min(self) -> float:
        return self._min if self.n else 0.0

    @property
    def max(self) -> float:
        return self._max if self.n else 0.0

    def percentile(self, p: float) -> float:
        """Estimated value at percentile *p* (0..100), ±10 % relative."""
        if self.n == 0:
            return 0.0
        target = max(1, math.ceil(self.n * p / 100.0))
        cum = 0
        # None (underflow) sorts first: it holds the smallest observations.
        for idx in sorted(self.counts, key=lambda i: -math.inf if i is None else i):
            cum += self.counts[idx]
            if cum >= target:
                est = 0.0 if idx is None else GROWTH**idx
                return min(max(est, self._min), self._max)
        return self._max  # pragma: no cover - cum always reaches n

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Histogram {_flat_name(self.name, self.tags)} n={self.n} "
            f"p50={self.p50:.4g} p99={self.p99:.4g}>"
        )


class MetricsRegistry:
    """Interns (name, tags) -> metric and exports them all at once."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.clock = clock or (lambda: 0.0)
        self._counters: Dict[Tuple[str, TagTuple], MetricCounter] = {}
        self._gauges: Dict[Tuple[str, TagTuple], Gauge] = {}
        self._histograms: Dict[Tuple[str, TagTuple], Histogram] = {}

    # -- metric factories (interned) ---------------------------------------
    def counter(self, name: str, **tags: Any) -> MetricCounter:
        key = (name, _tag_key(tags))
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = MetricCounter(name, key[1])
        return c

    def gauge(self, name: str, **tags: Any) -> Gauge:
        key = (name, _tag_key(tags))
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(name, key[1])
        return g

    def histogram(self, name: str, **tags: Any) -> Histogram:
        key = (name, _tag_key(tags))
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(name, key[1])
        return h

    # -- export ------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Flat name->number view (histograms expand to sub-keys)."""
        out: Dict[str, float] = {}
        for (_, _), c in self._counters.items():
            out[_flat_name(c.name, c.tags)] = c.value
        for (_, _), g in self._gauges.items():
            out[_flat_name(g.name, g.tags)] = g.value
        for (_, _), h in self._histograms.items():
            base = _flat_name(h.name, h.tags)
            out[f"{base}.count"] = float(h.n)
            out[f"{base}.mean"] = h.mean
            out[f"{base}.p50"] = h.p50
            out[f"{base}.p95"] = h.p95
            out[f"{base}.p99"] = h.p99
            out[f"{base}.max"] = h.max
        return out

    def export(self) -> Dict[str, List[Dict[str, Any]]]:
        """JSON-serialisable structured dump (the ``obs report`` input)."""
        return {
            "counters": [
                {"name": c.name, "tags": dict(c.tags), "value": c.value}
                for c in self._counters.values()
            ],
            "gauges": [
                {"name": g.name, "tags": dict(g.tags), "value": g.value}
                for g in self._gauges.values()
            ],
            "histograms": [
                {
                    "name": h.name,
                    "tags": dict(h.tags),
                    "count": h.n,
                    "sum": h.sum,
                    "mean": h.mean,
                    "min": h.min,
                    "max": h.max,
                    "p50": h.p50,
                    "p95": h.p95,
                    "p99": h.p99,
                }
                for h in self._histograms.values()
            ],
        }
