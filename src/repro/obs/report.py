"""Rendering and diffing of metrics exports.

A *report* is the human view of :meth:`MetricsRegistry.export`: one table
per subsystem (the metric-name prefix before the first dot — transport,
rcds, rm, daemon, rpc, span, ...), counters and gauges as single values,
histograms as count/mean/p50/p95/p99/max columns. ``diff_exports`` aligns
two exports by (name, tags) and reports deltas, which is how a perf PR
shows its before/after.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple


def _tags_str(tags: Dict[str, str]) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(tags.items()))


def _subsystem(name: str) -> str:
    return name.split(".", 1)[0]


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.001:
            return f"{v:.3g}"
        return f"{v:.4f}".rstrip("0").rstrip(".")
    return str(v)


def _render_table(title: str, rows: List[Dict[str, Any]], columns: List[str]) -> str:
    widths = {c: len(c) for c in columns}
    rendered = [{c: _fmt(r.get(c, "")) for c in columns} for r in rows]
    for r in rendered:
        for c in columns:
            widths[c] = max(widths[c], len(r[c]))
    lines = [title, "  " + "  ".join(c.ljust(widths[c]) for c in columns)]
    lines.append("  " + "  ".join("-" * widths[c] for c in columns))
    for r in rendered:
        lines.append("  " + "  ".join(r[c].ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _report_rows(export: Dict[str, Any]) -> Dict[str, List[Dict[str, Any]]]:
    """Per-subsystem rows from an export dict (see MetricsRegistry.export)."""
    by_sub: Dict[str, List[Dict[str, Any]]] = {}
    for kind in ("counters", "gauges"):
        for m in export.get(kind, []):
            by_sub.setdefault(_subsystem(m["name"]), []).append(
                {"metric": m["name"], "tags": _tags_str(m["tags"]), "value": m["value"]}
            )
    for h in export.get("histograms", []):
        by_sub.setdefault(_subsystem(h["name"]), []).append(
            {
                "metric": h["name"],
                "tags": _tags_str(h["tags"]),
                "count": h["count"],
                "mean": h["mean"],
                "p50": h["p50"],
                "p95": h["p95"],
                "p99": h["p99"],
                "max": h["max"],
            }
        )
    for rows in by_sub.values():
        rows.sort(key=lambda r: (r["metric"], r["tags"]))
    return by_sub


def render_report(export: Dict[str, Any], title: str = "observability report") -> str:
    """The full per-subsystem report as one printable string."""
    by_sub = _report_rows(export)
    if not by_sub:
        return f"== {title} ==\n(no metrics recorded)"
    chunks = [f"== {title} =="]
    for sub in sorted(by_sub):
        rows = by_sub[sub]
        has_hist = any("p50" in r for r in rows)
        columns = ["metric", "tags", "value"]
        if has_hist:
            columns = ["metric", "tags", "value", "count", "mean", "p50", "p95", "p99", "max"]
        chunks.append(_render_table(f"-- {sub} --", rows, columns))
    return "\n\n".join(chunks)


def _flatten(export: Dict[str, Any]) -> Dict[Tuple[str, str], Dict[str, float]]:
    """(name, tags) -> {column: value} for diff alignment."""
    flat: Dict[Tuple[str, str], Dict[str, float]] = {}
    for kind in ("counters", "gauges"):
        for m in export.get(kind, []):
            flat[(m["name"], _tags_str(m["tags"]))] = {"value": m["value"]}
    for h in export.get("histograms", []):
        flat[(h["name"], _tags_str(h["tags"]))] = {
            "count": h["count"], "mean": h["mean"],
            "p50": h["p50"], "p95": h["p95"], "p99": h["p99"], "max": h["max"],
        }
    return flat


def diff_exports(
    base: Dict[str, Any], new: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """Aligned rows {metric, tags, column, base, new, delta, pct}.

    Metrics present on only one side appear with the other side blank —
    a regression that silently removes a metric still shows up.
    """
    a, b = _flatten(base), _flatten(new)
    rows: List[Dict[str, Any]] = []
    for key in sorted(set(a) | set(b)):
        name, tags = key
        cols = sorted(set(a.get(key, {})) | set(b.get(key, {})))
        for col in cols:
            va = a.get(key, {}).get(col)
            vb = b.get(key, {}).get(col)
            row: Dict[str, Any] = {
                "metric": name, "tags": tags, "column": col,
                "base": "" if va is None else va,
                "new": "" if vb is None else vb,
            }
            if va is not None and vb is not None:
                row["delta"] = vb - va
                row["pct"] = (vb - va) / va * 100.0 if va else ""
            rows.append(row)
    return rows


def render_diff(base: Dict[str, Any], new: Dict[str, Any],
                title: str = "observability diff (new vs base)") -> str:
    rows = diff_exports(base, new)
    if not rows:
        return f"== {title} ==\n(no metrics on either side)"
    return _render_table(
        f"== {title} ==", rows,
        ["metric", "tags", "column", "base", "new", "delta", "pct"],
    )


def _bench_rows_to_export(data: Dict[str, Any]) -> Dict[str, Any]:
    """Synthesize a gauge-only export from a BENCH row table.

    Numeric columns become ``bench.<name>.<column>`` gauges; string/bool
    columns become tags. A ``row=<i>`` tag disambiguates rows that share
    all their tag columns — the simulator is deterministic, so two runs
    of the same benchmark produce the same row order and diff cleanly.
    """
    bench = data.get("name", "bench")
    gauges: List[Dict[str, Any]] = []

    def add_table(rows: List[Any], extra: Dict[str, str]) -> None:
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                continue
            tags = dict(extra, row=str(i))
            tags.update(
                {k: str(v) for k, v in row.items()
                 if isinstance(v, bool) or not isinstance(v, (int, float))}
            )
            for k, v in row.items():
                if isinstance(v, (int, float)) and not isinstance(v, bool):
                    gauges.append({"name": f"bench.{bench}.{k}", "tags": tags, "value": v})

    rows = data.get("rows")
    if isinstance(rows, list):
        add_table(rows, {})
    elif isinstance(rows, dict):
        for table, sub in rows.items():
            if isinstance(sub, list):
                add_table(sub, {"table": str(table)})
    if isinstance(data.get("wall_s"), (int, float)):
        gauges.append({"name": f"bench.{bench}.wall_s", "tags": {}, "value": data["wall_s"]})
    return {"counters": [], "gauges": gauges, "histograms": []}


def load_export(path: str) -> Dict[str, Any]:
    """Read a metrics export (or a BENCH_*.json wrapper) from disk."""
    with open(path) as fh:
        data = json.load(fh)
    if "counters" not in data:
        # BENCH files either wrap an export under "metrics" or carry only
        # a row table; synthesize gauges from the rows in the latter case.
        if isinstance(data.get("metrics"), dict):
            return data["metrics"]
        if "rows" in data:
            return _bench_rows_to_export(data)
    return data


def save_export(export: Dict[str, Any], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(export, fh, indent=2, sort_keys=True)
        fh.write("\n")


#: Version stamped into every BENCH_*.json envelope; bump when the
#: payload shape changes incompatibly.
BENCH_SCHEMA_VERSION = 1


def write_bench_json(
    name: str,
    rows: List[Dict[str, Any]],
    directory: str,
    wall_s: Optional[float] = None,
    metrics: Optional[Dict[str, Any]] = None,
    scenario: Optional[str] = None,
    seed: Optional[int] = None,
    hosts: Optional[int] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """Write ``BENCH_<name>.json`` — the machine-readable twin of a
    benchmark's printed table — and return its path.

    Every file carries a common envelope: ``schema`` (see
    :data:`BENCH_SCHEMA_VERSION`), ``scenario`` (defaults to *name*),
    and — when the caller knows them — ``seed``, ``hosts`` (site size),
    and ``wall_s``. *extra* merges additional payload keys (e.g. a
    profiler export) without touching the envelope.
    """
    import os

    payload: Dict[str, Any] = {
        "name": name,
        "schema": BENCH_SCHEMA_VERSION,
        "scenario": scenario if scenario is not None else name,
        "rows": rows,
    }
    if seed is not None:
        payload["seed"] = seed
    if hosts is not None:
        payload["hosts"] = hosts
    if wall_s is not None:
        payload["wall_s"] = wall_s
    if metrics is not None:
        payload["metrics"] = metrics
    if extra:
        payload.update(extra)
    os.makedirs(directory or ".", exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    return path


def gate_diff(
    rows: List[Dict[str, Any]],
    fail_over: float,
    metrics_glob: str = "*",
    direction: str = "any",
) -> List[Dict[str, Any]]:
    """Diff rows (see :func:`diff_exports`) that trip a regression gate.

    A row trips when its metric name matches *metrics_glob*, both sides
    are present with a nonzero base (so ``pct`` is defined), and the
    percent change exceeds *fail_over* in the gated *direction*: ``up``
    flags increases, ``down`` decreases, ``any`` both. The CLI exits
    nonzero when this returns a nonempty list — the CI regression gate.
    """
    from fnmatch import fnmatchcase

    if direction not in ("any", "up", "down"):
        raise ValueError(f"unknown direction {direction!r}")
    tripped: List[Dict[str, Any]] = []
    for row in rows:
        if not fnmatchcase(row["metric"], metrics_glob):
            continue
        pct = row.get("pct")
        if not isinstance(pct, (int, float)):
            continue
        if direction == "up" and pct <= fail_over:
            continue
        if direction == "down" and pct >= -fail_over:
            continue
        if direction == "any" and abs(pct) <= fail_over:
            continue
        tripped.append(row)
    return tripped
