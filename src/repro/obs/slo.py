"""Declarative SLOs evaluated from the observability metrics.

An :class:`Slo` names one bound over one metric column — ``p99 of
overload.control_latency <= 0.5s``, ``daemon.heartbeats_failed == 0`` —
and is evaluated against a :meth:`MetricsRegistry.export` dict, so the
same spec works live inside a run (:class:`SloMonitor` samples the
registry every interval of virtual time and remembers the first breach)
and offline against a saved export (``python -m repro obs slo --export
FILE``).

Aggregation across tagged instances of one metric name: counters and
gauges sum, histogram columns take the worst (max) instance — an SLO is
a bound, so the conservative reading is the honest one. A metric that
was never created reads as 0.0, which keeps vacuous cases sane (no
recoveries -> recovery MTTR trivially within bound).

``ratio_to`` turns a counter bound into a rate bound: the evaluated
value becomes ``metric / (metric + ratio_to)`` — e.g. shed requests as a
share of all arrivals (shed + served).

:data:`DEFAULT_SLOS` encodes the paper-level service expectations the
chaos/overload experiments already assert piecemeal: control-RPC p99,
lease heartbeat loss, recovery MTTR, and the shed rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

_OPS = {
    "<=": lambda v, t: v <= t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    ">": lambda v, t: v > t,
}

#: Columns valid for histogram metrics (counters/gauges use "value").
HIST_COLUMNS = ("count", "mean", "p50", "p95", "p99", "max")


@dataclass(frozen=True)
class Slo:
    """One service-level objective: ``column(metric) op threshold``."""

    name: str
    metric: str
    threshold: float
    column: str = "value"
    op: str = "<="
    #: When set, evaluate ``metric / (metric + ratio_to)`` instead of the
    #: raw value (both read with ``column``); 0/0 counts as 0.
    ratio_to: Optional[str] = None
    #: Histogram SLOs only: mid-run (partial) samples skip the bound
    #: until the metric has this many samples — early in a run one slow
    #: startup call would transiently breach a bound the steady state
    #: comfortably honours. The final verdict ignores ``min_count``.
    min_count: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown op {self.op!r} (known: {sorted(_OPS)})")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lhs = (f"{self.metric}/({self.metric}+{self.ratio_to})"
               if self.ratio_to else f"{self.column}({self.metric})")
        return f"{self.name}: {lhs} {self.op} {self.threshold:g}"


#: The site-wide objectives the overload/chaos scenarios must hold.
DEFAULT_SLOS: Tuple[Slo, ...] = (
    Slo("control-rpc-p99", "overload.control_latency", 0.5, column="p99",
        min_count=100,
        description="control-plane RPC p99 latency stays under 500ms"),
    Slo("heartbeat-loss", "daemon.heartbeats_failed", 0.0,
        description="no lease heartbeat ever fails"),
    Slo("recovery-mttr-p99", "guardian.recovery_latency", 10.0, column="p99",
        description="death-to-respawn recovery p99 under 10s"),
    Slo("shed-rate", "rpc.requests_shed", 0.9,
        ratio_to="rpc.requests_served",
        description="under 90% of RPC arrivals shed (some service survives)"),
    Slo("sync-payload-max", "rcds.sync_batch_records", 64.0, column="max",
        description="no anti-entropy payload ever exceeds the configured "
                    "per-RPC record bound (heal-storm control)"),
    Slo("redirect-rate", "rcds.redirects", 0.5,
        ratio_to="rcds.lookups",
        description="fewer stale-epoch shard redirects than served catalog "
                    "lookups (map dissemination keeps routing convergent; "
                    "trivially 0 on an unsharded site)"),
)


def _column_values(export: Dict[str, Any], metric: str,
                   column: str) -> List[float]:
    """All values of *column* for *metric* across its tagged instances."""
    out: List[float] = []
    if column == "value":
        for kind in ("counters", "gauges"):
            for m in export.get(kind, []):
                if m["name"] == metric:
                    out.append(float(m["value"]))
    for h in export.get("histograms", []):
        if h["name"] == metric and column in h:
            out.append(float(h[column]))
    return out


def _metric_value(export: Dict[str, Any], metric: str, column: str) -> float:
    values = _column_values(export, metric, column)
    if not values:
        return 0.0
    # Counters/gauges aggregate by sum; histogram columns take the worst
    # instance (an SLO is a bound — the conservative read is the honest one).
    return sum(values) if column == "value" else max(values)


def evaluate_slos(export: Dict[str, Any],
                  slos: Sequence[Slo] = DEFAULT_SLOS,
                  partial: bool = False) -> List[Dict[str, Any]]:
    """Evaluate every SLO against one metrics export.

    Returns one dict per SLO: ``{"name", "ok", "value", "threshold",
    "op", "detail"}``, in spec order. With ``partial=True`` (a mid-run
    sample, not a final verdict) a histogram bound whose metric has
    fewer than ``min_count`` samples is not yet evaluable and reads as
    ok — a p99 over a dozen startup calls is the max with extra steps.
    The final evaluation enforces the bound whatever the count.
    """
    results: List[Dict[str, Any]] = []
    for slo in slos:
        value = _metric_value(export, slo.metric, slo.column)
        if slo.ratio_to is not None:
            denom = value + _metric_value(export, slo.ratio_to, slo.column)
            value = value / denom if denom else 0.0
        ok = _OPS[slo.op](value, slo.threshold)
        if (partial and not ok and slo.min_count
                and slo.column in HIST_COLUMNS):
            n = _metric_value(export, slo.metric, "count")
            if n < slo.min_count:
                ok = True  # not yet evaluable — too few samples to judge
        results.append({
            "name": slo.name,
            "ok": ok,
            "value": value,
            "threshold": slo.threshold,
            "op": slo.op,
            "detail": f"{slo} -> {value:g}",
        })
    return results


def parse_slo(spec: str) -> Slo:
    """Parse ``name:metric[:column]:op:threshold`` (CLI ``--slo`` syntax).

    ``op`` accepts ``le``/``ge``/``lt``/``gt`` as spellings of
    ``<=``/``>=``/``<``/``>`` so shells need no quoting.
    """
    words = {"le": "<=", "ge": ">=", "lt": "<", "gt": ">"}
    parts = spec.split(":")
    if len(parts) == 4:
        name, metric, op, threshold = parts
        column = "value"
    elif len(parts) == 5:
        name, metric, column, op, threshold = parts
    else:
        raise ValueError(
            f"bad SLO spec {spec!r}: want name:metric[:column]:op:threshold"
        )
    return Slo(name=name, metric=metric, column=column,
               op=words.get(op, op), threshold=float(threshold))


class SloMonitor:
    """Continuous in-run SLO evaluation over virtual time.

    A background process samples the simulation's metrics registry every
    *interval* virtual seconds and records the first time each SLO is
    out of bounds. :meth:`results` folds that history into the final
    evaluation: an SLO that breached mid-run and recovered by the end is
    still a failure (``transient``), because the bound is continuous, not
    a final-state assertion.
    """

    def __init__(self, sim, slos: Sequence[Slo] = DEFAULT_SLOS,
                 interval: float = 1.0) -> None:
        self.sim = sim
        self.slos = tuple(slos)
        self.interval = interval
        self.samples = 0
        self.first_breach: Dict[str, Tuple[float, float]] = {}
        self._proc = None

    def attach(self) -> "SloMonitor":
        self._proc = self.sim.process(self._loop(), name="slo-monitor")
        return self

    def _loop(self):
        while True:
            yield self.sim.timeout(self.interval)
            self.samples += 1
            self._evaluate_tick()

    def _evaluate_tick(self) -> None:
        export = self.sim.obs.metrics.export()
        for r in evaluate_slos(export, self.slos, partial=True):
            if not r["ok"] and r["name"] not in self.first_breach:
                self.first_breach[r["name"]] = (self.sim.now, r["value"])

    def results(self) -> List[Dict[str, Any]]:
        """Final per-SLO verdicts, including mid-run (transient) breaches."""
        self._evaluate_tick()  # never miss a breach between samples and now
        final = evaluate_slos(self.sim.obs.metrics.export(), self.slos)
        for r in final:
            breach = self.first_breach.get(r["name"])
            r["first_breach_t"] = breach[0] if breach else None
            if breach and r["ok"]:
                r["ok"] = False
                r["detail"] += (f" (transient breach: {breach[1]:g} "
                                f"at t={breach[0]:.1f}s)")
        return final

    @property
    def ok(self) -> bool:
        return all(r["ok"] for r in self.results())


def format_slo_results(results: List[Dict[str, Any]],
                       title: str = "SLO evaluation") -> str:
    """Human-readable PASS/FAIL table for the CLI."""
    lines = [f"== {title} =="]
    for r in results:
        mark = "PASS" if r["ok"] else "FAIL"
        when = ""
        if r.get("first_breach_t") is not None:
            when = f" (first breach t={r['first_breach_t']:.1f}s)"
        lines.append(
            f"  [{mark}] {r['name']:18s} {r['value']:10.4g} "
            f"{r['op']} {r['threshold']:g}{when}"
        )
    n_bad = sum(1 for r in results if not r["ok"])
    lines.append("")
    lines.append("RESULT: " + ("OK" if n_bad == 0 else f"{n_bad} SLO(s) violated"))
    return "\n".join(lines)
