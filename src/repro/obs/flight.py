"""Black-box flight recorder: the last N events per host, always armed.

An aircraft flight recorder does not know when the incident will happen;
it keeps a bounded ring of the recent past and survives the crash. This
is the simulator's equivalent: a :class:`FlightRecorder` subscribes to
the semantic probe bus (``sim.probes``) and — via ``sim.flight`` — to
every locally delivered frame, keeping a bounded per-host ring of recent
records. When a :mod:`repro.check` oracle fires or a chaos invariant
fails, the harness stamps the violation into the ring and snapshots it
into the failure report; the CLIs dump it as JSONL next to the
ddmin-minimized trace, so a failure ships with its last-N-events context
instead of demanding a re-run under full tracing.

Records are keyed by host (probe ``host``/``dst``/``src`` field, or
``*`` for site-wide records like violations), each ring bounded at
``capacity`` with per-host drop counters — memory stays O(hosts), not
O(run length). A global sequence number preserves total emission order
across rings so a merged snapshot reads like a single tape.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

#: Default per-host ring capacity (records).
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Bounded per-host rings of recent probes, frames, and violations."""

    def __init__(self, sim, capacity: int = DEFAULT_CAPACITY,
                 capture_frames: bool = True) -> None:
        self.sim = sim
        self.capacity = capacity
        self.capture_frames = capture_frames
        self.recorded = 0
        self.dropped: Dict[str, int] = {}
        self._rings: Dict[str, Deque[Tuple[int, Dict[str, Any]]]] = {}
        self._seq = 0

    def attach(self, bus=None) -> "FlightRecorder":
        """Arm the recorder: frame capture via ``sim.flight``, probe
        capture by subscribing to *bus* (when given)."""
        if self.capture_frames:
            self.sim.flight = self
        if bus is not None:
            bus.subscribe(self.on_probe)
        return self

    def detach(self) -> None:
        if self.sim.flight is self:
            self.sim.flight = None

    # -- recording ----------------------------------------------------------
    def _append(self, host: str, record: Dict[str, Any]) -> None:
        ring = self._rings.get(host)
        if ring is None:
            ring = self._rings[host] = deque()
        if len(ring) >= self.capacity:
            ring.popleft()
            self.dropped[host] = self.dropped.get(host, 0) + 1
        self._seq += 1
        self.recorded += 1
        ring.append((self._seq, record))

    def on_probe(self, kind: str, fields: Dict[str, Any]) -> None:
        """ProbeBus subscriber: file the probe under its host.

        Synchronous and O(1) per the bus contract; never raises.
        """
        host = fields.get("host") or fields.get("dst") or fields.get("src")
        record = {"host": str(host) if host is not None else "*",
                  "t": self.sim.now, "kind": kind}
        record.update(fields)
        self._append(record["host"], record)

    def note_frame(self, host: str, frame) -> None:
        """Called by :meth:`Host.deliver` for every locally consumed frame."""
        self._append(host, {
            "host": host,
            "t": self.sim.now,
            "kind": "frame.rx",
            "proto": frame.proto,
            "src": frame.src.host if frame.src is not None else None,
            "src_port": frame.src_port,
            "dst_port": frame.dst_port,
            "bytes": frame.size,
            "trace": frame.trace_id,
        })

    def note_violation(self, oracle: str, t: float, detail: str) -> None:
        """Stamp a violation onto the tape (site-wide ring), so the dump's
        tail always names what fired and when."""
        self._append("*", {"host": "*", "t": t, "kind": "violation",
                           "oracle": oracle, "detail": detail})

    # -- inspection & export -------------------------------------------------
    def __len__(self) -> int:
        return sum(len(r) for r in self._rings.values())

    def hosts(self) -> List[str]:
        return sorted(self._rings)

    def snapshot(self, host: Optional[str] = None,
                 last: Optional[int] = None) -> List[Dict[str, Any]]:
        """Records in emission order; one host's ring, or all merged.

        ``last`` keeps only the newest *last* records — the tail of the
        tape, which is where the violating event lives.
        """
        if host is not None:
            items = list(self._rings.get(host, ()))
        else:
            items = sorted(
                (item for ring in self._rings.values() for item in ring),
                key=lambda item: item[0],
            )
        if last is not None:
            items = items[-last:]
        return [record for _seq, record in items]

    def dump_jsonl(self, path: str, host: Optional[str] = None) -> int:
        """Write the (merged) tape as JSON lines; returns the record count."""
        records = self.snapshot(host=host)
        with open(path, "w") as fh:
            for record in records:
                fh.write(json.dumps(record, default=str))
                fh.write("\n")
        return len(records)


def dump_flight_records(path: str, records: List[Dict[str, Any]]) -> int:
    """Write an already-snapshotted flight tape (e.g. ``report["flight"]``)
    as JSON lines; returns the record count."""
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record, default=str))
            fh.write("\n")
    return len(records)
