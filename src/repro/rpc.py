"""A small request/response RPC layer over SRUDP.

Every SNIPE service (RC servers, host daemons, resource managers, file
servers) speaks this: a request carries a method name, arguments, and an
optional HMAC tag (the 1998 RC servers used "SUN RPC with authentication
based on MD5 hashed shared secrets", §6); the response is matched by
request id. Sizes are charged from the canonical encoding of the
arguments so metadata traffic has realistic weight on the wire.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from types import GeneratorType
from typing import Any, Callable, Dict, Optional

from repro.robust import TIMEOUTS
from repro.robust.overload import BULK, CONTROL, AdaptiveTimeouts, BreakerBoard
from repro.security.hashes import canonical_bytes, hmac_tag, verify_hmac
from repro.sim.errors import Interrupt
from repro.sim.events import defuse, waker
from repro.transport.base import SendError
from repro.transport.srudp import SrudpEndpoint

_req_ids = itertools.count(1)

#: Fixed per-call envelope overhead (method name, ids, tags).
ENVELOPE_BYTES = 48


class RpcError(Exception):
    """Remote fault, authentication failure, or no response."""


@dataclass
class Sized:
    """Handler return wrapper declaring the response's wire size.

    RPC normally charges the canonical encoding of the payload, but some
    results *represent* bulk data (a file's contents, a routed message
    body) whose declared size must be paid on the wire.
    """

    value: Any
    size: int


@dataclass
class Request:
    method: str
    args: Dict[str, Any]
    reply_port: int
    req_id: int = field(default_factory=lambda: next(_req_ids))
    auth: Optional[str] = None
    #: Priority lane: control-plane requests (leases, fencing, probes)
    #: jump bulk data in every ingress queue between caller and handler.
    lane: str = BULK


@dataclass
class Response:
    req_id: int
    ok: bool
    result: Any = None
    error: str = ""


def payload_size(obj: Any) -> int:
    """Bytes charged on the wire for an RPC payload."""
    try:
        return ENVELOPE_BYTES + len(canonical_bytes(obj))
    except Exception:
        return ENVELOPE_BYTES + 256  # unpicklable sentinel objects


class RpcServer:
    """Binds a port and dispatches requests to registered handlers.

    Handlers are plain functions ``fn(args_dict) -> result`` or generator
    functions that yield sim events and return the result (for handlers
    that must do I/O of their own). Exceptions become error responses.
    """

    def __init__(
        self,
        host,
        port: int,
        secret: Optional[bytes] = None,
        service_time: float = 0.0,
    ) -> None:
        self.sim = host.sim
        self.host = host
        self.port = port
        self.secret = secret
        self.service_time = service_time
        self.endpoint = SrudpEndpoint(host, port)
        self.handlers: Dict[str, Callable] = {}
        self.requests_served = 0
        self.auth_failures = 0
        self.requests_shed = 0
        self._m_served = self.sim.obs.metrics.counter("rpc.requests_served")
        self._m_auth_failures = self.sim.obs.metrics.counter("rpc.auth_failures")
        self._m_shed = self.sim.obs.metrics.counter("rpc.requests_shed")
        # Server ingress is shed-oldest rather than backpressure: under
        # sustained overload the oldest queued bulk request belongs to a
        # caller that has already timed out, and burning service time on
        # it only steals capacity from requests that can still succeed.
        # Control-lane requests are never shed. The transport retains its
        # exactly-once bookkeeping — a shed request simply times out at
        # the client and is retried or failed over like any other loss.
        q = self.endpoint._rx_queue
        q.bulk_capacity = self.sim.overload.server_bulk_capacity
        q.shed_oldest = True
        q.on_shed = self._on_shed
        self._proc = self.sim.process(self._serve(), name=f"rpc:{host.name}:{port}")

    def register(self, method: str, fn: Callable) -> None:
        self.handlers[method] = fn

    def _on_shed(self, msg) -> None:
        self.requests_shed += 1
        self._m_shed.inc()

    def close(self) -> None:
        self.endpoint.close()
        if self._proc.is_alive:
            self._proc.interrupt("closed")

    def _serve(self):
        """Accept loop.

        With ``service_time == 0`` each request is handled in its own
        process (a threaded server) — necessary because handlers call
        *other* RPC servers (e.g. multicast routers flooding to peers) and
        serial handling would distributed-deadlock. A positive
        ``service_time`` instead models a single-threaded server with a
        fixed cost per request: the queueing bottleneck that experiment E4
        measures in the centralized resource manager.
        """
        try:
            while True:
                msg = yield self.endpoint.recv()
                req = msg.payload
                if not isinstance(req, Request):
                    continue
                if self.secret is not None:
                    body = {"method": req.method, "req_id": req.req_id}
                    if req.auth is None or not verify_hmac(self.secret, body, req.auth):
                        self.auth_failures += 1
                        self._m_auth_failures.inc()
                        self._reply(msg, Response(req.req_id, False, error="auth"))
                        continue
                handler = self.handlers.get(req.method)
                if handler is None:
                    self._reply(msg, Response(req.req_id, False, error=f"no method {req.method!r}"))
                    continue
                if self.service_time > 0:
                    # A single-threaded server's per-request cost is CPU:
                    # it stretches when the host is slowed (gray zombie —
                    # its NIC and heartbeats stay healthy, its work crawls).
                    speed = max(getattr(self.host, "cpu_speed", 1.0), 1e-9)
                    yield self.sim.timeout(self.service_time / speed)
                    yield from self._handle(msg, req, handler)
                else:
                    defuse(
                        self.sim.process(
                            self._handle(msg, req, handler),
                            name=f"rpc-handle:{req.method}",
                        )
                    )
        except Interrupt:
            return

    def _handle(self, msg, req: Request, handler: Callable):
        try:
            result = handler(req.args)
            if type(result) is GeneratorType:
                result = yield from result
            self.requests_served += 1
            self._m_served.inc()
            self._reply(msg, Response(req.req_id, True, result=result))
        except Exception as exc:  # handler fault -> error response
            self._reply(msg, Response(req.req_id, False, error=str(exc)))
        return None
        yield  # pragma: no cover - makes this a generator even if unreached

    def _reply(self, msg, response: Response) -> None:
        # Fire-and-forget: if the caller died meanwhile, the send fails and
        # that is fine — defuse keeps it from counting as an uncaught crash.
        size = payload_size(response.result)
        if isinstance(response.result, Sized):
            size = ENVELOPE_BYTES + response.result.size
            response = Response(response.req_id, response.ok,
                                result=response.result.value, error=response.error)
        defuse(self.endpoint.send(msg.src_host, msg.payload.reply_port, response, size))


class RpcClient:
    """Issues calls from one host; one instance may talk to many servers."""

    def __init__(self, host, port: Optional[int] = None, secret: Optional[bytes] = None) -> None:
        self.sim = host.sim
        self.host = host
        self.secret = secret
        self.endpoint = SrudpEndpoint(host, port if port is not None else host.ephemeral_port())
        self._waiting: Dict[int, Any] = {}
        self._metrics = self.sim.obs.metrics
        self._timeouts = AdaptiveTimeouts(self.sim.overload)
        self._breakers = BreakerBoard(self.sim, scope="rpc")
        self._m_control_latency = self._metrics.histogram("overload.control_latency")
        # Per-method metric handles, memoized: the registry interns on a
        # sorted-tag key, which is too much string work for the per-call
        # hot path.
        self._m_errors: Dict[str, Any] = {}
        self._m_latency: Dict[str, Any] = {}
        self._dispatcher = self.sim.process(self._dispatch(), name=f"rpc-client:{host.name}")

    def _error_counter(self, method: str):
        m = self._m_errors.get(method)
        if m is None:
            m = self._m_errors[method] = self._metrics.counter(
                "rpc.errors", method=method
            )
        return m

    def _latency_histogram(self, method: str):
        m = self._m_latency.get(method)
        if m is None:
            m = self._m_latency[method] = self._metrics.histogram(
                "rpc.call_latency", method=method
            )
        return m

    def _dispatch(self):
        try:
            while True:
                msg = yield self.endpoint.recv()
                resp = msg.payload
                if isinstance(resp, Response):
                    ev = self._waiting.pop(resp.req_id, None)
                    if ev is not None and not ev.triggered:
                        ev.succeed(resp)
        except Interrupt:
            return

    def close(self) -> None:
        self.endpoint.close()
        if self._dispatcher.is_alive:
            self._dispatcher.interrupt("closed")

    def breaker_open(self, dst_host: str, dst_port: int) -> bool:
        """Is the destination currently quarantined? Clients use this to
        order failover candidates so they try healthy replicas first."""
        if not self.sim.overload.breakers:
            return False
        return self._breakers.is_open((dst_host, dst_port))

    def call(
        self,
        dst_host: str,
        dst_port: int,
        method: str,
        timeout: Optional[float] = None,
        _size: Optional[int] = None,
        retry=None,
        lane: str = BULK,
        **args,
    ):
        """Process event yielding the result, or failing with RpcError.

        ``timeout`` is the *static* timeout: the cold-start value and the
        floor anchor for the per-destination adaptive estimate (None
        means the :data:`repro.robust.TIMEOUTS` default). ``_size``
        overrides the request's wire size (for calls carrying bulk
        payloads whose declared size exceeds their encoding). ``retry``
        is an optional :class:`repro.robust.RetryPolicy`; when given,
        transient :class:`RpcError` failures are retried with backoff
        under the policy's deadline budget. ``lane=CONTROL`` marks the
        call as control-plane: it jumps bulk traffic in every ingress
        queue and is never load-shed.
        """
        if timeout is None:
            timeout = TIMEOUTS["rpc.default"]
        if retry is not None:
            rng = self.sim.rng.stream(f"retry.rpc.{self.host.name}")
            return self.sim.process(
                retry.run(
                    self.sim,
                    lambda i: self._call(dst_host, dst_port, method, args, timeout,
                                         _size, lane),
                    retry_on=(RpcError,),
                    rng=rng,
                    op=method,
                ),
                name=f"call:{method}@{dst_host}",
            )
        return self.sim.process(
            self._call(dst_host, dst_port, method, args, timeout, _size, lane),
            name=f"call:{method}@{dst_host}",
        )

    def _call(
        self,
        dst_host: str,
        dst_port: int,
        method: str,
        args: Dict[str, Any],
        timeout: float,
        _size: Optional[int] = None,
        lane: str = BULK,
    ):
        config = self.sim.overload
        # The *requested* lane keeps feeding the control-latency histogram
        # even in the static baseline (lanes off), so E12 can compare what
        # happens to logically-control traffic with and without priority.
        requested_lane = lane
        if not config.lanes:
            lane = BULK  # baseline: no priority classification anywhere
        bkey = (dst_host, dst_port)
        if config.breakers and not self._breakers.allow(bkey):
            # Quarantined destination: fail fast so the caller's failover
            # moves on instead of burning its deadline on a sick replica.
            self._error_counter(method).inc()
            raise RpcError(f"{method}@{dst_host}:{dst_port}: circuit open")
        effective = self._timeouts.timeout_for(dst_host, dst_port, method, timeout)
        req = Request(method=method, args=args, reply_port=self.endpoint.port,
                      req_id=self.sim.sequence("rpc.req"), lane=lane)
        if self.secret is not None:
            req.auth = hmac_tag(self.secret, {"method": method, "req_id": req.req_id})
        reply_ev = self.sim.event()
        self._waiting[req.req_id] = reply_ev
        t0 = self.sim.now
        try:
            wire = payload_size(args) if _size is None else ENVELOPE_BYTES + _size
            send_ev = self.endpoint.send(dst_host, dst_port, req, wire)
            defuse(send_ev)  # reaped below; must not count as uncaught
            # The send itself may fail (peer unreachable): watch both. The
            # deadline is a cancellable wheel timer so a timely reply (the
            # common case) costs no heap traffic for the loser.
            wake = self.sim.event()
            fire = waker(wake)
            reply_ev.add_callback(fire)
            deadline = self.sim.schedule_timer(
                effective, fire, owner=f"call:{method}@{dst_host}"
            )
            yield wake
            deadline.cancel()
            if not reply_ev.triggered:
                self._error_counter(method).inc()
                self._timeouts.note_timeout(dst_host, dst_port, method, timeout)
                self.host.health.note_outcome(dst_host, False, kind="rpc")
                if not send_ev.triggered:
                    # The request itself never finished arriving (no
                    # transport ack before the deadline). That is evidence
                    # against the chosen *path*, not just the peer — and
                    # the srudp sender may keep retrying past our deadline
                    # and never report the failure itself (a one-way link
                    # cut shorter than its retry budget heals before
                    # exhaustion), so feed per-iface steering here.
                    self.endpoint.paths.note_result(dst_host, False)
                if config.breakers:
                    self._breakers.record(bkey, False)
                # Reap a send failure for a clearer error, if there is one.
                if send_ev.triggered and not send_ev.ok:
                    try:
                        send_ev.value
                    except SendError as exc:
                        raise RpcError(f"{method}@{dst_host}: {exc}") from None
                raise RpcError(
                    f"{method}@{dst_host}:{dst_port}: timed out after {effective}s"
                )
            resp = reply_ev.value
            rtt = self.sim.now - t0
            # Any response — even an application error — proves the
            # destination alive: the breaker quarantines sick *hosts*,
            # not failing requests. The health board is stricter: it
            # scores against the *static* SLO anchor, not the adaptive
            # deadline. A gray zombie answers every request eventually,
            # and the adaptive timeout legitimately stretches to keep
            # calls completing — if health graded against the stretched
            # deadline it would adapt right into the failure.
            self._timeouts.observe(dst_host, dst_port, method, timeout, rtt)
            self.host.health.note_outcome(dst_host, rtt <= timeout, kind="rpc")
            if config.breakers:
                self._breakers.record(bkey, True)
            if not resp.ok:
                self._error_counter(method).inc()
                raise RpcError(f"{method}@{dst_host}: {resp.error}")
            self._latency_histogram(method).observe(rtt)
            if requested_lane == CONTROL:
                self._m_control_latency.observe(rtt)
            return resp.result
        finally:
            self._waiting.pop(req.req_id, None)
