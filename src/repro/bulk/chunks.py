"""Chunking and chunk maps: the metadata half of the bulk data plane.

A bulk object is an opaque byte string split into fixed-size chunks;
each chunk has a SHA-256 digest and the object as a whole has one. The
per-object :class:`ChunkMap` — name, size, chunk size, the digest list,
the object hash, and an optional HMAC signature — is published as RC
metadata under ``urn:snipe:bulk:<name>`` so any host can verify any
chunk from any source: integrity is end-to-end (RCDS §2.1), so sources
never have to be trusted, only the signed map.

:data:`DEFAULT_CHUNK_SIZE` is *the* chunk-size constant for the whole
system: the file servers' sources, the MPI broadcast pipeliner, and the
bulk fetchers all read it here, so there is exactly one place to tune.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.security.hashes import content_hash, hmac_tag, verify_hmac

#: The system-wide bulk chunk size (bytes). Shared by file-server
#: sources, the bulk data plane, and the MPI broadcast pipeliner.
DEFAULT_CHUNK_SIZE = 65536


def bulk_urn(name: str) -> str:
    """RC metadata URN for a bulk object's chunk map."""
    return f"urn:snipe:bulk:{name}"


def object_bytes(payload: Any) -> bytes:
    """The canonical wire bytes of a bulk payload.

    Bytes pass through unchanged (their hash then matches the file
    servers' ``content_hash``); any other object is pickled.
    """
    if isinstance(payload, (bytes, bytearray)):
        return bytes(payload)
    return pickle.dumps(payload, protocol=4)


def split_chunks(data: bytes, chunk_size: int = DEFAULT_CHUNK_SIZE) -> List[bytes]:
    """Slice *data* into chunks of *chunk_size* (last one may be short)."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if not data:
        return [b""]
    return [data[i:i + chunk_size] for i in range(0, len(data), chunk_size)]


def chunk_digests(chunks) -> Tuple[str, ...]:
    """Per-chunk SHA-256 digests (chunks may be bytes or any objects)."""
    return tuple(content_hash(c) for c in chunks)


@dataclass(frozen=True)
class ChunkMap:
    """The published description of one bulk object.

    ``digests[i]`` authenticates chunk *i* on its own, so a fetcher can
    verify chunks from untrusted sources as they arrive and commit them
    incrementally — that is what makes transfers resumable and
    multi-source safe. ``hash`` authenticates the reassembled whole.
    """

    name: str
    size: int
    chunk_size: int
    digests: Tuple[str, ...]
    hash: str

    @property
    def nchunks(self) -> int:
        return len(self.digests)

    def chunk_len(self, seq: int) -> int:
        """Byte length of chunk *seq*."""
        if seq < self.nchunks - 1:
            return self.chunk_size
        return self.size - self.chunk_size * (self.nchunks - 1)

    def body(self) -> Dict[str, Any]:
        """The signed fields, in canonical form."""
        return {
            "name": self.name,
            "size": self.size,
            "chunk_size": self.chunk_size,
            "digests": list(self.digests),
            "hash": self.hash,
        }

    def signature(self, secret: bytes) -> str:
        return hmac_tag(secret, self.body())

    def to_assertions(self, secret: Optional[bytes] = None) -> Dict[str, Any]:
        """RC assertions for publication under :func:`bulk_urn`."""
        assertions: Dict[str, Any] = {"map": self.body()}
        if secret is not None:
            assertions["sig"] = self.signature(secret)
        return assertions

    @classmethod
    def from_assertions(
        cls, assertions: Dict[str, Any], secret: Optional[bytes] = None
    ) -> "ChunkMap":
        """Rebuild (and, with *secret*, authenticate) a published map.

        Raises ``KeyError`` when no map is published and ``ValueError``
        when a required signature is missing or wrong.
        """
        info = assertions.get("map")
        if not info or not info.get("value"):
            raise KeyError("no chunk map published")
        body = info["value"]
        cmap = cls(
            name=body["name"],
            size=body["size"],
            chunk_size=body["chunk_size"],
            digests=tuple(body["digests"]),
            hash=body["hash"],
        )
        if secret is not None:
            sig = assertions.get("sig")
            tag = sig["value"] if sig and sig.get("value") else None
            if tag is None or not verify_hmac(secret, cmap.body(), tag):
                raise ValueError(f"chunk map for {cmap.name!r}: bad signature")
        return cmap


def build_chunk_map(
    name: str, data: bytes, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Tuple[ChunkMap, List[bytes]]:
    """Split *data* and describe it: returns ``(map, chunks)``."""
    chunks = split_chunks(data, chunk_size)
    cmap = ChunkMap(
        name=name,
        size=len(data),
        chunk_size=chunk_size,
        digests=chunk_digests(chunks),
        hash=content_hash(data),
    )
    return cmap, chunks
