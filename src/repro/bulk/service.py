"""The per-host bulk service: a verified chunk store behind an RPC port.

Every participating host runs one :class:`BulkService`. It holds the
host's verified chunks (a :class:`ChunkStore`), serves them to peers
over ``bulk.get_chunk``, and registers the host as a *source* for an
object in RC metadata once it holds chunks of it — completed fetchers
become additional sources, swarm-style.

The crucial detail for pipelined relay trees is that ``bulk.get_chunk``
*waits*: a request for a chunk the host does not hold yet — but is
actively fetching — parks inside the handler until the chunk is
committed (bounded by :data:`SERVE_WAIT`), then answers. A relay
therefore forwards chunk *k* to its children while chunk *k+1* is still
arriving from its parent, with no extra protocol machinery: the
children simply ask slightly ahead of the relay's own progress.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.bulk.chunks import (
    DEFAULT_CHUNK_SIZE,
    ChunkMap,
    build_chunk_map,
    bulk_urn,
    object_bytes,
)
from repro.rcds.client import QUORUM, RCClient
from repro.robust.overload import CONTROL
from repro.rpc import RpcServer, Sized

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host

#: Well-known bulk service port.
BULK_PORT = 2200

#: How long ``bulk.get_chunk`` holds a request for a chunk the host is
#: still fetching. Kept below the client's ``TIMEOUTS["bulk.chunk"]`` so
#: the server answers with a clean error before the caller times out.
SERVE_WAIT = 2.0


class ChunkStore:
    """Verified chunks of named objects, with arrival events.

    Only digest-verified chunks enter the store (the fetcher checks
    before ``add``; seeding hashes its own data), so everything served
    from here is authentic. The store survives host crashes — it models
    the durable chunk cache a real implementation would keep on disk —
    which is what makes transfers resumable: a restarted fetcher calls
    ``missing()`` and continues where its predecessor died.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self.maps: Dict[str, ChunkMap] = {}
        self._chunks: Dict[str, Dict[int, bytes]] = {}
        self._waiters: Dict[Tuple[str, int], List] = {}

    def ensure(self, cmap: ChunkMap) -> None:
        """Start tracking an object (idempotent)."""
        self.maps.setdefault(cmap.name, cmap)
        self._chunks.setdefault(cmap.name, {})

    def add(self, name: str, seq: int, data: bytes) -> bool:
        """Commit a verified chunk; False if it was already present."""
        held = self._chunks.setdefault(name, {})
        if seq in held:
            return False
        held[seq] = data
        for ev in self._waiters.pop((name, seq), []):
            if not ev.triggered:
                ev.succeed(data)
        return True

    def has(self, name: str, seq: int) -> bool:
        return seq in self._chunks.get(name, ())

    def get(self, name: str, seq: int) -> bytes:
        return self._chunks[name][seq]

    def discard(self, name: str, seq: int) -> None:
        """Drop one held chunk (corruption recovery: evict, then refetch)."""
        self._chunks.get(name, {}).pop(seq, None)

    def count(self, name: str) -> int:
        return len(self._chunks.get(name, ()))

    def missing(self, name: str) -> List[int]:
        """Outstanding chunk numbers, ascending (the fetch order)."""
        cmap = self.maps[name]
        held = self._chunks.get(name, {})
        return [i for i in range(cmap.nchunks) if i not in held]

    def complete(self, name: str) -> bool:
        cmap = self.maps.get(name)
        return cmap is not None and self.count(name) == cmap.nchunks

    def payload(self, name: str) -> bytes:
        """The reassembled object (requires ``complete``)."""
        cmap = self.maps[name]
        held = self._chunks[name]
        return b"".join(held[i] for i in range(cmap.nchunks))

    def wait(self, name: str, seq: int):
        """Event firing when chunk (name, seq) is committed."""
        ev = self.sim.event()
        if self.has(name, seq):
            ev.succeed(self.get(name, seq))
        else:
            self._waiters.setdefault((name, seq), []).append(ev)
        return ev


class BulkService:
    """One host's bulk-plane endpoint: chunk store + RPC server.

    ``seed`` makes this host the origin of an object (build the map,
    publish it signed to RC on the control lane, hold every chunk);
    ``announce`` registers the host as a source; an attached
    :class:`~repro.files.server.FileServer` lets the service serve
    chunks sliced straight out of stored :class:`VirtualFile` payloads,
    which is how file-server replicas join the source set.
    """

    def __init__(
        self,
        host: "Host",
        rc: RCClient,
        port: int = BULK_PORT,
        secret: Optional[bytes] = None,
    ) -> None:
        self.sim = host.sim
        self.host = host
        self.rc = rc
        self.port = port
        self.secret = secret
        self.store = ChunkStore(self.sim)
        self.file_server = None
        self.rpc = RpcServer(host, port, secret=secret)
        self.rpc.register("bulk.get_chunk", self._h_get_chunk)
        self.rpc.register("bulk.stat", self._h_stat)
        self._fetcher = None

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host.name, self.port)

    @property
    def fetcher(self):
        """This host's :class:`~repro.bulk.fetch.BulkFetcher` (lazy)."""
        if self._fetcher is None:
            from repro.bulk.fetch import BulkFetcher

            self._fetcher = BulkFetcher(self.host, self.rc, self, secret=self.secret)
        return self._fetcher

    def attach_file_server(self, file_server) -> None:
        """Serve chunks sliced from this file server's stored payloads."""
        self.file_server = file_server

    # -- origin-side API ----------------------------------------------------
    def seed(self, name: str, payload, chunk_size: Optional[int] = None):
        """Become the origin of *name* (a process): chunk, publish, announce."""
        return self.sim.process(
            self._seed(name, payload, chunk_size), name=f"bulk-seed:{name}"
        )

    def _seed(self, name: str, payload, chunk_size: Optional[int]):
        data = object_bytes(payload)
        cmap, chunks = build_chunk_map(
            name, data, chunk_size or DEFAULT_CHUNK_SIZE
        )
        self.store.ensure(cmap)
        for seq, chunk in enumerate(chunks):
            self.store.add(name, seq, chunk)
        if self.sim.probes is not None:
            self.sim.probes.emit(
                "bulk.map", name=name, size=cmap.size, chunk_size=cmap.chunk_size,
                digests=cmap.digests, hash=cmap.hash,
            )
        assertions = cmap.to_assertions(self.secret)
        assertions[f"src:{self.host.name}:{self.port}"] = True
        # Chunk-map metadata is control-plane: publish on the control
        # lane at QUORUM so fetchers read their own site's writes.
        yield self.rc.update(bulk_urn(name), assertions,
                             consistency=QUORUM, lane=CONTROL)
        return cmap

    def seed_from_file(self, name: str, chunk_size: Optional[int] = None):
        """Seed *name* from the attached file server's stored copy."""
        if self.file_server is None or name not in self.file_server.files:
            raise KeyError(f"no stored file {name!r} on {self.host.name}")
        return self.seed(name, self.file_server.files[name].payload, chunk_size)

    def announce(self, name: str):
        """Register this host as a source for *name* (a process)."""
        return self.rc.update(
            bulk_urn(name), {f"src:{self.host.name}:{self.port}": True},
            consistency=QUORUM, lane=CONTROL,
        )

    # -- serving ------------------------------------------------------------
    def _file_chunk(self, name: str, seq: int) -> Optional[bytes]:
        """Slice chunk *seq* out of an attached file-server payload."""
        if self.file_server is None:
            return None
        vf = self.file_server.files.get(name)
        if vf is None:
            return None
        cmap = self.store.maps.get(name)
        chunk_size = cmap.chunk_size if cmap else DEFAULT_CHUNK_SIZE
        data = object_bytes(vf.payload)
        off = seq * chunk_size
        if off >= len(data) and not (off == 0 and not data):
            raise KeyError(f"chunk {seq} of {name!r} out of range")
        return data[off:off + chunk_size]

    def _h_get_chunk(self, args: Dict):
        name, seq = args["name"], args["seq"]
        if self.store.has(name, seq):
            data = self.store.get(name, seq)
            return Sized({"seq": seq, "data": data}, size=len(data) + 64)
        sliced = self._file_chunk(name, seq)
        if sliced is not None:
            return Sized({"seq": seq, "data": sliced}, size=len(sliced) + 64)
        if name in self.store.maps:
            # Mid-fetch relay: hold the request until the chunk lands.
            return self._wait_chunk(name, seq)
        raise KeyError(f"{self.host.name} holds no chunks of {name!r}")

    def _wait_chunk(self, name: str, seq: int):
        arrived = self.store.wait(name, seq)
        yield self.sim.any_of([arrived, self.sim.timeout(SERVE_WAIT)])
        if not self.store.has(name, seq):
            raise KeyError(f"{self.host.name}: chunk {seq} of {name!r} "
                           f"not here after {SERVE_WAIT}s")
        data = self.store.get(name, seq)
        return Sized({"seq": seq, "data": data}, size=len(data) + 64)

    def _h_stat(self, args: Dict) -> Dict:
        name = args["name"]
        cmap = self.store.maps.get(name)
        return {
            "have": self.store.count(name),
            "nchunks": cmap.nchunks if cmap else None,
            "complete": self.store.complete(name),
        }

    def close(self) -> None:
        self.rpc.close()
        if self._fetcher is not None:
            self._fetcher.close()
