"""Canned rack topology for bulk-plane benchmarks, chaos, and checking.

One backbone segment carries the root (origin) host; each rack is its
own segment behind a forwarding gateway, with the member hosts attached
only to the rack. That is exactly the shape where the relay tree wins:
a naive root-unicast pushes every copy across the backbone, while the
tree crosses it once per rack and fans out inside the rack segments.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.bulk.chunks import DEFAULT_CHUNK_SIZE
from repro.core.environment import SnipeEnvironment


def build_bulk_site(
    seed: int = 0,
    racks: int = 4,
    per_rack: int = 4,
    secret: Optional[bytes] = None,
    configure: Optional[Callable[[SnipeEnvironment], None]] = None,
    settle: float = 1.0,
) -> Tuple[SnipeEnvironment, str, List[str]]:
    """Build the rack site; returns ``(env, root, dests)``.

    ``racks * per_rack`` member hosts are the distribution destinations;
    the root on the backbone is the origin. Every host (root + members)
    gets a bulk service. *configure* runs after services are placed and
    before the settle, for callers that add file servers or probes.
    """
    env = SnipeEnvironment(seed=seed, secret=secret)
    env.add_segment("backbone")
    root = "root"
    env.add_host(root, segments=["backbone"])
    dests: List[str] = []
    for r in range(racks):
        seg = f"rack{r}"
        env.add_segment(seg)
        env.add_host(f"g{r}", segments=["backbone", seg], forwarding=True)
        for j in range(per_rack):
            name = f"m{r}-{j}"
            env.add_host(name, segments=[seg])
            dests.append(name)
    env.add_rc_servers([root])
    env.add_bulk_service(root)
    for d in dests:
        env.add_bulk_service(d)
    if configure is not None:
        configure(env)
    if settle > 0:
        env.settle(settle)
    return env, root, dests


def make_payload(total_bytes: int, chunk_size: int = DEFAULT_CHUNK_SIZE) -> bytes:
    """A payload whose chunks all have distinct digests, built cheaply."""
    out = bytearray()
    i = 0
    while len(out) < total_bytes:
        out.extend(bytes([i % 251]) * min(chunk_size, total_bytes - len(out)))
        i += 1
    return bytes(out)
