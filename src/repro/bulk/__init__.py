"""repro.bulk — the replica-aware, multi-source bulk data plane.

SNIPE's file servers and RC metadata give this repo a control plane;
``repro.bulk`` adds the data plane: chunked objects with signed chunk
maps published under ``urn:snipe:bulk:<name>``, multi-source parallel
fetching with mid-object failover (:mod:`repro.bulk.fetch`), per-host
chunk stores that serve while still receiving (:mod:`repro.bulk.service`),
and topology-aware pipelined relay-tree distribution with swarm-style
source announcement (:mod:`repro.bulk.distribute`).
"""

from repro.bulk.chunks import (
    DEFAULT_CHUNK_SIZE,
    ChunkMap,
    build_chunk_map,
    bulk_urn,
    chunk_digests,
    object_bytes,
    split_chunks,
)
from repro.bulk.distribute import Distributor, build_relay_tree
from repro.bulk.fetch import BulkError, BulkFetcher
from repro.bulk.service import BULK_PORT, BulkService, ChunkStore

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ChunkMap",
    "build_chunk_map",
    "bulk_urn",
    "chunk_digests",
    "object_bytes",
    "split_chunks",
    "Distributor",
    "build_relay_tree",
    "BulkError",
    "BulkFetcher",
    "BULK_PORT",
    "BulkService",
    "ChunkStore",
]
