"""``python -m repro bulk`` — drive the bulk-data distribution plane.

Subcommands:

* ``bench`` — experiment E13: one object to every member of a racked
  site, naive root-unicast vs the pipelined relay tree (plus the
  relay-crash case). Prints the table and writes
  ``BENCH_bulk_distribution.json`` next to it (``--out DIR``).
* ``tree`` — show the relay tree the distributor would build for a
  site (who pulls from whom), then run one tree distribution and print
  the per-destination outcome — a quick way to see the pipeline,
  swarm announcements, and digest verification at work.
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional

from repro.bench.e13_bulk import CHUNK, LAYOUTS, bulk_distribution
from repro.bench.table import print_table
from repro.bulk.distribute import build_relay_tree
from repro.bulk.testbed import build_bulk_site, make_payload


def _cmd_bench(args) -> int:
    import os

    from repro.obs.report import write_bench_json

    os.makedirs(args.out, exist_ok=True)
    t0 = time.perf_counter()
    rows = bulk_distribution(host_counts=tuple(args.hosts),
                             object_kb=args.object_kb, seed=args.seed)
    wall_s = time.perf_counter() - t0
    print_table("E13: bulk distribution — unicast vs pipelined relay tree",
                rows)
    bad = [r for r in rows
           if r["completed"] != r["hosts"] or not r["all_verified"]]
    path = write_bench_json("bulk_distribution", rows, args.out, wall_s=wall_s,
                            seed=args.seed, hosts=max(args.hosts))
    print(f"\nwritten: {path}")
    if bad:
        print(f"FAILED: {len(bad)} configuration(s) incomplete or unverified")
        return 1
    return 0


def _cmd_tree(args) -> int:
    env, root, dests = build_bulk_site(seed=args.seed, racks=args.racks,
                                       per_rack=args.per_rack)
    parents = build_relay_tree(env.topology, root, dests, fanout=args.fanout)
    children: dict = {}
    for d, p in parents.items():
        children.setdefault(p, []).append(d)

    def show(node: str, indent: int) -> None:
        mark = " (root)" if node == root else ""
        print(f"  {'  ' * indent}{node}{mark}")
        for c in sorted(children.get(node, [])):
            show(c, indent + 1)

    print(f"relay tree: {args.racks} racks x {args.per_rack} hosts, "
          f"fanout {args.fanout}")
    show(root, 0)

    payload = make_payload(args.object_kb * 1024, CHUNK)
    dist = env.bulk_distributor(root, fanout=args.fanout)
    proc = dist.distribute("demo", payload, dests, chunk_size=CHUNK,
                           strategy="tree", deadline=60.0)
    report = env.run(until=proc)
    print(f"\ndistributed {report['bytes'] / 1024:.0f} KiB "
          f"({report['nchunks']} chunks) to "
          f"{report['completed']}/{report['hosts']} hosts in "
          f"{report['elapsed']:.2f}s "
          f"({report['aggregate_goodput'] / 1e6:.2f} MB/s aggregate)")
    for d in sorted(report["per_dest"]):
        r = report["per_dest"][d]
        srcs = ", ".join(
            f"{h[0] if isinstance(h, tuple) else h}:{b / 1024:.0f}KiB"
            for h, b in sorted(r.get("bytes_by_source", {}).items())
        )
        print(f"  {d:8s} ok={r.get('ok')} "
              f"verified={r.get('hash_ok')} "
              f"retries={r.get('chunk_retries', 0)} from [{srcs}]")
    return 0 if report["completed"] == len(dests) else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro bulk",
                                     description=__doc__.split("\n")[0])
    sub = parser.add_subparsers(dest="cmd", required=True)
    p_bench = sub.add_parser("bench", help="E13 goodput benchmark")
    p_bench.add_argument("--hosts", type=int, nargs="+",
                         default=[8, 16, 32], choices=sorted(LAYOUTS),
                         help="site sizes to run (default: 8 16 32)")
    p_bench.add_argument("--object-kb", type=int, default=1024,
                         help="object size in KiB (default 1024)")
    p_bench.add_argument("--seed", type=int, default=1)
    p_bench.add_argument("--out", default=".",
                         help="directory for BENCH_bulk_distribution.json")
    p_tree = sub.add_parser("tree", help="show the relay tree, run one fan-out")
    p_tree.add_argument("--racks", type=int, default=4)
    p_tree.add_argument("--per-rack", type=int, default=4)
    p_tree.add_argument("--fanout", type=int, default=2)
    p_tree.add_argument("--object-kb", type=int, default=512)
    p_tree.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    if args.cmd == "bench":
        return _cmd_bench(args)
    return _cmd_tree(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
