"""Fan-out distribution: one object to N hosts through a relay tree.

The naive plan — every destination reads the whole object from the root
— serializes N copies through the root's uplink. The
:class:`Distributor` instead builds a topology-aware relay tree: hosts
are clustered by their dominant network segment, one member per cluster
pulls from the root across the backbone, and the rest pull from relays
inside their own segment, so the object crosses each backbone link a
constant number of times instead of N.

The tree is *pipelined* for free: a relay's children simply fetch from
the relay, and the relay's ``bulk.get_chunk`` handler answers each
chunk as soon as it is committed locally (see
:mod:`repro.bulk.service`) — so chunk *k* flows down the tree while
chunk *k+1* is still arriving at the relay. Because every completed
host announces itself as a source, the tree degrades gracefully into a
swarm: when a relay dies mid-transfer its children strike it and fail
over to the root or to any announced peer, and the relay itself — its
chunk store being durable — resumes from its missing chunks on
recovery rather than starting over.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.bulk.fetch import BulkError
from repro.sim.errors import Interrupt
from repro.sim.events import defuse

if TYPE_CHECKING:  # pragma: no cover
    from repro.bulk.service import BulkService
    from repro.net.topology import Topology

#: Per-tree-level start stagger: a child begins fetching slightly after
#: its parent so the parent has resolved the chunk map (and can hold
#: ``get_chunk`` requests) by the time the first one arrives.
LEVEL_STAGGER = 0.05

#: Off-segment source weight relay children fetch with: low enough that
#: the backbone mostly carries the per-rack head transfers, but nonzero
#: so a child can still drain from the root when its rack goes dark.
TREE_FAR_WEIGHT = 0.25


def build_relay_tree(
    topology: "Topology", root: str, dests: List[str], fanout: int = 2
) -> Dict[str, str]:
    """Parent assignment (dest -> parent host) clustered by segment.

    Destinations are grouped by their dominant segment (the one most of
    the destinations share); each cluster's head pulls from *root*, and
    the rest of the cluster forms a ``fanout``-ary tree under the head,
    so bulk bytes stay inside the segment.
    """
    seg_count: Dict[str, int] = {}
    dest_segs: Dict[str, List[str]] = {}
    for d in dests:
        segs = sorted({nic.segment.name for nic in topology.hosts[d].nics.values()})
        dest_segs[d] = segs
        for s in segs:
            seg_count[s] = seg_count.get(s, 0) + 1
    clusters: Dict[str, List[str]] = {}
    for d in sorted(dests):
        primary = max(dest_segs[d], key=lambda s: (seg_count[s], s))
        clusters.setdefault(primary, []).append(d)
    parents: Dict[str, str] = {}
    for _seg, members in sorted(clusters.items()):
        for i, d in enumerate(members):
            parents[d] = root if i == 0 else members[(i - 1) // fanout]
    return parents


def tree_depth(parents: Dict[str, str], dest: str, root: str) -> int:
    """Levels between *dest* and *root* in the parent map."""
    depth, node = 0, dest
    while node != root and depth < len(parents) + 1:
        node = parents[node]
        depth += 1
    return depth


class Distributor:
    """Drives one-object fan-out over a set of per-host bulk services."""

    def __init__(
        self,
        topology: "Topology",
        services: Dict[str, "BulkService"],
        root: str,
        fanout: int = 2,
    ) -> None:
        if root not in services:
            raise ValueError(f"root {root!r} has no bulk service")
        self.topology = topology
        self.services = services
        self.root = root
        self.fanout = fanout
        self.sim = services[root].sim

    def distribute(
        self,
        name: str,
        payload,
        dests: List[str],
        chunk_size: Optional[int] = None,
        strategy: str = "tree",
        deadline: float = 60.0,
    ):
        """Seed at the root and deliver to every *dest* (a process).

        ``strategy="tree"`` is the pipelined relay tree with swarm
        announcements; ``strategy="unicast"`` is the naive baseline
        where every destination reads the whole object from the root.
        Returns a summary report; per-destination failures are recorded
        rather than raised, so a partial distribution still reports.
        """
        if strategy not in ("tree", "unicast"):
            raise ValueError(f"unknown strategy {strategy!r}")
        return self.sim.process(
            self._distribute(name, payload, list(dests), chunk_size,
                             strategy, deadline),
            name=f"bulk-dist:{name}",
        )

    def _distribute(self, name, payload, dests, chunk_size, strategy, deadline):
        t0 = self.sim.now
        span = self.sim.obs.span("bulk.distribute", obj=name,
                                 strategy=strategy, hosts=len(dests))
        root_svc = self.services[self.root]
        cmap = yield root_svc.seed(name, payload, chunk_size)
        if strategy == "tree":
            parents = build_relay_tree(
                self.topology, self.root, dests, self.fanout)
        else:
            parents = {d: self.root for d in dests}
        t_end = t0 + deadline
        workers = []
        for d in dests:
            stagger = (
                LEVEL_STAGGER * (tree_depth(parents, d, self.root) - 1)
                if strategy == "tree" else 0.0
            )
            workers.append(self.sim.process(
                self._one_dest(name, d, parents[d], strategy, stagger, t_end),
                name=f"bulk-dest:{name}@{d}",
            ))
        yield self.sim.all_of(workers)
        results = {d: w.value for d, w in zip(dests, workers)}
        span.finish()
        completed = [d for d, r in results.items() if r.get("ok")]
        finished = [r["finished_at"] for r in results.values() if r.get("ok")]
        elapsed = (max(finished) - t0) if finished else (self.sim.now - t0)
        return {
            "name": name,
            "strategy": strategy,
            "hosts": len(dests),
            "bytes": cmap.size,
            "nchunks": cmap.nchunks,
            "completed": len(completed),
            "failed": sorted(set(dests) - set(completed)),
            "elapsed": elapsed,
            "aggregate_goodput": (len(completed) * cmap.size / elapsed)
            if elapsed > 0 else 0.0,
            "all_verified": bool(completed)
            and all(results[d].get("hash_ok") for d in completed),
            "chunk_retries": sum(r.get("chunk_retries", 0) for r in results.values()),
            "per_dest": results,
        }

    def _one_dest(self, name, dest, parent, strategy, stagger, t_end):
        """Deliver to one destination, surviving crashes of it and of
        its sources; returns a per-destination report (never raises)."""
        svc = self.services[dest]
        host = svc.host
        # Only the tree parent is a *hint* (heavily preferred); the root
        # is still reachable through the RC source set, but at far-source
        # weight, so child traffic stays off the backbone.
        hints = [self.services[parent].address]
        errors: List[str] = []
        crashes = 0
        if stagger > 0:
            yield self.sim.timeout(stagger)
        while self.sim.now < t_end:
            if not host.up:
                # Park until the host recovers (or the deadline hits) —
                # the durable chunk store makes the retry a *resume*.
                resumed = self.sim.event()

                def on_up(_h, ev=resumed):
                    if not ev.triggered:
                        ev.succeed()

                host.on_recover.append(on_up)
                try:
                    yield self.sim.any_of(
                        [resumed, self.sim.timeout(max(0.0, t_end - self.sim.now))])
                finally:
                    if on_up in host.on_recover:
                        host.on_recover.remove(on_up)
                continue
            fetch = svc.fetcher.fetch(
                name, hints=hints, deadline=max(0.0, t_end - self.sim.now),
                announce=(strategy == "tree"),
                far_weight=TREE_FAR_WEIGHT if strategy == "tree" else 1.0,
            )
            defuse(fetch)

            def on_down(_h, proc=fetch):
                if proc.is_alive:
                    proc.interrupt("host crashed")

            host.on_crash.append(on_down)
            try:
                report = yield fetch
                report["crashes"] = crashes
                return report
            except Interrupt:
                crashes += 1
                errors.append(f"crashed at {self.sim.now:.2f}")
                continue
            except BulkError as exc:
                errors.append(str(exc))
                yield self.sim.timeout(0.2)
                continue
            finally:
                if on_down in host.on_crash:
                    host.on_crash.remove(on_down)
        return {
            "ok": False,
            "name": name,
            "finished_at": None,
            "crashes": crashes,
            "chunk_retries": 0,
            "errors": errors[-3:],
        }
