"""Multi-source chunk fetching: the pull half of the bulk data plane.

A :class:`BulkFetcher` resolves an object's signed chunk map from RC
metadata, then pulls the missing chunks with several concurrent workers
striped across every known *source* — file-server replicas, the origin,
and any peer that has announced a (possibly partial) copy. Sources are
ranked hints-first (the distributor passes the relay parent as a hint,
which is what makes the relay tree topology-aware) and breaker-open
sources sink to the back, mirroring ``FileClient.read``'s failover
order. Striping across sources also stripes across network paths: each
distinct source is a distinct SRUDP destination, so ``PathSelector``
picks per-destination interfaces independently.

Failure handling is per chunk: a timed-out or refused request strikes
the source and requeues the chunk, so a transfer survives a source
dying mid-object as long as any replica remains. Every chunk is
digest-verified against the map before it is committed to the local
:class:`~repro.bulk.service.ChunkStore` — and since the store is
durable, a fetch restarted after a crash resumes from ``missing()``
instead of starting over.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.bulk.chunks import ChunkMap, bulk_urn
from repro.rcds.client import ConsistencyError, RCClient
from repro.robust import TIMEOUTS
from repro.robust.overload import CONTROL
from repro.robust.retry import RetryPolicy
from repro.rpc import RpcClient, RpcError
from repro.security.hashes import content_hash
from repro.sim.errors import Interrupt
from repro.sim.events import defuse

if TYPE_CHECKING:  # pragma: no cover
    from repro.bulk.service import BulkService
    from repro.net.host import Host

#: Strikes before a source is dropped from the pool for this transfer.
MAX_STRIKES = 3

#: Selection weights by proximity: an explicit hint (the relay parent),
#: a peer on a shared segment, anything farther. Weighted — rather than
#: strict-priority — selection keeps a trickle of requests on distant
#: sources, so a transfer aggregates bandwidth across independent links
#: yet leaves the backbone mostly free for the relay heads.
HINT_WEIGHT = 16.0
NEAR_WEIGHT = 4.0
FAR_WEIGHT = 1.0

#: How often the background refresher re-reads RC for new sources, and
#: how long a worker naps when no healthy source is available.
REFRESH_INTERVAL = 0.5
NO_SOURCE_BACKOFF = 0.25


class BulkError(Exception):
    """Chunk map unavailable, or the transfer could not complete."""


def parse_sources(assertions: Dict) -> List[Tuple[str, int]]:
    """``src:<host>:<port>`` assertion keys -> (host, port) pairs."""
    out = []
    for key, info in assertions.items():
        if key.startswith("src:") and info.get("value"):
            hostname, port = key[len("src:"):].rsplit(":", 1)
            out.append((hostname, int(port)))
    return sorted(out)


class BulkFetcher:
    """Pulls one host's copy of bulk objects from ranked sources."""

    #: Seeded-bug switch (``--bug no-chunk-verify``): with verification
    #: off, corrupt chunks are committed and the chunk oracle must catch
    #: the digest mismatch from the probe stream.
    verify_enabled = True

    def __init__(
        self,
        host: "Host",
        rc: RCClient,
        service: "BulkService",
        secret: Optional[bytes] = None,
        parallel: int = 4,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.sim = host.sim
        self.host = host
        self.rc = rc
        self.service = service
        self.secret = secret
        self.parallel = parallel
        #: Rounds of map resolution; chunk-level retry is per source.
        self.retry = retry or RetryPolicy(attempts=3, base_delay=0.2, deadline=5.0)
        self._rpc = RpcClient(host, secret=secret)
        self._rng = host.sim.rng.stream(f"bulk-fetch.{host.name}")
        self.chunk_retries = 0
        self.integrity_failures = 0
        metrics = self.sim.obs.metrics
        self._m_goodput = metrics.histogram("bulk.goodput")
        self._m_retries = metrics.counter("bulk.chunk_retries")
        self._m_bytes = metrics.counter("bulk.bytes")

    # -- map resolution -----------------------------------------------------
    def _resolve_map(self, name: str):
        """Fetch + authenticate the chunk map, with its current sources."""

        def one_round(_attempt: int):
            lookup = self.rc.lookup(bulk_urn(name), lane=CONTROL)
            defuse(lookup)  # the fetch may be interrupted mid-lookup
            try:
                assertions = yield lookup
            except ConsistencyError as exc:
                raise BulkError(f"chunk map for {name!r}: {exc}") from None
            try:
                cmap = ChunkMap.from_assertions(assertions, self.secret)
            except (KeyError, ValueError) as exc:
                raise BulkError(str(exc)) from None
            return cmap, parse_sources(assertions)

        return (
            yield from self.retry.run(
                self.sim, one_round, retry_on=(BulkError,),
                rng=self._rng, op="bulk.map",
            )
        )

    def _rank_sources(
        self, sources: List[Tuple[str, int]], hints: List[Tuple[str, int]],
        strikes: Dict[Tuple[str, int], int], far_weight: float = FAR_WEIGHT,
    ) -> List[Tuple[Tuple[str, int], float]]:
        """Weighted source pool: ``[(source, weight), ...]``.

        Hints dominate (the relay parent in a tree), same-segment peers
        come next, distant sources trail — so bulk bytes stay near the
        destination — and a breaker-open source keeps only a token
        weight. Struck-out sources are dropped entirely.
        """
        me = (self.host.name, self.service.port)
        topo = self.host.topology
        pool: List[Tuple[Tuple[str, int], float]] = []
        seen = set()
        for s in list(hints) + list(sources):
            if s == me or s in seen:
                continue
            seen.add(s)
            if strikes.get(s, 0) >= MAX_STRIKES:
                continue
            if s in hints:
                weight = HINT_WEIGHT
            elif s[0] in topo.hosts and topo.shared_segments(self.host.name, s[0]):
                weight = NEAR_WEIGHT
            else:
                weight = far_weight
            if self._rpc.breaker_open(*s):
                weight *= 0.1
            pool.append((s, weight))
        return pool

    def _pick_source(
        self, pool: List[Tuple[Tuple[str, int], float]]
    ) -> Tuple[str, int]:
        """Weighted draw, so workers stripe across every source while
        still sending most requests to the closest ones."""
        total = sum(w for _, w in pool)
        r = self._rng.random() * total
        for src, w in pool:
            r -= w
            if r <= 0:
                return src
        return pool[-1][0]

    # -- fetching -----------------------------------------------------------
    def fetch(self, name: str, hints: Optional[List[Tuple[str, int]]] = None,
              deadline: float = 30.0, announce: bool = True,
              far_weight: float = FAR_WEIGHT):
        """Pull *name* until the local store holds every chunk (a process).

        *hints* are tried before RC-discovered sources (the relay parent
        in a distribution tree); *far_weight* tunes how much traffic
        off-segment sources get (the distributor lowers it so relay
        children stay off the backbone). Returns a transfer report dict;
        raises :class:`BulkError` if the object is incomplete at
        *deadline*.
        """
        return self.sim.process(
            self._fetch(name, list(hints or []), deadline, announce, far_weight),
            name=f"bulk-fetch:{name}@{self.host.name}",
        )

    def _fetch(self, name: str, hints: List[Tuple[str, int]],
               deadline: float, announce: bool, far_weight: float = FAR_WEIGHT):
        t0 = self.sim.now
        span = self.sim.obs.span("bulk.fetch", host=self.host.name, obj=name)
        cmap, sources = yield from self._resolve_map(name)
        store = self.service.store
        store.ensure(cmap)
        state = {
            "cmap": cmap,
            "queue": deque(store.missing(name)),  # ascending: in-order
            "sources": sources,
            "hints": hints,
            "strikes": {},
            "far_weight": far_weight,
            "retries": 0,
            "bad": 0,
            "bytes_by_source": {},
            "t_end": t0 + deadline,
        }
        procs = []
        if state["queue"]:
            for w in range(min(self.parallel, len(state["queue"]))):
                procs.append(self.sim.process(
                    self._worker(name, state), name=f"bulk-w{w}:{name}"))
            refresher = self.sim.process(
                self._refresh_sources(name, state), name=f"bulk-refresh:{name}")
            defuse(refresher)
            try:
                yield self.sim.all_of(procs)
            finally:
                if refresher.is_alive:
                    refresher.interrupt("fetch done")
                for p in procs:
                    defuse(p)
                    if p.is_alive:
                        p.interrupt("fetch done")
        elapsed = self.sim.now - t0
        span.finish()
        self.chunk_retries += state["retries"]
        self.integrity_failures += state["bad"]
        if not store.complete(name):
            raise BulkError(
                f"{name!r} incomplete on {self.host.name}: "
                f"{store.count(name)}/{cmap.nchunks} chunks after {elapsed:.2f}s"
            )
        payload = store.payload(name)
        actual = content_hash(payload)
        hash_ok = actual == cmap.hash
        if type(self).verify_enabled and not hash_ok:
            # The store holds bytes that no longer hash to the map (e.g.
            # local corruption after commit). Evict exactly the chunks
            # whose digests disagree so the caller's retry re-pulls them
            # from a clean source instead of reassembling the same
            # corrupt payload forever.
            evicted = []
            for seq in range(cmap.nchunks):
                if (store.has(name, seq)
                        and content_hash(store.get(name, seq)) != cmap.digests[seq]):
                    store.discard(name, seq)
                    evicted.append(seq)
                    if self.sim.probes is not None:
                        self.sim.probes.emit("bulk.evict", host=self.host.name,
                                             name=name, seq=seq)
            self.integrity_failures += len(evicted)
            raise BulkError(
                f"{name!r}: reassembled hash mismatch; evicted "
                f"{len(evicted)} corrupt chunk(s) for refetch"
            )
        if self.sim.probes is not None:
            self.sim.probes.emit("bulk.complete", host=self.host.name,
                                 name=name, hash=actual)
        self._m_bytes.inc(cmap.size)
        if elapsed > 0:
            self._m_goodput.observe(cmap.size / elapsed)
        if announce:
            # Completed copies become sources, swarm-style. Best-effort:
            # a partitioned RC must not fail an already-complete fetch.
            ann = self.service.announce(name)
            defuse(ann)
            try:
                yield ann
            except ConsistencyError:
                pass
        return {
            "ok": True,
            "name": name,
            "bytes": cmap.size,
            "nchunks": cmap.nchunks,
            "elapsed": elapsed,
            "finished_at": self.sim.now,
            "chunk_retries": state["retries"],
            "integrity_failures": state["bad"],
            "bytes_by_source": dict(state["bytes_by_source"]),
            "hash_ok": hash_ok,
        }

    def _worker(self, name: str, state: Dict):
        """One fetch lane: pop the next missing chunk, ask a source."""
        store = self.service.store
        cmap: ChunkMap = state["cmap"]
        queue: deque = state["queue"]
        try:
            while not store.complete(name):
                if self.sim.now >= state["t_end"]:
                    return
                try:
                    seq = queue.popleft()
                except IndexError:
                    # Remaining chunks are in flight on other workers.
                    yield self.sim.timeout(NO_SOURCE_BACKOFF / 2)
                    continue
                if store.has(name, seq):
                    continue
                pool = self._rank_sources(
                    state["sources"], state["hints"], state["strikes"],
                    state["far_weight"])
                if not pool:
                    queue.appendleft(seq)
                    yield self.sim.timeout(NO_SOURCE_BACKOFF)
                    continue
                src = self._pick_source(pool)
                call = self._rpc.call(
                    src[0], src[1], "bulk.get_chunk",
                    timeout=TIMEOUTS["bulk.chunk"], name=name, seq=seq,
                )
                # The worker may be interrupted (host crash, fetch done)
                # while parked on this call; defuse so the orphaned call
                # failing later is not an uncaught background crash.
                defuse(call)
                try:
                    resp = yield call
                except RpcError:
                    state["strikes"][src] = state["strikes"].get(src, 0) + 1
                    state["retries"] += 1
                    self._m_retries.inc()
                    queue.appendleft(seq)
                    continue
                data = resp["data"]
                digest = content_hash(data)
                if type(self).verify_enabled and digest != cmap.digests[seq]:
                    state["bad"] += 1
                    state["strikes"][src] = MAX_STRIKES  # poisoned source
                    state["retries"] += 1
                    self._m_retries.inc()
                    queue.appendleft(seq)
                    continue
                if store.add(name, seq, data):
                    by = state["bytes_by_source"]
                    by[src] = by.get(src, 0) + len(data)
                    if self.sim.probes is not None:
                        self.sim.probes.emit(
                            "bulk.chunk", host=self.host.name, name=name,
                            seq=seq, digest=digest, source=src[0],
                        )
        except Interrupt:
            return

    def _refresh_sources(self, name: str, state: Dict):
        """Merge newly-announced sources into the pool, swarm-style."""
        try:
            while True:
                yield self.sim.timeout(REFRESH_INTERVAL)
                lookup = self.rc.lookup(bulk_urn(name), lane=CONTROL)
                defuse(lookup)  # refresher may be interrupted mid-lookup
                try:
                    assertions = yield lookup
                except ConsistencyError:
                    continue
                for src in parse_sources(assertions):
                    if src not in state["sources"]:
                        state["sources"].append(src)
        except Interrupt:
            return

    def close(self) -> None:
        self._rpc.close()
