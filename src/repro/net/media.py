"""Media models for the link types the paper names (§5.2.1, §6, Fig. 1).

Each :class:`Medium` captures the parameters that shape Fig. 1: raw line
rate, per-frame framing overhead (which sets the large-message efficiency
ceiling), MTU (which sets the frame count per message), propagation
latency, and a residual loss rate.

The framing overheads follow the real encapsulations:

* Ethernet: preamble 8 + header 14 + FCS 4 + inter-frame gap 12 = 38 bytes
  per frame of up to 1500 payload bytes (≈97.5 % efficiency at full MTU).
* ATM AAL5: 53-byte cells carry 48 payload bytes (≈90.6 % cell efficiency)
  plus an 8-byte AAL5 trailer per frame; we fold the cell tax into an
  effective per-frame overhead at the 9180-byte classical-IP-over-ATM MTU.
* Myrinet: tiny source-routed headers, cut-through switching.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Medium:
    """A physical medium's timing/overhead model.

    Attributes
    ----------
    name:
        Human-readable medium name (appears in benchmark tables).
    bandwidth:
        Raw line rate in **bytes/second**.
    latency:
        One-way propagation + switching delay in seconds.
    mtu:
        Maximum payload bytes per frame.
    frame_overhead:
        Non-payload bytes charged per frame (headers, trailers, gaps).
    loss_rate:
        Independent per-frame drop probability on a healthy link.
    cell_size, cell_payload:
        If non-zero, payload+overhead is additionally rounded up to whole
        cells of ``cell_size`` bytes carrying ``cell_payload`` each (ATM).
    """

    name: str
    bandwidth: float
    latency: float
    mtu: int
    frame_overhead: int
    loss_rate: float = 0.0
    cell_size: int = 0
    cell_payload: int = 0

    def wire_bytes(self, payload: int) -> int:
        """Bytes actually serialised for a frame carrying *payload* bytes."""
        raw = payload + self.frame_overhead
        if self.cell_size and self.cell_payload:
            cells = math.ceil(raw / self.cell_payload)
            return cells * self.cell_size
        return raw

    def serialize_time(self, payload: int) -> float:
        """Seconds to clock a *payload*-byte frame onto the wire."""
        return self.wire_bytes(payload) / self.bandwidth

    def efficiency_at_mtu(self) -> float:
        """Fraction of line rate available to payload at full-MTU frames."""
        return self.mtu / self.wire_bytes(self.mtu)


#: 10 Mbit/s shared Ethernet (1.25 MB/s line rate).
ETHERNET_10 = Medium(
    name="ethernet-10",
    bandwidth=10e6 / 8,
    latency=100e-6,
    mtu=1500,
    frame_overhead=38,
    loss_rate=1e-5,
)

#: 100 Mbit/s switched Ethernet (12.5 MB/s line rate) — Fig. 1's LAN medium.
ETHERNET_100 = Medium(
    name="ethernet-100",
    bandwidth=100e6 / 8,
    latency=50e-6,
    mtu=1500,
    frame_overhead=38,
    loss_rate=1e-6,
)

#: 155 Mbit/s ATM (19.375 MB/s line rate) — Fig. 1's fast medium. Classical
#: IP over ATM MTU of 9180 with AAL5 trailer; the 48/53 cell tax applies.
ATM_155 = Medium(
    name="atm-155",
    bandwidth=155e6 / 8,
    latency=120e-6,
    mtu=9180,
    frame_overhead=8,
    loss_rate=1e-6,
    cell_size=53,
    cell_payload=48,
)

#: Myrinet SAN: 1.28 Gbit/s, microsecond latency, negligible framing.
MYRINET = Medium(
    name="myrinet",
    bandwidth=1.28e9 / 8,
    latency=10e-6,
    mtu=8192,
    frame_overhead=8,
    loss_rate=0.0,
)

#: A T3 wide-area link: 45 Mbit/s, 20 ms one-way, visible loss.
WAN_T3 = Medium(
    name="wan-t3",
    bandwidth=45e6 / 8,
    latency=20e-3,
    mtu=1500,
    frame_overhead=38,
    loss_rate=1e-4,
)

#: Dial-up modem — the paper's "personal digital assistant" end of the range.
MODEM_56K = Medium(
    name="modem-56k",
    bandwidth=56e3 / 8,
    latency=150e-3,
    mtu=576,
    frame_overhead=10,
    loss_rate=1e-3,
)

#: Satellite serial link: high bandwidth-delay product, lossy.
SERIAL_SAT = Medium(
    name="serial-sat",
    bandwidth=2e6 / 8,
    latency=270e-3,
    mtu=1500,
    frame_overhead=20,
    loss_rate=5e-4,
)

#: In-host loopback for colocated processes.
LOOPBACK = Medium(
    name="loopback",
    bandwidth=400e6,
    latency=5e-6,
    mtu=65536,
    frame_overhead=0,
    loss_rate=0.0,
)
