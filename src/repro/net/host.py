"""Hosts: multi-homed nodes with a tiny protocol demultiplexer.

A host owns NICs, a table of (proto, port) bindings, an optional IP
forwarding function (gateway hosts), and crash/recover state that the
failure injector drives. SNIPE daemons, RC servers, file servers etc. are
all processes that bind ports on a host.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.net.packet import BROADCAST, Frame
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.nic import NIC
    from repro.net.segment import Segment
    from repro.net.topology import Topology
    from repro.sim.kernel import Simulator

#: First auto-assigned ephemeral port.
EPHEMERAL_BASE = 49152


class PortBinding:
    """A bound (proto, port): an inbox of frames plus counters.

    A binding normally queues frames in ``inbox`` for a consumer process;
    a protocol that dispatches per frame without blocking can instead set
    ``handler`` and receive each frame synchronously inside the arrival
    event — no Store round-trip, no receive-loop process. The transports
    all use the handler form; the inbox remains for bindings that want a
    blocking ``get()``.
    """

    def __init__(self, sim: "Simulator", host: "Host", proto: str, port: int) -> None:
        self.host = host
        self.proto = proto
        self.port = port
        self.inbox: Store = Store(sim)
        self.handler: Optional[Callable[[Frame], None]] = None
        self.rx_frames = 0

    def get(self):
        """Event yielding the next frame delivered to this binding."""
        return self.inbox.get()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PortBinding {self.proto}:{self.port}@{self.host.name}>"


class Host:
    """One node of the metacomputer.

    Attributes
    ----------
    arch, os:
        Architecture/OS tags carried in RC host metadata (§5.2.1) and
        matched against spawn requirements.
    cpu_count, cpu_speed:
        Capacity knobs used by the resource managers' load model.
    forwarding:
        If True, frames for other hosts are forwarded along the routing
        table (gateway behaviour).
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        topology: "Topology",
        arch: str = "x86",
        os: str = "unix",
        cpu_count: int = 1,
        cpu_speed: float = 1.0,
        memory: float = 1024.0,
        forwarding: bool = False,
    ) -> None:
        self.sim = sim
        self.name = name
        self.topology = topology
        self.arch = arch
        self.os = os
        self.cpu_count = cpu_count
        self.cpu_speed = cpu_speed
        self.memory = memory
        self.forwarding = forwarding
        self.up = True
        #: Wall-clock skew injected by the failure injector: this host's
        #: notion of "now" is ``sim.now + clock_offset + clock_drift *
        #: (sim.now - _clock_anchor)``. Processes that stamp wall times
        #: into shared state (daemon leases, LWW assertion stamps) must
        #: read :meth:`clock`, never ``sim.now``, so skew propagates the
        #: way it would on real hardware.
        self.clock_offset = 0.0
        self.clock_drift = 0.0
        self._clock_anchor = 0.0
        #: Gray storage fault: when True, checkpoint records written by
        #: processes on this host are silently corrupted after their
        #: digest is computed (a torn/bit-rotten write).
        self.corrupt_ckpt_writes = False
        #: Durable local storage, keyed by component (e.g. ``rcds:385``).
        #: Survives :meth:`crash`/:meth:`recover` — it models the disk,
        #: not memory — so services that journal here can rebuild state
        #: after the host comes back. Only :meth:`Host.__init__` makes a
        #: fresh one: re-provisioning a host is a new machine, losing it.
        self.disk: Dict[str, Any] = {}
        self._health = None
        self.nics: Dict[str, "NIC"] = {}  # iface name -> NIC
        #: Every local IP, for the per-frame "is this frame for us?" test
        #: (kept in step with ``nics``; hosts never lose interfaces).
        self._local_ips: set = set()
        self._bindings: Dict[Tuple[str, int], PortBinding] = {}
        self._next_ephemeral = EPHEMERAL_BASE
        self.unclaimed_frames = 0
        self.forwarded_frames = 0
        #: Called (host) when the host crashes — daemons register here to
        #: kill their tasks; this is how "node failure" propagates upward.
        self.on_crash: List[Callable[["Host"], None]] = []
        self.on_recover: List[Callable[["Host"], None]] = []

    # -- differential health -----------------------------------------------
    @property
    def health(self):
        """This host's view of its peers' differential health
        (:class:`repro.robust.health.HealthBoard`), created on first
        touch. Deliberately *per host*: each node scores peers from its
        own observed outcomes — a real distributed system has no shared
        scoreboard, and one partitioned host's bad experience must not
        quarantine a peer for everyone else."""
        if self._health is None:
            from repro.robust.health import HealthBoard

            self._health = HealthBoard(self.sim, owner=self.name)
        return self._health

    # -- wall clock --------------------------------------------------------
    def clock(self) -> float:
        """This host's (possibly skewed) wall clock.

        Identical to ``sim.now`` until the failure injector installs an
        offset and/or drift via :meth:`set_clock_skew`.
        """
        if self.clock_offset == 0.0 and self.clock_drift == 0.0:
            return self.sim.now
        now = self.sim.now
        return now + self.clock_offset + self.clock_drift * (now - self._clock_anchor)

    def set_clock_skew(self, offset: float = 0.0, drift: float = 0.0) -> None:
        """Install (or clear, with zeros) clock skew, anchored at now."""
        self._clock_anchor = self.sim.now
        self.clock_offset = offset
        self.clock_drift = drift

    # -- interfaces -------------------------------------------------------
    def add_nic(self, iface: str, ip: str, segment: "Segment") -> "NIC":
        from repro.net.nic import NIC  # local import to avoid a cycle

        if iface in self.nics:
            raise ValueError(f"duplicate iface {iface!r} on host {self.name}")
        nic = NIC(self.sim, self, iface, ip, segment)
        self.nics[iface] = nic
        self._local_ips.add(ip)
        return nic

    @property
    def addresses(self) -> List:
        return [nic.address for nic in self.nics.values()]

    def ip_on_segment(self, segment_name: str) -> Optional[str]:
        for nic in self.nics.values():
            if nic.segment.name == segment_name:
                return nic.address.ip
        return None

    def nic_for_ip(self, ip: str) -> Optional["NIC"]:
        for nic in self.nics.values():
            if nic.address.ip == ip:
                return nic
        return None

    def nic_on_segment(self, segment_name: str) -> Optional["NIC"]:
        for nic in self.nics.values():
            if nic.segment.name == segment_name:
                return nic
        return None

    # -- port bindings ------------------------------------------------------
    def bind(self, proto: str, port: int) -> PortBinding:
        key = (proto, port)
        if key in self._bindings:
            raise ValueError(f"{proto}:{port} already bound on {self.name}")
        binding = PortBinding(self.sim, self, proto, port)
        self._bindings[key] = binding
        return binding

    def unbind(self, proto: str, port: int) -> None:
        self._bindings.pop((proto, port), None)

    def is_bound(self, proto: str, port: int) -> bool:
        return (proto, port) in self._bindings

    def ephemeral_port(self) -> int:
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    # -- datapath -----------------------------------------------------------
    def deliver(self, frame: Frame, via_nic: "NIC") -> None:
        """Frame arrived on one of our NICs: consume or forward."""
        if frame.dst_ip in self._local_ips or frame.dst_ip == BROADCAST:
            flight = self.sim.flight
            if flight is not None:
                flight.note_frame(self.name, frame)
            binding = self._bindings.get((frame.proto, frame.dst_port))
            if binding is None:
                self.unclaimed_frames += 1
                return
            binding.rx_frames += 1
            if binding.handler is not None:
                binding.handler(frame)
            else:
                binding.inbox.try_put(frame)
            return
        if self.forwarding and frame.ttl > 0:
            frame.ttl -= 1
            hop = self.topology.next_hop(self.name, frame.dst_ip)
            if hop is not None:
                nic, l2_ip = hop
                frame.l2_dst = None if l2_ip == frame.dst_ip else l2_ip
                tracer = self.sim.obs.tracer
                if tracer.enabled:
                    tracer.event(
                        "frame.forward",
                        trace_id=frame.trace_id,
                        gateway=self.name,
                        proto=frame.proto,
                        dst=frame.dst_ip,
                        out_iface=nic.iface,
                        net=nic.segment.name,
                    )
                nic.send(frame)
                self.forwarded_frames += 1
                return
        self.unclaimed_frames += 1

    # -- failure ------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop: interfaces go dark, registered cleanups run."""
        if not self.up:
            return
        self.up = False
        for nic in self.nics.values():
            nic.up = False
        self.topology.bump_version()
        self.sim.obs.metrics.counter("host.crashes").inc()
        self.sim.obs.tracer.event("host.crash", host=self.name)
        for fn in list(self.on_crash):
            fn(self)

    def recover(self) -> None:
        if self.up:
            return
        self.up = True
        for nic in self.nics.values():
            nic.up = True
        self.topology.bump_version()
        self.sim.obs.tracer.event("host.recover", host=self.name)
        for fn in list(self.on_recover):
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Host {self.name} {'up' if self.up else 'DOWN'} nics={list(self.nics)}>"
