"""Network interfaces: serialisation, transmit queueing, reception.

The NIC owns the only timing bottleneck in the model: its transmit process
clocks one frame at a time onto the wire at the medium's line rate. This
is what makes Fig. 1 come out right — a host cannot exceed its interface's
serialisation rate no matter what the protocol does.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.packet import Address, Frame
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.net.segment import Segment
    from repro.sim.kernel import Simulator

#: Default transmit-queue depth (frames). Overflow drops, like a real NIC.
DEFAULT_TXQ = 1000


class NIC:
    """One interface of a host, attached to one segment."""

    def __init__(
        self,
        sim: "Simulator",
        host: "Host",
        iface: str,
        ip: str,
        segment: "Segment",
    ) -> None:
        self.sim = sim
        self.host = host
        self.iface = iface
        self.segment = segment
        self.address = Address(host=host.name, iface=iface, ip=ip, netname=segment.name)
        self.up = True
        self.txq: Store = Store(sim, capacity=DEFAULT_TXQ)
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.tx_frames = 0
        self.rx_frames = 0
        self.drops = 0
        segment.attach(self)
        sim.process(self._tx_loop(), name=f"nic:{self.address}")

    @property
    def medium(self):
        return self.segment.medium

    def send(self, frame: Frame) -> bool:
        """Queue *frame* for transmission. False == txq overflow (dropped)."""
        if not self.up:
            self.drops += 1
            return False
        if not self.txq.try_put(frame):
            self.drops += 1
            return False
        return True

    def _tx_loop(self):
        """Serialise queued frames one at a time at the medium line rate.

        Frames larger than the MTU are IP-fragmented at this layer: the
        wire time is the sum over fragments and the loss probability
        compounds per fragment, but the frame is still delivered (or lost)
        as a unit. This is what happens when a transport sized its
        segments for a big-MTU path and a failover reroutes them over a
        smaller-MTU medium.
        """
        while True:
            frame = yield self.txq.get()
            if not self.up:
                self.drops += 1
                continue
            mtu = self.medium.mtu
            if frame.size <= mtu:
                fragments = 1
                wire_time = self.medium.serialize_time(frame.size)
            else:
                full, rem = divmod(frame.size, mtu)
                fragments = full + (1 if rem else 0)
                wire_time = full * self.medium.serialize_time(mtu)
                if rem:
                    wire_time += self.medium.serialize_time(rem)
            yield self.sim.timeout(wire_time)
            self.tx_bytes += frame.size
            self.tx_frames += fragments
            prof = self.sim._prof
            if prof is not None:
                prof.wire_bytes += frame.size
                prof.wire_frames += fragments
            self.segment.propagate(self, frame, fragments=fragments)

    def receive(self, frame: Frame) -> None:
        """Frame arrived from the segment; hand it up to the host stack."""
        if not self.up or not self.host.up:
            self.drops += 1
            return
        self.rx_bytes += frame.size
        self.rx_frames += 1
        self.host.deliver(frame, self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<NIC {self.address} {'up' if self.up else 'DOWN'}>"
