"""Network interfaces: serialisation, transmit queueing, reception.

The NIC owns the only timing bottleneck in the model: it clocks one
frame at a time onto the wire at the medium's line rate. This is what
makes Fig. 1 come out right — a host cannot exceed its interface's
serialisation rate no matter what the protocol does.

Transmission is clocked by a ``_busy_until`` timestamp rather than a
per-frame completion event: a send on an idle interface charges its wire
time forward and propagates immediately (the arrival event the segment
schedules already encodes serialisation + latency), so the uncontended
path costs exactly one kernel event per frame. Only when frames queue
behind a busy wire does a :class:`_TxDrain` event exist — one per queued
frame — to pace the backlog at line rate. Compared with the original
Store-fed transmit loop this is one event per frame instead of three and
no generator resumes; the NIC was the single hottest subsystem in the
E12 profile.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Tuple

from repro.net.packet import Address, Frame
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.net.segment import Segment
    from repro.sim.kernel import Simulator

#: Default transmit-queue depth (frames). Overflow drops, like a real NIC.
DEFAULT_TXQ = 1000


class _TxDrain(Event):
    """The wire is free again: transmit the next queued frame.

    Exists only while the transmit queue is non-empty. Overrides
    ``_process`` so no callback list is allocated; ``prof_owner`` hands
    the profiler the (subsystem, host) attribution it would otherwise
    parse from a process name.
    """

    __slots__ = ("nic", "prof_owner")

    def __init__(self, nic: "NIC", delay: float) -> None:
        # Slot-inlined init (see segment._Arrival): one of these exists
        # per *queued* frame, which under congestion is most frames.
        self.sim = nic.sim
        self.callbacks = None
        self._value = None
        self._exc = None
        self._processed = False
        self.nic = nic
        self.prof_owner = ("nic", nic.host.name)
        self.sim._schedule(self, delay)

    def _process(self) -> None:
        if self._processed:
            return
        self._processed = True
        self.nic._drain()


class NIC:
    """One interface of a host, attached to one segment."""

    def __init__(
        self,
        sim: "Simulator",
        host: "Host",
        iface: str,
        ip: str,
        segment: "Segment",
    ) -> None:
        self.sim = sim
        self.host = host
        self.iface = iface
        self.segment = segment
        self.address = Address(host=host.name, iface=iface, ip=ip, netname=segment.name)
        self.up = True
        self.txq: Deque[Frame] = deque()
        self.txq_capacity = DEFAULT_TXQ
        #: Virtual time until which the wire is occupied by a frame whose
        #: propagation is already scheduled.
        self._busy_until = 0.0
        #: True while a _TxDrain event is pending for the queued backlog.
        self._draining = False
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.tx_frames = 0
        self.rx_frames = 0
        self.drops = 0
        segment.attach(self)

    @property
    def medium(self):
        return self.segment.medium

    def send(self, frame: Frame) -> bool:
        """Queue *frame* for transmission. False == txq overflow (dropped)."""
        if not self.up:
            self.drops += 1
            return False
        now = self.sim.now
        if self._draining or now < self._busy_until:
            # The in-flight frame counts toward the queue depth, so a
            # busy NIC holds at most ``txq_capacity`` frames total.
            if len(self.txq) + 1 >= self.txq_capacity:
                self.drops += 1
                return False
            self.txq.append(frame)
            if not self._draining:
                self._draining = True
                _TxDrain(self, self._busy_until - now)
            return True
        fragments, wire_time = self._wire_cost(frame)
        self._busy_until = now + wire_time
        self._transmit(frame, fragments, wire_time)
        return True

    def _wire_cost(self, frame: Frame) -> Tuple[int, float]:
        """(fragments, wire seconds) for *frame* on this medium.

        Frames larger than the MTU are IP-fragmented at this layer: the
        wire time is the sum over fragments and the loss probability
        compounds per fragment, but the frame is still delivered (or
        lost) as a unit. This is what happens when a transport sized its
        segments for a big-MTU path and a failover reroutes them over a
        smaller-MTU medium.
        """
        medium = self.segment.medium
        mtu = medium.mtu
        if frame.size <= mtu:
            return 1, medium.serialize_time(frame.size)
        full, rem = divmod(frame.size, mtu)
        fragments = full + (1 if rem else 0)
        wire_time = full * medium.serialize_time(mtu)
        if rem:
            wire_time += medium.serialize_time(rem)
        return fragments, wire_time

    def _transmit(self, frame: Frame, fragments: int, wire_time: float) -> None:
        # Accounting is charged when serialisation starts; the arrival
        # the segment schedules lands ``wire_time + latency`` later, so
        # delivery timing is identical to completion-time propagation. A
        # frame whose serialisation has started finishes even if the host
        # crashes mid-way (the bits left the building).
        self.tx_bytes += frame.size
        self.tx_frames += fragments
        prof = self.sim._prof
        if prof is not None:
            prof.wire_bytes += frame.size
            prof.wire_frames += fragments
        self.segment.propagate(self, frame, fragments=fragments, wire_time=wire_time)

    def _drain(self) -> None:
        # Queued frames behind a crashed interface are dropped; a frame
        # already on the wire was propagated when it started serialising.
        txq = self.txq
        if not self.up:
            self.drops += len(txq)
            txq.clear()
            self._draining = False
            return
        frame = txq.popleft()
        fragments, wire_time = self._wire_cost(frame)
        self._busy_until = self.sim.now + wire_time
        self._transmit(frame, fragments, wire_time)
        if txq:
            _TxDrain(self, wire_time)
        else:
            self._draining = False

    def receive(self, frame: Frame) -> None:
        """Frame arrived from the segment; hand it up to the host stack."""
        if not self.up or not self.host.up:
            self.drops += 1
            return
        self.rx_bytes += frame.size
        self.rx_frames += 1
        self.host.deliver(frame, self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<NIC {self.address} {'up' if self.up else 'DOWN'}>"
