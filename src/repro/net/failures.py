"""Failure injection: scheduled and stochastic host/link failures.

This is the stand-in for the paper's unreliable Internet: experiments E3,
E5, E7 and E8 use it to kill hosts, cut segments, and partition the
network, either at fixed times (reproducible scenarios) or as a Poisson
failure/repair process (availability measurements). The chaos harness
(:mod:`repro.robust.chaos`) layers seeded schedules of all three on top.

Concurrent scripts are safe: each host/segment carries a hold *refcount*,
so a scheduled ``host_down_at`` overlapping ``churn_hosts`` on the same
host neither re-crashes an already-down host nor "recovers" a host that
another script still holds down — the overlapping action is skipped and
logged (``*_skipped`` log entries, ``failures.skipped`` counter).

Every injected event is also emitted into the observability layer
(counters ``failures.host_down|host_up|segment_down|segment_up`` and
trace events), so ``obs report`` shows the fault timeline alongside the
latency tables it produced.

Gray faults (none of which bump the topology version — gray failures are
*invisible* to the control plane by design):

* :meth:`partition_oneway_at` — cut A→B while B→A still flows; the
  symmetric :meth:`partition_at` is implemented on the same per-direction
  hold records, so both land identically in the log/FlightRecorder.
* :meth:`impair_link_at` — probabilistic loss/duplication/reorder/
  bit-flip corruption on one segment direction.
* :meth:`skew_clock_at` — offset/drift a host's wall clock, which skews
  its lease and LWW assertion stamps.
* :meth:`corrupt_checkpoints_at` — checkpoint writes from a host are
  silently corrupted after digesting (torn writes / bit rot).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.topology import Topology
    from repro.sim.kernel import Simulator


class FailureInjector:
    """Drives crash/recover and link down/up events against a topology."""

    def __init__(self, sim: "Simulator", topology: "Topology") -> None:
        self.sim = sim
        self.topology = topology
        self._rng = sim.rng.stream("failures")
        self.log: List[Tuple[float, str, str]] = []
        #: Hold refcounts: how many injection scripts currently want this
        #: host/segment down. Transitions happen only at 0 <-> 1.
        self._host_holds: Dict[str, int] = {}
        self._segment_holds: Dict[str, int] = {}
        metrics = sim.obs.metrics
        self._m_host_down = metrics.counter("failures.host_down")
        self._m_host_up = metrics.counter("failures.host_up")
        self._m_segment_down = metrics.counter("failures.segment_down")
        self._m_segment_up = metrics.counter("failures.segment_up")
        self._m_skipped = metrics.counter("failures.skipped")
        self._m_congested = metrics.counter("failures.segment_congested")
        self._m_decongested = metrics.counter("failures.segment_decongested")
        self._m_slowed = metrics.counter("failures.host_slowed")
        self._m_unslowed = metrics.counter("failures.host_unslowed")
        self._m_link_down = metrics.counter("failures.link_down")
        self._m_link_up = metrics.counter("failures.link_up")
        self._m_impaired = metrics.counter("failures.link_impaired")
        self._m_unimpaired = metrics.counter("failures.link_unimpaired")
        self._m_skewed = metrics.counter("failures.clock_skewed")
        self._m_unskewed = metrics.counter("failures.clock_unskewed")
        self._m_ckpt_corrupt = metrics.counter("failures.ckpt_corruptor")

    # -- scheduled one-shots -----------------------------------------------
    def host_down_at(self, t: float, host: str, duration: Optional[float] = None) -> None:
        """Crash *host* at time *t*; recover after *duration* if given."""

        def script():
            yield self.sim.timeout(max(0.0, t - self.sim.now))
            self._host_down(host)
            if duration is not None:
                yield self.sim.timeout(duration)
                self._host_up(host)

        self.sim.process(script(), name=f"fail:host:{host}")

    def segment_down_at(self, t: float, segment: str, duration: Optional[float] = None) -> None:
        """Cut *segment* at time *t*; restore after *duration* if given."""

        def script():
            yield self.sim.timeout(max(0.0, t - self.sim.now))
            self._segment_down(segment)
            if duration is not None:
                yield self.sim.timeout(duration)
                self._segment_up(segment)

        self.sim.process(script(), name=f"fail:segment:{segment}")

    def partition_at(
        self, t: float, side_a: Iterable[str], side_b: Iterable[str],
        duration: Optional[float] = None,
    ) -> None:
        """Partition: cut cross-side traffic on every spanning segment.

        Implemented as per-direction hold records (A→B *and* B→A), the
        same primitive :meth:`partition_oneway_at` uses — so symmetric
        and asymmetric partitions share one code path and log shape.
        Same-side traffic on a spanning segment keeps flowing, which is
        what a real partition does (the old implementation took the
        whole segment down).
        """
        self._partition_script(t, side_a, side_b, duration, both=True)

    def partition_oneway_at(
        self, t: float, side_a: Iterable[str], side_b: Iterable[str],
        duration: Optional[float] = None,
    ) -> None:
        """Asymmetric partition: frames A→B are eaten, B→A still flow.

        This is the classic gray failure: B's replies/heartbeats arrive
        nowhere, while everything B sends looks healthy.
        """
        self._partition_script(t, side_a, side_b, duration, both=False)

    def _partition_script(
        self, t: float, side_a: Iterable[str], side_b: Iterable[str],
        duration: Optional[float], both: bool,
    ) -> None:
        side_a, side_b = set(side_a), set(side_b)

        def script():
            yield self.sim.timeout(max(0.0, t - self.sim.now))
            cut = []
            for seg in self.topology.segments.values():
                owners = {nic.host.name for nic in seg.nics.values()}
                on_a, on_b = owners & side_a, owners & side_b
                if not on_a or not on_b:
                    continue
                for a in sorted(on_a):
                    for b in sorted(on_b):
                        self._link_down(seg.name, a, b)
                        cut.append((seg.name, a, b))
                        if both:
                            self._link_down(seg.name, b, a)
                            cut.append((seg.name, b, a))
            if duration is not None:
                yield self.sim.timeout(duration)
                for seg_name, src, dst in cut:
                    self._link_up(seg_name, src, dst)

        name = "fail:partition" if both else "fail:partition-oneway"
        self.sim.process(script(), name=name)

    # -- gray link/host faults ---------------------------------------------
    def impair_link_at(
        self, t: float, segment: str, src: str = "*", dst: str = "*",
        loss: float = 0.0, dup: float = 0.0, reorder: float = 0.0,
        corrupt: float = 0.0, jitter: float = 0.05,
        duration: Optional[float] = None, symmetric: bool = False,
    ) -> None:
        """Impair the *src*→*dst* direction of *segment* at time *t*.

        Installs a probabilistic :class:`~repro.net.segment.LinkFault`
        (loss / duplication / reordering / bit-flip corruption) and
        removes it after *duration*. ``"*"`` wildcards either endpoint;
        ``symmetric=True`` impairs both directions.
        """
        from repro.net.segment import LinkFault

        fault = LinkFault(loss=loss, dup=dup, reorder=reorder,
                          corrupt=corrupt, jitter=jitter)

        def script():
            yield self.sim.timeout(max(0.0, t - self.sim.now))
            seg = self.topology.segments[segment]
            dirs = [(src, dst)]
            if symmetric and (src, dst) != (dst, src):
                dirs.append((dst, src))
            for s, d in dirs:
                seg.add_fault(s, d, fault)
                self.log.append((self.sim.now, "link_impaired",
                                 f"{segment}:{s}->{d}"))
                self._m_impaired.inc()
                self._trace("link_impaired", f"{segment}:{s}->{d}")
            if duration is not None:
                yield self.sim.timeout(duration)
                for s, d in dirs:
                    seg.remove_fault(s, d, fault)
                    self.log.append((self.sim.now, "link_unimpaired",
                                     f"{segment}:{s}->{d}"))
                    self._m_unimpaired.inc()
                    self._trace("link_unimpaired", f"{segment}:{s}->{d}")

        self.sim.process(script(), name=f"fail:impair:{segment}")

    def skew_clock_at(
        self, t: float, host: str, offset: float = 0.0, drift: float = 0.0,
        duration: Optional[float] = None,
    ) -> None:
        """Skew *host*'s wall clock at time *t*; restore after *duration*.

        Everything the host stamps with wall time — daemon lease expiry,
        LWW assertion stamps — is skewed by ``offset + drift * elapsed``.
        """

        def script():
            yield self.sim.timeout(max(0.0, t - self.sim.now))
            h = self.topology.hosts[host]
            h.set_clock_skew(offset=offset, drift=drift)
            self.log.append((self.sim.now, "clock_skewed", host))
            self._m_skewed.inc()
            self._trace("clock_skewed", host)
            if duration is not None:
                yield self.sim.timeout(duration)
                h.set_clock_skew()
                self.log.append((self.sim.now, "clock_unskewed", host))
                self._m_unskewed.inc()
                self._trace("clock_unskewed", host)

        self.sim.process(script(), name=f"fail:skew:{host}")

    def corrupt_checkpoints_at(
        self, t: float, host: str, duration: Optional[float] = None,
    ) -> None:
        """From time *t*, checkpoint records written by processes on
        *host* are silently corrupted after digesting (torn writes)."""

        def script():
            yield self.sim.timeout(max(0.0, t - self.sim.now))
            h = self.topology.hosts[host]
            h.corrupt_ckpt_writes = True
            self.log.append((self.sim.now, "ckpt_corruptor_on", host))
            self._m_ckpt_corrupt.inc()
            self._trace("ckpt_corruptor_on", host)
            if duration is not None:
                yield self.sim.timeout(duration)
                h.corrupt_ckpt_writes = False
                self.log.append((self.sim.now, "ckpt_corruptor_off", host))
                self._trace("ckpt_corruptor_off", host)

        self.sim.process(script(), name=f"fail:ckpt:{host}")

    # -- degradation (overload scenarios) -----------------------------------
    def congest_segment_at(
        self, t: float, segment: str, factor: float, duration: Optional[float] = None
    ) -> None:
        """Degrade *segment* at time *t*: divide bandwidth and multiply
        latency by *factor*; restore after *duration* if given.

        Media are frozen and shared between segments, so congestion swaps
        the segment's ``medium`` for a degraded replica rather than
        mutating it. Overlapping congestion windows stack
        multiplicatively and unwind in any order (each script undoes
        exactly its own factor).
        """

        def script():
            import dataclasses

            yield self.sim.timeout(max(0.0, t - self.sim.now))
            seg = self.topology.segments[segment]
            seg.medium = dataclasses.replace(
                seg.medium,
                bandwidth=seg.medium.bandwidth / factor,
                latency=seg.medium.latency * factor,
            )
            self.log.append((self.sim.now, "segment_congested", segment))
            self._m_congested.inc()
            self._trace("segment_congested", segment)
            if duration is not None:
                yield self.sim.timeout(duration)
                seg.medium = dataclasses.replace(
                    seg.medium,
                    bandwidth=seg.medium.bandwidth * factor,
                    latency=seg.medium.latency / factor,
                )
                self.log.append((self.sim.now, "segment_decongested", segment))
                self._m_decongested.inc()
                self._trace("segment_decongested", segment)

        self.sim.process(script(), name=f"fail:congest:{segment}")

    def slow_host_at(
        self, t: float, host: str, factor: float, duration: Optional[float] = None
    ) -> None:
        """Slow *host* at time *t*: divide ``cpu_speed`` by *factor* (all
        compute takes *factor* times longer); restore after *duration*.
        Overlaps stack multiplicatively, like congestion."""

        def script():
            yield self.sim.timeout(max(0.0, t - self.sim.now))
            h = self.topology.hosts[host]
            h.cpu_speed /= factor
            self.log.append((self.sim.now, "host_slowed", host))
            self._m_slowed.inc()
            self._trace("host_slowed", host)
            if duration is not None:
                yield self.sim.timeout(duration)
                h.cpu_speed *= factor
                self.log.append((self.sim.now, "host_unslowed", host))
                self._m_unslowed.inc()
                self._trace("host_unslowed", host)

        self.sim.process(script(), name=f"fail:slow:{host}")

    # -- stochastic churn -----------------------------------------------------
    def churn_hosts(
        self,
        hosts: Iterable[str],
        mtbf: float,
        mttr: float,
        stop_at: float,
    ) -> None:
        """Each host alternates up (Exp(mtbf)) and down (Exp(mttr)) phases.

        This models the paper's testbed environment: independent node
        failures with repair, over a long horizon.
        """
        for name in hosts:
            self.sim.process(self._churn_one(name, mtbf, mttr, stop_at), name=f"churn:{name}")

    def _churn_one(self, host: str, mtbf: float, mttr: float, stop_at: float):
        while self.sim.now < stop_at:
            uptime = self._rng.expovariate(1.0 / mtbf)
            yield self.sim.timeout(uptime)
            if self.sim.now >= stop_at:
                break
            self._host_down(host)
            downtime = self._rng.expovariate(1.0 / mttr)
            yield self.sim.timeout(downtime)
            self._host_up(host)

    # -- primitives --------------------------------------------------------
    def _trace(self, kind: str, name: str) -> None:
        tracer = self.sim.obs.tracer
        if tracer.enabled:
            tracer.event(f"failure.{kind}", target=name)

    def _host_down(self, name: str) -> None:
        holds = self._host_holds.get(name, 0)
        self._host_holds[name] = holds + 1
        if holds:
            # Another script already holds this host down; stacking the
            # hold is enough — crashing a corpse would double-run cleanups.
            self.log.append((self.sim.now, "host_down_skipped", name))
            self._m_skipped.inc()
            return
        self.topology.hosts[name].crash()
        self.log.append((self.sim.now, "host_down", name))
        self._m_host_down.inc()
        self._trace("host_down", name)

    def _host_up(self, name: str) -> None:
        holds = self._host_holds.get(name, 0)
        if holds > 1:
            # Someone else still wants it down: release our hold only.
            self._host_holds[name] = holds - 1
            self.log.append((self.sim.now, "host_up_skipped", name))
            self._m_skipped.inc()
            return
        self._host_holds[name] = 0
        self.topology.hosts[name].recover()
        self.log.append((self.sim.now, "host_up", name))
        self._m_host_up.inc()
        self._trace("host_up", name)

    def _link_down(self, segment: str, src: str, dst: str) -> None:
        """Hold the *src*→*dst* direction of *segment* down (refcounted).

        Per-direction hold records are the shared primitive beneath both
        symmetric and one-way partitions; the segment's own refcount
        makes overlapping scripts safe (each release undoes one hold).
        Deliberately does *not* bump the topology version: a gray cut is
        invisible to routing and path caches.
        """
        self.topology.segments[segment].block_link(src, dst)
        self.log.append((self.sim.now, "link_down", f"{segment}:{src}->{dst}"))
        self._m_link_down.inc()
        self._trace("link_down", f"{segment}:{src}->{dst}")

    def _link_up(self, segment: str, src: str, dst: str) -> None:
        self.topology.segments[segment].unblock_link(src, dst)
        self.log.append((self.sim.now, "link_up", f"{segment}:{src}->{dst}"))
        self._m_link_up.inc()
        self._trace("link_up", f"{segment}:{src}->{dst}")

    def _segment_down(self, name: str) -> None:
        holds = self._segment_holds.get(name, 0)
        self._segment_holds[name] = holds + 1
        if holds:
            self.log.append((self.sim.now, "segment_down_skipped", name))
            self._m_skipped.inc()
            return
        self.topology.segments[name].up = False
        self.topology.bump_version()
        self.log.append((self.sim.now, "segment_down", name))
        self._m_segment_down.inc()
        self._trace("segment_down", name)

    def _segment_up(self, name: str) -> None:
        holds = self._segment_holds.get(name, 0)
        if holds > 1:
            self._segment_holds[name] = holds - 1
            self.log.append((self.sim.now, "segment_up_skipped", name))
            self._m_skipped.inc()
            return
        self._segment_holds[name] = 0
        self.topology.segments[name].up = True
        self.topology.bump_version()
        self.log.append((self.sim.now, "segment_up", name))
        self._m_segment_up.inc()
        self._trace("segment_up", name)
