"""Failure injection: scheduled and stochastic host/link failures.

This is the stand-in for the paper's unreliable Internet: experiments E3,
E5, E7 and E8 use it to kill hosts, cut segments, and partition the
network, either at fixed times (reproducible scenarios) or as a Poisson
failure/repair process (availability measurements).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.topology import Topology
    from repro.sim.kernel import Simulator


class FailureInjector:
    """Drives crash/recover and link down/up events against a topology."""

    def __init__(self, sim: "Simulator", topology: "Topology") -> None:
        self.sim = sim
        self.topology = topology
        self._rng = sim.rng.stream("failures")
        self.log: List[Tuple[float, str, str]] = []

    # -- scheduled one-shots -----------------------------------------------
    def host_down_at(self, t: float, host: str, duration: Optional[float] = None) -> None:
        """Crash *host* at time *t*; recover after *duration* if given."""

        def script():
            yield self.sim.timeout(max(0.0, t - self.sim.now))
            self._host_down(host)
            if duration is not None:
                yield self.sim.timeout(duration)
                self._host_up(host)

        self.sim.process(script(), name=f"fail:host:{host}")

    def segment_down_at(self, t: float, segment: str, duration: Optional[float] = None) -> None:
        """Cut *segment* at time *t*; restore after *duration* if given."""

        def script():
            yield self.sim.timeout(max(0.0, t - self.sim.now))
            self._segment_down(segment)
            if duration is not None:
                yield self.sim.timeout(duration)
                self._segment_up(segment)

        self.sim.process(script(), name=f"fail:segment:{segment}")

    def partition_at(
        self, t: float, side_a: Iterable[str], side_b: Iterable[str], duration: Optional[float] = None
    ) -> None:
        """Partition: cut every segment with NICs from both host sets."""
        side_a, side_b = set(side_a), set(side_b)

        def script():
            yield self.sim.timeout(max(0.0, t - self.sim.now))
            cut = []
            for seg in self.topology.segments.values():
                owners = {nic.host.name for nic in seg.nics.values()}
                if owners & side_a and owners & side_b:
                    self._segment_down(seg.name)
                    cut.append(seg.name)
            if duration is not None:
                yield self.sim.timeout(duration)
                for name in cut:
                    self._segment_up(name)

        self.sim.process(script(), name="fail:partition")

    # -- stochastic churn -----------------------------------------------------
    def churn_hosts(
        self,
        hosts: Iterable[str],
        mtbf: float,
        mttr: float,
        stop_at: float,
    ) -> None:
        """Each host alternates up (Exp(mtbf)) and down (Exp(mttr)) phases.

        This models the paper's testbed environment: independent node
        failures with repair, over a long horizon.
        """
        for name in hosts:
            self.sim.process(self._churn_one(name, mtbf, mttr, stop_at), name=f"churn:{name}")

    def _churn_one(self, host: str, mtbf: float, mttr: float, stop_at: float):
        while self.sim.now < stop_at:
            uptime = self._rng.expovariate(1.0 / mtbf)
            yield self.sim.timeout(uptime)
            if self.sim.now >= stop_at:
                break
            self._host_down(host)
            downtime = self._rng.expovariate(1.0 / mttr)
            yield self.sim.timeout(downtime)
            self._host_up(host)

    # -- primitives --------------------------------------------------------
    def _host_down(self, name: str) -> None:
        self.topology.hosts[name].crash()
        self.log.append((self.sim.now, "host_down", name))

    def _host_up(self, name: str) -> None:
        self.topology.hosts[name].recover()
        self.log.append((self.sim.now, "host_up", name))

    def _segment_down(self, name: str) -> None:
        self.topology.segments[name].up = False
        self.topology.bump_version()
        self.log.append((self.sim.now, "segment_down", name))

    def _segment_up(self, name: str) -> None:
        self.topology.segments[name].up = True
        self.topology.bump_version()
        self.log.append((self.sim.now, "segment_up", name))
