"""Frames and addresses.

A :class:`Frame` is the unit handed to a NIC: it carries an opaque payload
object plus a declared payload size in bytes. The simulator charges wire
time for the declared size; it never serialises the Python object itself.

An :class:`Address` names one network interface. The paper's hosts are
multi-homed (§5.2.1: "one or more network interfaces … netmask … net
name"), so host identity and interface address are distinct; routing and
media selection happen over addresses, naming over hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


class _FrameIdSource:
    """Monotonic frame-id allocator whose position is readable.

    The kernel profiler charges Frame constructions between two
    snapshots of :func:`frames_constructed`; a bare ``itertools.count``
    cannot be read without consuming it.
    """

    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0

    def __call__(self) -> int:
        self.n += 1
        return self.n


_frame_ids = _FrameIdSource()


def frames_constructed() -> int:
    """Total Frames constructed in this process (monotonic)."""
    return _frame_ids.n

#: Destination IP meaning "every NIC on the segment except the sender".
BROADCAST = "*"


@dataclass(frozen=True)
class Address:
    """One interface: (host, iface) identity plus its IP and net name."""

    host: str
    iface: str
    ip: str
    netname: str

    def __str__(self) -> str:
        return f"{self.ip}({self.host}.{self.iface})"


@dataclass
class Frame:
    """A link-layer frame in flight.

    ``size`` is the transport-layer payload size in bytes; the medium adds
    its own framing overhead when computing wire time. ``proto`` and the
    port pair demultiplex to a transport endpoint on the destination host.
    ``ttl`` guards against forwarding loops.
    """

    src: Address
    dst_ip: str
    proto: str
    src_port: int
    dst_port: int
    payload: Any
    size: int
    ttl: int = 16
    frame_id: int = field(default_factory=_frame_ids)
    #: L2 next hop on the current segment when forwarding through gateways;
    #: None means "dst_ip is on this segment".
    l2_dst: Optional[str] = None
    #: Filled in by the delivering segment so receivers know the medium.
    via_segment: Optional[str] = None
    #: Causal trace id stamped by the sending transport: every frame a
    #: logical message send produces (first transmissions, retransmits,
    #: reroutes, gateway forwards) carries the same id, so one send can be
    #: reconstructed end-to-end from the trace stream.
    trace_id: Optional[int] = None
    #: End-to-end payload digest stamped by verifying transports (SHA-256
    #: of the message payload, computed once per message — see
    #: :func:`repro.security.hashes.content_hash`). None = the sending
    #: transport does not verify.
    digest: Optional[str] = None
    #: Set by the failure injector when the wire flipped bits in this
    #: frame's payload. Receivers never read this flag directly — they
    #: detect corruption by recomputing the payload digest; the flag is
    #: what makes that recomputation come out wrong (and what the
    #: corruption oracle uses as ground truth when verification is
    #: deliberately disabled).
    corrupt: bool = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Frame #{self.frame_id} {self.proto} {self.src.ip}:{self.src_port}"
            f"->{self.dst_ip}:{self.dst_port} {self.size}B>"
        )
