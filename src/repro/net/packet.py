"""Frames and addresses.

A :class:`Frame` is the unit handed to a NIC: it carries an opaque payload
object plus a declared payload size in bytes. The simulator charges wire
time for the declared size; it never serialises the Python object itself.

An :class:`Address` names one network interface. The paper's hosts are
multi-homed (§5.2.1: "one or more network interfaces … netmask … net
name"), so host identity and interface address are distinct; routing and
media selection happen over addresses, naming over hosts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

#: Destination IP meaning "every NIC on the segment except the sender".
BROADCAST = "*"


@dataclass(frozen=True)
class Address:
    """One interface: (host, iface) identity plus its IP and net name."""

    host: str
    iface: str
    ip: str
    netname: str

    def __str__(self) -> str:
        return f"{self.ip}({self.host}.{self.iface})"


class Frame:
    """A link-layer frame in flight.

    ``size`` is the transport-layer payload size in bytes; the medium adds
    its own framing overhead when computing wire time. ``proto`` and the
    port pair demultiplex to a transport endpoint on the destination host.
    ``ttl`` guards against forwarding loops.

    A hand-rolled ``__slots__`` class rather than a dataclass: frames are
    the hottest allocation on the wire path (one per fragment per hop),
    and dataclass ``__init__``/``__eq__`` machinery plus a ``__dict__``
    per instance showed up in the kernel profile. Frame ids come from
    the owning simulation (:meth:`repro.sim.Simulator.next_frame_id`),
    never from process-global state, so back-to-back simulations in one
    test process see identical id streams.
    """

    __slots__ = (
        "src",
        "dst_ip",
        "proto",
        "src_port",
        "dst_port",
        "payload",
        "size",
        "ttl",
        "frame_id",
        "l2_dst",
        "via_segment",
        "trace_id",
        "digest",
        "corrupt",
    )

    def __init__(
        self,
        src: Address,
        dst_ip: str,
        proto: str,
        src_port: int,
        dst_port: int,
        payload: Any,
        size: int,
        ttl: int = 16,
        frame_id: int = 0,
        l2_dst: Optional[str] = None,
        via_segment: Optional[str] = None,
        trace_id: Optional[int] = None,
        digest: Optional[str] = None,
        corrupt: bool = False,
    ) -> None:
        self.src = src
        self.dst_ip = dst_ip
        self.proto = proto
        self.src_port = src_port
        self.dst_port = dst_port
        self.payload = payload
        self.size = size
        #: Guards against forwarding loops.
        self.ttl = ttl
        #: Per-simulation id, stamped by the sending transport from
        #: ``sim.next_frame_id()`` (0 = unstamped, only in unit tests).
        self.frame_id = frame_id
        #: L2 next hop on the current segment when forwarding through
        #: gateways; None means "dst_ip is on this segment".
        self.l2_dst = l2_dst
        #: Filled in by the delivering segment so receivers know the medium.
        self.via_segment = via_segment
        #: Causal trace id stamped by the sending transport: every frame a
        #: logical message send produces (first transmissions, retransmits,
        #: reroutes, gateway forwards) carries the same id, so one send can
        #: be reconstructed end-to-end from the trace stream.
        self.trace_id = trace_id
        #: End-to-end payload digest stamped by verifying transports
        #: (SHA-256 of the message payload, computed once per message — see
        #: :func:`repro.security.hashes.content_hash`). None = the sending
        #: transport does not verify.
        self.digest = digest
        #: Set by the failure injector when the wire flipped bits in this
        #: frame's payload. Receivers never read this flag directly — they
        #: detect corruption by recomputing the payload digest; the flag is
        #: what makes that recomputation come out wrong (and what the
        #: corruption oracle uses as ground truth when verification is
        #: deliberately disabled).
        self.corrupt = corrupt

    def __copy__(self) -> "Frame":
        dup = Frame.__new__(Frame)
        for name in Frame.__slots__:
            setattr(dup, name, getattr(self, name))
        return dup

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Frame #{self.frame_id} {self.proto} {self.src.ip}:{self.src_port}"
            f"->{self.dst_ip}:{self.dst_port} {self.size}B>"
        )
