"""Topology: the registry of hosts and segments, plus IP-style routing.

Routing runs Dijkstra over the bipartite host–segment graph; only hosts
flagged ``forwarding`` may appear in a path's interior (gateways). Route
computations respect link/host health and are cached against a topology
version counter that failure events bump, so routes recompute after every
failure or repair — this is what E8 (failover) exercises.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.net.host import Host
from repro.net.media import Medium
from repro.net.segment import Segment

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.nic import NIC
    from repro.sim.kernel import Simulator


def _segment_cost(medium: Medium) -> float:
    """Routing metric: time to push one full frame across the segment."""
    return medium.latency + medium.serialize_time(medium.mtu)


class Topology:
    """Builder and router for the simulated internetwork."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.hosts: Dict[str, Host] = {}
        self.segments: Dict[str, Segment] = {}
        self._ip_to_host: Dict[str, str] = {}
        self._next_seg_id = 1
        self._version = 0
        self._route_cache: Dict[Tuple[str, str, int], Optional[List[str]]] = {}

    # -- construction -----------------------------------------------------
    def add_segment(self, name: str, medium: Medium) -> Segment:
        if name in self.segments:
            raise ValueError(f"duplicate segment {name!r}")
        seg = Segment(self.sim, name, medium)
        seg._seg_id = self._next_seg_id  # type: ignore[attr-defined]
        self._next_seg_id += 1
        self.segments[name] = seg
        self.bump_version()
        return seg

    def add_host(self, name: str, **kwargs) -> Host:
        if name in self.hosts:
            raise ValueError(f"duplicate host {name!r}")
        host = Host(self.sim, name, self, **kwargs)
        self.hosts[name] = host
        self.bump_version()
        return host

    def connect(
        self, host: Host, segment: Segment, iface: Optional[str] = None, ip: Optional[str] = None
    ) -> "NIC":
        """Attach *host* to *segment*, auto-assigning iface name and IP."""
        if iface is None:
            iface = f"if{len(host.nics)}"
        if ip is None:
            seg_id = getattr(segment, "_seg_id", 0)
            ip = f"10.{seg_id}.0.{len(segment.nics) + 1}"
        nic = host.add_nic(iface, ip, segment)
        self._ip_to_host[ip] = host.name
        self.bump_version()
        return nic

    def host_of_ip(self, ip: str) -> Optional[Host]:
        name = self._ip_to_host.get(ip)
        return self.hosts.get(name) if name else None

    def bump_version(self) -> None:
        """Invalidate cached routes (called on any topology/health change)."""
        self._version += 1
        if len(self._route_cache) > 100_000:
            self._route_cache.clear()

    # -- media selection (§5.3) --------------------------------------------
    def shared_segments(self, a: str, b: str) -> List[Segment]:
        """Healthy segments both hosts sit on, fastest medium first."""
        ha, hb = self.hosts[a], self.hosts[b]
        out = []
        for nic in ha.nics.values():
            seg = nic.segment
            if not seg.up or not nic.up:
                continue
            other = hb.nic_on_segment(seg.name)
            if other is not None and other.up:
                out.append(seg)
        out.sort(key=lambda s: s.medium.bandwidth, reverse=True)
        return out

    # -- routing ------------------------------------------------------------
    def route(self, src_host: str, dst_host: str) -> Optional[List[str]]:
        """Alternating [host, segment, host, ...] path, or None if cut off."""
        key = (src_host, dst_host, self._version)
        if key in self._route_cache:
            return self._route_cache[key]
        path = self._dijkstra(src_host, dst_host)
        self._route_cache[key] = path
        return path

    def next_hop(self, src_host: str, dst_ip: str) -> Optional[Tuple["NIC", str]]:
        """(outgoing NIC, next-hop IP on that segment) toward *dst_ip*."""
        dst_host = self._ip_to_host.get(dst_ip)
        if dst_host is None:
            return None
        if dst_host == src_host:
            return None  # local delivery, no hop
        path = self.route(src_host, dst_host)
        if path is None or len(path) < 3:
            return None
        seg_name, nh_host_name = path[1], path[2]
        src = self.hosts[src_host]
        nic = src.nic_on_segment(seg_name)
        if nic is None or not nic.up:
            return None
        nh_ip = self.hosts[nh_host_name].ip_on_segment(seg_name)
        if nh_ip is None:
            return None
        return nic, nh_ip

    def _dijkstra(self, src: str, dst: str) -> Optional[List[str]]:
        if src not in self.hosts or dst not in self.hosts:
            return None
        if not self.hosts[src].up or not self.hosts[dst].up:
            return None
        # Nodes: ("h", host) and ("s", segment). Edges exist where an up NIC
        # joins an up host to an up segment. Interior hosts must forward.
        dist: Dict[Tuple[str, str], float] = {("h", src): 0.0}
        prev: Dict[Tuple[str, str], Tuple[str, str]] = {}
        pq: List[Tuple[float, Tuple[str, str]]] = [(0.0, ("h", src))]
        target = ("h", dst)
        while pq:
            d, node = heapq.heappop(pq)
            if d > dist.get(node, float("inf")):
                continue
            if node == target:
                break
            kind, name = node
            if kind == "h":
                host = self.hosts[name]
                if not host.up:
                    continue
                if name != src and name != dst and not host.forwarding:
                    continue  # cannot route *through* a non-gateway
                for nic in host.nics.values():
                    if not nic.up or not nic.segment.up:
                        continue
                    nxt = ("s", nic.segment.name)
                    nd = d + _segment_cost(nic.segment.medium) / 2
                    if nd < dist.get(nxt, float("inf")):
                        dist[nxt] = nd
                        prev[nxt] = node
                        heapq.heappush(pq, (nd, nxt))
            else:
                seg = self.segments[name]
                if not seg.up:
                    continue
                for nic in seg.nics.values():
                    if not nic.up or not nic.host.up:
                        continue
                    nxt = ("h", nic.host.name)
                    nd = d + _segment_cost(seg.medium) / 2
                    if nd < dist.get(nxt, float("inf")):
                        dist[nxt] = nd
                        prev[nxt] = node
                        heapq.heappush(pq, (nd, nxt))
        if target not in dist:
            return None
        # Reconstruct the alternating path.
        path: List[str] = []
        node = target
        while True:
            path.append(node[1])
            if node == ("h", src):
                break
            node = prev[node]
        path.reverse()
        return path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Topology hosts={len(self.hosts)} segments={len(self.segments)}>"
