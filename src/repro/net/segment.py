"""Network segments: a shared medium joining a set of NICs.

A segment is one L2 network — an Ethernet switch domain, an ATM fabric, a
point-to-point WAN link. It knows which NICs are attached, resolves
destination IPs to NICs, applies propagation latency and loss, and can be
taken down/up by the failure injector.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.net.media import Medium
from repro.net.packet import BROADCAST, Frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator
    from repro.net.nic import NIC


class Segment:
    """One L2 network with a :class:`Medium` personality."""

    def __init__(self, sim: "Simulator", name: str, medium: Medium) -> None:
        self.sim = sim
        self.name = name
        self.medium = medium
        self.up = True
        self.nics: Dict[str, "NIC"] = {}  # ip -> NIC
        self._rng = sim.rng.stream(f"net.segment.{name}")
        self.frames_delivered = 0
        self.frames_lost = 0

    def attach(self, nic: "NIC") -> None:
        if nic.address.ip in self.nics:
            raise ValueError(f"duplicate IP {nic.address.ip} on segment {self.name}")
        self.nics[nic.address.ip] = nic

    def detach(self, nic: "NIC") -> None:
        self.nics.pop(nic.address.ip, None)

    def lookup(self, ip: str) -> Optional["NIC"]:
        return self.nics.get(ip)

    # -- delivery ---------------------------------------------------------
    def propagate(self, sender: "NIC", frame: Frame, fragments: int = 1) -> None:
        """Called by the sending NIC after serialisation completes.

        Applies the loss draw (compounded over IP *fragments* — losing any
        fragment loses the frame) and schedules arrival ``latency`` later.
        A down segment silently eats every frame (the transports' problem).
        """
        if not self.up:
            self.frames_lost += 1
            return
        frame.via_segment = self.name
        hop_ip = frame.l2_dst or frame.dst_ip
        if hop_ip == BROADCAST:
            for ip, nic in list(self.nics.items()):
                if nic is not sender:
                    self._deliver_one(nic, frame, fragments)
            return
        nic = self.nics.get(hop_ip)
        if nic is None:
            self.frames_lost += 1
            return
        self._deliver_one(nic, frame, fragments)

    def _deliver_one(self, nic: "NIC", frame: Frame, fragments: int = 1) -> None:
        p_loss = self.medium.loss_rate
        if p_loss > 0 and fragments > 1:
            p_loss = 1.0 - (1.0 - p_loss) ** fragments
        if p_loss > 0 and self._rng.random() < p_loss:
            self.frames_lost += 1
            return
        self.frames_delivered += 1
        ev = self.sim.timeout(self.medium.latency, value=frame)
        ev.add_callback(lambda e: nic.receive(e.value))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "up" if self.up else "DOWN"
        return f"<Segment {self.name} [{self.medium.name}] {state} nics={len(self.nics)}>"
