"""Network segments: a shared medium joining a set of NICs.

A segment is one L2 network — an Ethernet switch domain, an ATM fabric, a
point-to-point WAN link. It knows which NICs are attached, resolves
destination IPs to NICs, applies propagation latency and loss, and can be
taken down/up by the failure injector.

Beyond the clean fail-stop model (``up = False`` eats everything), a
segment supports *gray* link faults installed by the failure injector:

* **directional blocks** — refcounted per ``(src_host, dst_host)``
  ordered pair (``"*"`` wildcards either side), so an asymmetric
  partition can cut A→B while B→A still flows;
* **link fault profiles** — per-direction probabilistic loss,
  duplication, reordering (extra latency jitter) and payload bit-flip
  corruption, applied on top of the medium's own loss model.

Both are invisible to the control plane by design: they do not bump the
topology version, so routing and path caches keep believing the link is
fine — exactly the property that makes gray failures hard. Detection is
the transports' and the health scorer's problem.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.net.media import Medium
from repro.net.packet import BROADCAST, Frame
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator
    from repro.net.nic import NIC


class _Arrival(Event):
    """Propagation delay for one frame has elapsed: hand it to the NIC.

    A lean kernel event (no callback list, no Timeout/lambda pair per
    delivered frame — the per-frame arrival path is the hottest event
    producer in the wire profile). ``prof_owner`` gives the profiler the
    attribution it would otherwise parse from a process name.
    """

    __slots__ = ("nic", "frame", "prof_owner")

    def __init__(self, sim: "Simulator", nic: "NIC", frame: Frame,
                 delay: float) -> None:
        # One _Arrival per delivered frame: initialise the Event slots
        # inline (callbacks stay None — _process is overridden and never
        # runs a callback list) instead of chaining to Event.__init__.
        self.sim = sim
        self.callbacks = None
        self._value = None
        self._exc = None
        self._processed = False
        self.nic = nic
        self.frame = frame
        self.prof_owner = ("net", nic.host.name)
        sim._schedule(self, delay)

    def _process(self) -> None:
        if self._processed:
            return
        self._processed = True
        self.nic.receive(self.frame)


@dataclass(frozen=True)
class LinkFault:
    """A probabilistic impairment profile for one link direction.

    ``loss``/``dup``/``corrupt`` are per-frame probabilities;
    ``reorder`` is the probability a frame is held back by an extra
    ``jitter``-scaled delay (which makes it arrive after frames sent
    later — a genuine reordering, not just slowness).
    """

    loss: float = 0.0
    dup: float = 0.0
    reorder: float = 0.0
    corrupt: float = 0.0
    jitter: float = 0.05


class Segment:
    """One L2 network with a :class:`Medium` personality."""

    def __init__(self, sim: "Simulator", name: str, medium: Medium) -> None:
        self.sim = sim
        self.name = name
        self.medium = medium
        self.up = True
        self.nics: Dict[str, "NIC"] = {}  # ip -> NIC
        self._rng = sim.rng.stream(f"net.segment.{name}")
        self.frames_delivered = 0
        self.frames_lost = 0
        self.frames_blocked = 0
        self.frames_corrupted = 0
        self.frames_duplicated = 0
        self.frames_reordered = 0
        #: Directional hold refcounts: (src_host, dst_host) -> count.
        self._blocked: Dict[Tuple[str, str], int] = {}
        #: Installed impairment profiles: (src_host, dst_host) -> profiles.
        self._faults: Dict[Tuple[str, str], List[LinkFault]] = {}
        # Fast-path flag: the per-frame gray pipeline only runs when some
        # gray state is installed, so clean runs pay one attribute check.
        self._gray = False

    def attach(self, nic: "NIC") -> None:
        if nic.address.ip in self.nics:
            raise ValueError(f"duplicate IP {nic.address.ip} on segment {self.name}")
        self.nics[nic.address.ip] = nic

    def detach(self, nic: "NIC") -> None:
        self.nics.pop(nic.address.ip, None)

    def lookup(self, ip: str) -> Optional["NIC"]:
        return self.nics.get(ip)

    # -- gray link state (driven by the failure injector) ------------------
    def block_link(self, src: str, dst: str) -> None:
        """Hold the *src*→*dst* direction down (refcounted; ``"*"`` = any)."""
        key = (src, dst)
        self._blocked[key] = self._blocked.get(key, 0) + 1
        self._update_gray()

    def unblock_link(self, src: str, dst: str) -> None:
        key = (src, dst)
        n = self._blocked.get(key, 0)
        if n <= 1:
            self._blocked.pop(key, None)
        else:
            self._blocked[key] = n - 1
        self._update_gray()

    def add_fault(self, src: str, dst: str, fault: LinkFault) -> None:
        self._faults.setdefault((src, dst), []).append(fault)
        self._update_gray()

    def remove_fault(self, src: str, dst: str, fault: LinkFault) -> None:
        lst = self._faults.get((src, dst))
        if lst and fault in lst:
            lst.remove(fault)
            if not lst:
                del self._faults[(src, dst)]
        self._update_gray()

    def _update_gray(self) -> None:
        self._gray = bool(self._blocked) or bool(self._faults)

    def link_blocked(self, src: str, dst: str) -> bool:
        b = self._blocked
        return ((src, dst) in b or (src, "*") in b or ("*", dst) in b
                or ("*", "*") in b)

    def _faults_for(self, src: str, dst: str) -> List[LinkFault]:
        out: List[LinkFault] = []
        for key in ((src, dst), (src, "*"), ("*", dst), ("*", "*")):
            lst = self._faults.get(key)
            if lst:
                out.extend(lst)
        return out

    # -- delivery ---------------------------------------------------------
    def propagate(
        self, sender: "NIC", frame: Frame, fragments: int = 1,
        wire_time: float = 0.0,
    ) -> None:
        """Called by the sending NIC when serialisation *starts*.

        Applies the loss draw (compounded over IP *fragments* — losing any
        fragment loses the frame) and schedules arrival ``wire_time +
        latency`` later, so delivery lands exactly when it would have
        under completion-time propagation — without a completion event.
        A down segment silently eats every frame (the transports' problem).
        """
        if not self.up:
            self.frames_lost += 1
            return
        frame.via_segment = self.name
        hop_ip = frame.l2_dst or frame.dst_ip
        if hop_ip == BROADCAST:
            for ip, nic in list(self.nics.items()):
                if nic is not sender:
                    self._deliver_one(nic, frame, fragments, sender, wire_time)
            return
        nic = self.nics.get(hop_ip)
        if nic is None:
            self.frames_lost += 1
            return
        self._deliver_one(nic, frame, fragments, sender, wire_time)

    def _deliver_one(
        self, nic: "NIC", frame: Frame, fragments: int = 1,
        sender: Optional["NIC"] = None, wire_time: float = 0.0,
    ) -> None:
        p_loss = self.medium.loss_rate
        if p_loss > 0 and fragments > 1:
            p_loss = 1.0 - (1.0 - p_loss) ** fragments
        if p_loss > 0 and self._rng.random() < p_loss:
            self.frames_lost += 1
            return
        delay = self.medium.latency + wire_time
        if self._gray and sender is not None:
            frame, delay = self._apply_gray(sender, nic, frame, fragments, delay)
            if frame is None:
                return
        self.frames_delivered += 1
        _Arrival(self.sim, nic, frame, delay)

    def _apply_gray(
        self, sender: "NIC", nic: "NIC", frame: Frame, fragments: int,
        delay: float,
    ):
        """Run the gray-fault pipeline for one (sender, receiver) hop.

        Returns ``(frame, delay)`` — possibly a corrupted copy and a
        jittered delay — or ``(None, delay)`` when the frame is eaten.
        """
        src, dst = sender.host.name, nic.host.name
        if self.link_blocked(src, dst):
            self.frames_blocked += 1
            self.frames_lost += 1
            return None, delay
        rng = self._rng
        for f in self._faults_for(src, dst):
            p = f.loss
            if p > 0 and fragments > 1:
                p = 1.0 - (1.0 - p) ** fragments
            if p > 0 and rng.random() < p:
                self.frames_lost += 1
                return None, delay
            if f.corrupt > 0 and rng.random() < f.corrupt:
                # Bit flips on the wire: the receiver gets a frame whose
                # payload bytes no longer match the sender-stamped digest.
                frame = copy.copy(frame)
                frame.corrupt = True
                self.frames_corrupted += 1
            if f.dup > 0 and rng.random() < f.dup:
                # A duplicate copy arrives slightly after the original.
                self.frames_duplicated += 1
                dup_delay = delay + rng.uniform(0.5, 1.5) * f.jitter
                _Arrival(self.sim, nic, frame, dup_delay)
            if f.reorder > 0 and rng.random() < f.reorder:
                # Held back long enough to land behind later sends.
                self.frames_reordered += 1
                delay += rng.uniform(1.0, 3.0) * f.jitter
        return frame, delay

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "up" if self.up else "DOWN"
        return f"<Segment {self.name} [{self.medium.name}] {state} nics={len(self.nics)}>"
