"""Simulated network substrate: hosts, NICs, segments, media, routing.

This package replaces the 1997 testbed hardware (100 Mbit Ethernet,
155 Mbit ATM, Myrinet, WAN links) with a byte-accurate discrete-event
model: every frame pays serialisation time at the medium's bandwidth,
per-frame framing overhead, propagation latency, and an independent loss
draw. SNIPE's transports (:mod:`repro.transport`) run unmodified protocol
state machines on top.

Units: seconds, bytes, bytes/second throughout.
"""

from repro.net.media import (
    ATM_155,
    ETHERNET_10,
    ETHERNET_100,
    LOOPBACK,
    MODEM_56K,
    MYRINET,
    SERIAL_SAT,
    WAN_T3,
    Medium,
)
from repro.net.packet import Address, Frame, BROADCAST
from repro.net.segment import Segment
from repro.net.nic import NIC
from repro.net.host import Host, PortBinding
from repro.net.topology import Topology
from repro.net.failures import FailureInjector

__all__ = [
    "ATM_155",
    "Address",
    "BROADCAST",
    "ETHERNET_10",
    "ETHERNET_100",
    "FailureInjector",
    "Frame",
    "Host",
    "LOOPBACK",
    "MODEM_56K",
    "MYRINET",
    "Medium",
    "NIC",
    "PortBinding",
    "SERIAL_SAT",
    "Segment",
    "Topology",
    "WAN_T3",
]
