"""Per-client trust policies (§4).

    "Before a client will consider a signed statement to be valid, the key
    certificate must itself be signed by a party whom that client trusts
    for that particular purpose. In general, each client or service may
    determine its own requirements for which parties to trust for which
    purposes."

A :class:`TrustPolicy` maps purposes ("grant-access", "certify-user",
"sign-code", ...) to the set of issuer URIs trusted for that purpose,
with the issuers' own keys pinned out of band (the paper's "user exposes
his public key only to a single trusted host").
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.security.certificates import Certificate, verify_certificate
from repro.security.keys import PublicKey


class TrustPolicy:
    """Who this principal trusts, for which purposes."""

    def __init__(self) -> None:
        self._anchors: Dict[str, PublicKey] = {}  # issuer URI -> pinned key
        self._purposes: Dict[str, Set[str]] = {}  # purpose -> issuer URIs

    # -- configuration ----------------------------------------------------
    def pin_key(self, issuer_uri: str, key: PublicKey) -> None:
        """Pin an issuer's public key (out-of-band trust anchor)."""
        self._anchors[issuer_uri] = key

    def trust(self, issuer_uri: str, purpose: str) -> None:
        """Trust *issuer_uri* to sign statements for *purpose*."""
        self._purposes.setdefault(purpose, set()).add(issuer_uri)

    def revoke(self, issuer_uri: str, purpose: Optional[str] = None) -> None:
        """Stop trusting an issuer (for one purpose, or entirely)."""
        if purpose is not None:
            self._purposes.get(purpose, set()).discard(issuer_uri)
        else:
            for issuers in self._purposes.values():
                issuers.discard(issuer_uri)
            self._anchors.pop(issuer_uri, None)

    # -- queries ------------------------------------------------------------
    def anchor_key(self, issuer_uri: str) -> Optional[PublicKey]:
        return self._anchors.get(issuer_uri)

    def trusts(self, issuer_uri: str, purpose: str) -> bool:
        return issuer_uri in self._purposes.get(purpose, set())

    def validate_certificate(self, cert: Certificate, purpose: str) -> bool:
        """Full §4 check: trusted issuer for this purpose + intact signature."""
        if not self.trusts(cert.issuer, purpose):
            return False
        key = self._anchors.get(cert.issuer)
        if key is None:
            return False
        return verify_certificate(cert, key)
