"""Authenticated connections (§4's signature-avoidance optimisation).

    "rather than having the resource manager separately sign each resource
    authorization …, the resource manager may instead maintain an
    authenticated connection with each of its managed resources, which is
    able to detect connection hijacking, and transmit the resource
    authorization without signatures."

A :class:`SecureChannel` pair does a Diffie–Hellman-style key agreement
(toy group), then MACs every message with the session key and a strictly
increasing sequence number. Any tampering, replay, or injection by a
party without the session key trips :class:`ChannelError` — that is the
hijack detection.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, Tuple

from repro.security.hashes import hmac_tag, verify_hmac

# RFC 3526 group 2 (1024-bit MODP) — fine for a simulator.
_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF",
    16,
)
_G = 2


class ChannelError(Exception):
    """MAC failure, replay, or out-of-order injection detected."""


class SecureChannel:
    """One endpoint of an authenticated session.

    Usage: both sides construct with their own ``random.Random``, exchange
    ``public`` values, then call :meth:`establish` with the peer's value.
    After that, :meth:`seal`/:meth:`open` protect application messages.
    """

    def __init__(self, rng: random.Random) -> None:
        self._private = rng.randrange(2, _P - 2)
        self.public = pow(_G, self._private, _P)
        self._key: bytes = b""
        self._send_seq = 0
        self._recv_seq = 0

    @property
    def established(self) -> bool:
        return bool(self._key)

    def establish(self, peer_public: int) -> None:
        shared = pow(peer_public, self._private, _P)
        self._key = hashlib.sha256(str(shared).encode()).digest()

    def seal(self, message: Any) -> Dict[str, Any]:
        """Wrap *message* with sequence number + MAC."""
        if not self.established:
            raise ChannelError("channel not established")
        seq = self._send_seq
        self._send_seq += 1
        envelope = {"seq": seq, "body": message}
        return {"seq": seq, "body": message, "mac": hmac_tag(self._key, envelope)}

    def open(self, sealed: Dict[str, Any]) -> Any:
        """Verify and unwrap; raises :class:`ChannelError` on any anomaly."""
        if not self.established:
            raise ChannelError("channel not established")
        seq = sealed.get("seq")
        envelope = {"seq": seq, "body": sealed.get("body")}
        if not verify_hmac(self._key, envelope, sealed.get("mac", "")):
            raise ChannelError("MAC verification failed (tampering or hijack)")
        if seq != self._recv_seq:
            raise ChannelError(f"sequence anomaly: expected {self._recv_seq}, got {seq}")
        self._recv_seq += 1
        return sealed["body"]


def handshake(rng_a: random.Random, rng_b: random.Random) -> Tuple[SecureChannel, SecureChannel]:
    """Convenience: a fully established channel pair (for tests/services)."""
    a, b = SecureChannel(rng_a), SecureChannel(rng_b)
    a.establish(b.public)
    b.establish(a.public)
    return a, b
