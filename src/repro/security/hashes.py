"""Content hashes and HMAC tags.

RCDS authenticates resources "by the use of cryptographic hash functions
(such as MD5 or SHA) which are signed by the providers" (§2.1); the 1998
RC servers authenticated RPCs with "MD5 hashed shared secrets" (§6). We
standardise on SHA-256 for content and HMAC-SHA256 for shared-secret
channel authentication.
"""

from __future__ import annotations

import hashlib
import hmac
import pickle
from typing import Any


def canonical_bytes(obj: Any) -> bytes:
    """Stable byte encoding of a Python object for hashing/signing.

    Dicts are serialised with sorted keys (recursively) so logically equal
    metadata always hashes identically.
    """

    def normalise(o: Any) -> Any:
        if isinstance(o, dict):
            return tuple(sorted((k, normalise(v)) for k, v in o.items()))
        if isinstance(o, (list, tuple)):
            return tuple(normalise(v) for v in o)
        if isinstance(o, set):
            return tuple(sorted(normalise(v) for v in o))
        return o

    return pickle.dumps(normalise(obj), protocol=4)


def content_hash(data: Any) -> str:
    """Hex SHA-256 of an object's canonical encoding."""
    if isinstance(data, bytes):
        raw = data
    else:
        raw = canonical_bytes(data)
    return hashlib.sha256(raw).hexdigest()


def hmac_tag(secret: bytes, message: Any) -> str:
    """HMAC-SHA256 tag for shared-secret authentication."""
    raw = message if isinstance(message, bytes) else canonical_bytes(message)
    return hmac.new(secret, raw, hashlib.sha256).hexdigest()


def verify_hmac(secret: bytes, message: Any, tag: str) -> bool:
    return hmac.compare_digest(hmac_tag(secret, message), tag)
