"""Content hashes and HMAC tags.

RCDS authenticates resources "by the use of cryptographic hash functions
(such as MD5 or SHA) which are signed by the providers" (§2.1); the 1998
RC servers authenticated RPCs with "MD5 hashed shared secrets" (§6). We
standardise on SHA-256 for content and HMAC-SHA256 for shared-secret
channel authentication.
"""

from __future__ import annotations

import hashlib
import hmac
import pickle
from typing import Any


#: Scalar types ``normalise`` passes through untouched. Checked first:
#: the bulk of real payloads is strings and numbers, and this one lookup
#: replaces three isinstance chains per leaf on the digest hot path.
_ATOMS = (str, int, float, bool, bytes, type(None))


def _normalise(o: Any) -> Any:
    # Each container branch normalises child values inline when they are
    # atoms (the overwhelmingly common case for metadata dicts), so the
    # recursion only pays a call per *nested container*, not per leaf.
    if isinstance(o, _ATOMS):
        return o
    if isinstance(o, dict):
        out = sorted(o.items())
        for i, kv in enumerate(out):
            if not isinstance(kv[1], _ATOMS):
                out[i] = (kv[0], _normalise(kv[1]))
        return tuple(out)
    if isinstance(o, (list, tuple)):
        return tuple(
            v if isinstance(v, _ATOMS) else _normalise(v) for v in o
        )
    if isinstance(o, set):
        return tuple(
            sorted(v if isinstance(v, _ATOMS) else _normalise(v) for v in o)
        )
    return o


def canonical_bytes(obj: Any) -> bytes:
    """Stable byte encoding of a Python object for hashing/signing.

    Dicts are serialised with sorted keys (recursively) so logically equal
    metadata always hashes identically.
    """
    return pickle.dumps(_normalise(obj), protocol=4)


def content_hash(data: Any) -> str:
    """Hex SHA-256 of an object's canonical encoding."""
    if isinstance(data, bytes):
        raw = data
    else:
        raw = canonical_bytes(data)
    return hashlib.sha256(raw).hexdigest()


def hmac_tag(secret: bytes, message: Any) -> str:
    """HMAC-SHA256 tag for shared-secret authentication."""
    raw = message if isinstance(message, bytes) else canonical_bytes(message)
    return hmac.new(secret, raw, hashlib.sha256).hexdigest()


def verify_hmac(secret: bytes, message: Any, tag: str) -> bool:
    return hmac.compare_digest(hmac_tag(secret, message), tag)
