"""The two-certificate resource-access protocol (§4).

    "Before the resource manager will grant access to a resource, it must
    have two verifiable certificates. One is a signed statement from the
    user, granting a particular process on a particular host, access to
    the desired resources. The second is a signed statement from the
    requesting host indicating that the resources are requested by that
    process."

On success the resource manager "issues its own signed statement
authorizing use of the requested resources by that process, and
transmits that statement to the hosts where the resources reside."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.security.hashes import canonical_bytes
from repro.security.keys import KeyPair, PublicKey, sign, verify
from repro.security.trust import TrustPolicy


class AuthorizationError(Exception):
    """A certificate failed verification or the requester lacks permission."""


@dataclass(frozen=True)
class AccessGrant:
    """User's statement: process P on host H may access these resources."""

    user: str
    process: str
    host: str
    resources: Tuple[str, ...]
    signature: int

    def body(self) -> bytes:
        return canonical_bytes(
            {
                "kind": "access-grant",
                "user": self.user,
                "process": self.process,
                "host": self.host,
                "resources": self.resources,
            }
        )


@dataclass(frozen=True)
class HostAttestation:
    """Host's statement: process P really is asking for these resources."""

    host: str
    process: str
    resources: Tuple[str, ...]
    signature: int

    def body(self) -> bytes:
        return canonical_bytes(
            {
                "kind": "host-attestation",
                "host": self.host,
                "process": self.process,
                "resources": self.resources,
            }
        )


@dataclass(frozen=True)
class ResourceAuthorization:
    """RM's statement to the resource's host: this process is authorized."""

    manager: str
    process: str
    host: str
    resources: Tuple[str, ...]
    signature: int

    def body(self) -> bytes:
        return canonical_bytes(
            {
                "kind": "resource-authorization",
                "manager": self.manager,
                "process": self.process,
                "host": self.host,
                "resources": self.resources,
            }
        )


def issue_grant(
    user_uri: str, user_keys: KeyPair, process: str, host: str, resources: Tuple[str, ...]
) -> AccessGrant:
    grant = AccessGrant(user_uri, process, host, tuple(resources), signature=0)
    return AccessGrant(
        user_uri, process, host, tuple(resources), signature=sign(user_keys, grant.body())
    )


def issue_attestation(
    host_uri: str, host_keys: KeyPair, process: str, resources: Tuple[str, ...]
) -> HostAttestation:
    att = HostAttestation(host_uri, process, tuple(resources), signature=0)
    return HostAttestation(
        host_uri, process, tuple(resources), signature=sign(host_keys, att.body())
    )


def authorize(
    manager_uri: str,
    manager_keys: KeyPair,
    policy: TrustPolicy,
    grant: AccessGrant,
    attestation: HostAttestation,
    user_key: PublicKey,
    host_key: PublicKey,
    permitted_resources,
) -> ResourceAuthorization:
    """Run the §4 verification and issue the RM's own authorization.

    Raises :class:`AuthorizationError` on any failed check. ``user_key``
    and ``host_key`` come from certificates already validated against
    *policy* for the "certify-user" / "certify-host" purposes (the RM
    often *is* the CA, in which case they are its own issue).
    """
    if not verify(user_key, grant.body(), grant.signature):
        raise AuthorizationError(f"grant signature from {grant.user} invalid")
    if not verify(host_key, attestation.body(), attestation.signature):
        raise AuthorizationError(f"attestation signature from {attestation.host} invalid")
    if grant.process != attestation.process:
        raise AuthorizationError(
            f"grant/attestation disagree on process: {grant.process} vs {attestation.process}"
        )
    if grant.host != attestation.host:
        raise AuthorizationError(
            f"grant names host {grant.host} but attestation is from {attestation.host}"
        )
    if set(attestation.resources) - set(grant.resources):
        raise AuthorizationError("host attests to resources the user never granted")
    permitted = set(permitted_resources)
    excess = set(grant.resources) - permitted
    if excess:
        raise AuthorizationError(f"requester lacks permission for {sorted(excess)}")
    auth = ResourceAuthorization(
        manager=manager_uri,
        process=grant.process,
        host=grant.host,
        resources=tuple(grant.resources),
        signature=0,
    )
    return ResourceAuthorization(
        manager=manager_uri,
        process=grant.process,
        host=grant.host,
        resources=tuple(grant.resources),
        signature=sign(manager_keys, auth.body()),
    )
