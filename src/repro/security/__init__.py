"""SNIPE security model (§4).

Authentication uses public-key cryptography: every principal's public key
lives in its RC metadata, a signed subset of metadata serves as a key
certificate, and trust is a per-client policy over who may sign what.
Resource access follows the paper's two-certificate protocol: a signed
grant from the user plus a signed request attestation from the host,
verified by the resource manager, which then issues its own authorization.

The cryptography itself is a from-scratch toy RSA (Miller–Rabin keygen,
hash-then-sign) plus SHA-256 content hashes and HMAC session channels.
It is deliberately *small* — the systems behaviour (who signs what, what
gets rejected, how sessions avoid per-request signatures) is what the
paper describes and what we reproduce; 1997-grade key sizes would add
nothing but CPU time.
"""

from repro.security.keys import KeyPair, PublicKey, generate_keypair, sign, verify
from repro.security.hashes import content_hash, hmac_tag, verify_hmac
from repro.security.certificates import Certificate, make_certificate, verify_certificate
from repro.security.trust import TrustPolicy
from repro.security.authz import (
    AccessGrant,
    AuthorizationError,
    HostAttestation,
    ResourceAuthorization,
    issue_grant,
    issue_attestation,
)
from repro.security.channels import SecureChannel, ChannelError

__all__ = [
    "AccessGrant",
    "AuthorizationError",
    "Certificate",
    "ChannelError",
    "HostAttestation",
    "KeyPair",
    "PublicKey",
    "ResourceAuthorization",
    "SecureChannel",
    "TrustPolicy",
    "content_hash",
    "generate_keypair",
    "hmac_tag",
    "issue_attestation",
    "issue_grant",
    "make_certificate",
    "sign",
    "verify",
    "verify_certificate",
    "verify_hmac",
]
