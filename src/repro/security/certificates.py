"""Key certificates as signed metadata subsets (§4).

    "Each principal's public key is stored as an attribute of that
    principal's RC metadata. A signed subset of RC metadata serves as a
    key certificate."

A :class:`Certificate` is therefore just a dict of assertions (which must
include ``public-key``) plus the issuer's signature over its canonical
encoding. Validity requires both an intact signature and an issuer the
verifier trusts *for that purpose* — the purpose check lives in
:mod:`repro.security.trust`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.security.hashes import canonical_bytes
from repro.security.keys import KeyPair, PublicKey, sign, verify


@dataclass(frozen=True)
class Certificate:
    """A signed subset of a principal's RC metadata."""

    subject: str  # URI of the principal this certificate describes
    assertions: Dict[str, Any]  # must contain "public-key"
    issuer: str  # URI of the signing principal
    issuer_fingerprint: str
    signature: int

    @property
    def subject_key(self) -> Optional[PublicKey]:
        key = self.assertions.get("public-key")
        return key if isinstance(key, PublicKey) else None

    def signed_body(self) -> bytes:
        return canonical_bytes(
            {"subject": self.subject, "assertions": self.assertions, "issuer": self.issuer}
        )


def make_certificate(
    issuer_uri: str,
    issuer_keys: KeyPair,
    subject_uri: str,
    subject_key: PublicKey,
    extra_assertions: Optional[Dict[str, Any]] = None,
) -> Certificate:
    """Issue a certificate binding *subject_uri* to *subject_key*."""
    assertions: Dict[str, Any] = {"public-key": subject_key}
    if extra_assertions:
        assertions.update(extra_assertions)
    body = canonical_bytes(
        {"subject": subject_uri, "assertions": assertions, "issuer": issuer_uri}
    )
    return Certificate(
        subject=subject_uri,
        assertions=assertions,
        issuer=issuer_uri,
        issuer_fingerprint=issuer_keys.fingerprint(),
        signature=sign(issuer_keys, body),
    )


def verify_certificate(cert: Certificate, issuer_key: PublicKey) -> bool:
    """Signature check only; trust-for-purpose is the caller's policy."""
    return verify(issuer_key, cert.signed_body(), cert.signature)
