"""From-scratch RSA: deterministic keygen, hash-then-sign, verify.

512-bit moduli (two 256-bit Miller–Rabin primes) keep keygen fast in the
simulator while exercising the real algebra. Key generation draws from a
caller-supplied ``random.Random`` so the whole security layer is
reproducible from the simulation seed.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Optional

_E = 65537
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
]


def _is_probable_prime(n: int, rng: random.Random, rounds: int = 24) -> bool:
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    # Miller–Rabin with *rounds* random bases.
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: random.Random) -> int:
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if candidate % _E == 1:
            continue  # keep e coprime with p-1
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class PublicKey:
    """The shareable half: modulus and public exponent."""

    n: int
    e: int = _E

    def fingerprint(self) -> str:
        """Short stable identifier used in metadata and log lines."""
        digest = hashlib.sha256(f"{self.n}:{self.e}".encode()).hexdigest()
        return digest[:16]


@dataclass(frozen=True)
class KeyPair:
    """A principal's key pair. Only :attr:`public` ever leaves the owner."""

    public: PublicKey
    d: int  # private exponent

    def fingerprint(self) -> str:
        return self.public.fingerprint()


def generate_keypair(rng: random.Random, bits: int = 512) -> KeyPair:
    """Generate an RSA key pair with a *bits*-bit modulus."""
    half = bits // 2
    p = _random_prime(half, rng)
    q = _random_prime(half, rng)
    while q == p:
        q = _random_prime(half, rng)
    n = p * q
    phi = (p - 1) * (q - 1)
    d = pow(_E, -1, phi)
    return KeyPair(public=PublicKey(n=n, e=_E), d=d)


def _digest_int(message: bytes, n: int) -> int:
    return int.from_bytes(hashlib.sha256(message).digest(), "big") % n


def sign(keypair: KeyPair, message: bytes) -> int:
    """RSA signature over SHA-256(message)."""
    h = _digest_int(message, keypair.public.n)
    return pow(h, keypair.d, keypair.public.n)


def verify(public: Optional[PublicKey], message: bytes, signature: int) -> bool:
    """True iff *signature* is *public*'s signature over *message*."""
    if public is None:
        return False
    h = _digest_int(message, public.n)
    return pow(signature, public.e, public.n) == h
