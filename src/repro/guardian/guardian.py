"""The Guardian: lease-based failure detection and checkpoint restart.

The paper's daemons "inform interested parties of changes to the status
of tasks" (§5.2.3) and its checkpoints survive "even the death of the
original host" (§5.6) — but the seed repo left the *recovery* loop to
whoever was watching. The Guardian closes that loop as a SNIPE service:

* **Detection** — every daemon re-asserts ``lease-expires`` in its host
  metadata on each load-loop tick; the Guardian scans the catalog and
  presumes any host with a lapsed lease dead. Host death is therefore
  detected within ``lease_ttl + scan_interval + grace`` of the crash,
  regardless of who was talking to the host. Task-level failures on live
  hosts arrive faster, through the ordinary notify-list machinery — the
  Guardian subscribes itself to every checkpointed task it owns.
* **Recovery** — the dead task's latest checkpoint LIFN is read from the
  replicated file service, and the task is respawned through a resource
  manager (whose lease-aware placement avoids dead hosts). Because the
  incarnation counter is monotonic, the restarted instance always has a
  higher incarnation than the corpse.
* **Fencing** — *before* respawning, the Guardian writes a
  ``fenced-below: N`` assertion (quorum write) into the task's record.
  Receivers drop envelopes from incarnations below the highest they have
  seen, and a supervised zombie that was merely partitioned polls its
  own record and terminates itself (quietly — no RC write) when it finds
  itself below the fence. A restarted task therefore executes its role
  exactly once even when the "dead" original is still running.

Guardians are replicable exactly like RMs: they register under
``urn:snipe:svc:guardian``, share no private state, and shard recovery
ownership by hashing the task URN over the *live* guardian set — so a
dead guardian's share is picked up by the survivors on the next scan.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.checkpoint import spec_from_record, verify_checkpoint_record
from repro.daemon.daemon import DAEMON_PORT
from repro.daemon.tasks import TaskState
from repro.files.client import FileClient
from repro.rcds import uri as uri_mod
from repro.rcds.client import QUORUM, RCClient
from repro.rm.client import RmClient
from repro.robust.health import HealthBoard
from repro.robust.overload import CONTROL
from repro.robust.retry import RetryPolicy
from repro.rpc import RpcClient, RpcError, RpcServer
from repro.sim.events import defuse
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.daemon.daemon import SnipeDaemon
    from repro.net.host import Host

#: Well-known guardian port.
GUARDIAN_PORT = 3700


class Guardian:
    """One guardian instance; run several (on different hosts) for redundancy."""

    #: Test hook for the model checker (:mod:`repro.check`): when False,
    #: recovery skips the ``fenced-below`` quorum writes entirely — the
    #: deliberately seeded bug that the single-owner oracle must catch
    #: (a respawned task's zombie original is never superseded).
    fence_writes_enabled = True

    def __init__(
        self,
        host: "Host",
        rc: RCClient,
        daemon: Optional["SnipeDaemon"] = None,
        port: int = GUARDIAN_PORT,
        secret: Optional[bytes] = None,
        scan_interval: float = 1.0,
        grace: float = 0.5,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.sim = host.sim
        self.host = host
        self.rc = rc
        self.port = port
        self.scan_interval = scan_interval
        #: Slack added to the lease horizon before declaring death, so a
        #: heartbeat delayed by queueing/retransmission is not a "crash".
        self.grace = grace
        retry = retry or RetryPolicy(attempts=3, base_delay=0.2, max_delay=2.0)
        self.files = FileClient(host, rc, secret=secret, retry=retry)
        self.rm = RmClient(host, rc, secret=secret, retry=retry)
        #: Direct line to suspect daemons: before declaring a host dead
        #: on lease evidence alone, ping it. A one-way partition or a
        #: skewed clock makes a live host *look* lease-lapsed; killing it
        #: (fence + respawn) on that evidence is a false death. Disabled
        #: with the heartbeat-only detector (``--bug naive-health``).
        self._probe = RpcClient(host, secret=secret)
        self.probe_timeout = 0.5
        # Enough attempts that the probes *alone* can cross the health
        # board's min_samples and steer themselves onto a backup path:
        # on a one-way cut of the primary segment, failed pings 1..4 feed
        # the (host, iface) cell, the 4th quarantines it, and the 5th
        # re-shops to the alternate segment and comes back alive. Fewer
        # attempts make declaring death a race against path steering.
        self.probe_attempts = 5
        #: Hosts recently confirmed alive by a probe and until when the
        #: confirmation holds — bounds probe traffic to one RPC per
        #: suspect per scan even though several code paths re-check.
        self._alive_until: Dict[str, float] = {}
        self.false_deaths_averted = 0
        self.ckpt_rejected = 0
        #: The guardian's own pseudo-process URN: being in the local
        #: daemon's context table under this URN is what lets the
        #: ordinary ``daemon.notify`` path deliver task-death events here.
        self.urn = uri_mod.process_urn(f"guardian.{host.name}")
        self.notifications: Store = Store(self.sim)
        if daemon is not None:
            daemon.contexts[self.urn] = self  # type: ignore[assignment]

        #: Completed recoveries: dicts with urn, from/to hosts, old/new
        #: incarnation, detected_at, recovered_at.
        self.recoveries: List[Dict] = []
        #: urn -> host for dead tasks that had no checkpoint to restart.
        self.unrecoverable: Dict[str, str] = {}
        self._recovering: set = set()
        self._watched: set = set()
        #: urn -> time its host was first seen dead (detect latency anchor).
        self._detected: Dict[str, float] = {}

        metrics = self.sim.obs.metrics
        self._m_recoveries = metrics.counter("guardian.recoveries")
        self._m_failed = metrics.counter("guardian.recovery_failures")
        self._m_unrecoverable = metrics.counter("guardian.unrecoverable")
        self._m_detect = metrics.histogram("guardian.detect_latency")
        self._m_recover = metrics.histogram("guardian.recovery_latency")
        self._m_deaths = metrics.counter("guardian.deaths_declared")
        self._m_probe_saved = metrics.counter("guardian.probe_saved")
        self._m_ckpt_rejected = metrics.counter("guardian.ckpt_rejected")
        #: Count of first-time death declarations (E12's false-death
        #: metric: under pure overload this must stay at zero).
        self.deaths_declared = 0

        self.rpc = RpcServer(host, port, secret=secret)
        self.rpc.register("guardian.status", self._h_status)
        self.sim.process(self._register(), name=f"guardian-reg:{host.name}")
        self.sim.process(self._scan_loop(), name=f"guardian-scan:{host.name}")
        self.sim.process(self._notify_loop(), name=f"guardian-notify:{host.name}")

    # -- registration ----------------------------------------------------------
    def _register(self):
        try:
            yield self.rc.update(
                uri_mod.service_urn("guardian"),
                {f"location:{self.host.name}:{self.port}": True},
            )
            yield self.rc.update(
                self.urn,
                {"host": self.host.name, "state": TaskState.RUNNING, "kind": "guardian"},
            )
        except Exception:
            pass  # RC unreachable at boot; the scan loop re-registers

    def _h_status(self, args: Dict) -> Dict:
        return {
            "recoveries": len(self.recoveries),
            "recovering": sorted(self._recovering),
            "unrecoverable": dict(self.unrecoverable),
        }

    # -- failure detection -----------------------------------------------------
    def _scan_loop(self):
        registered = False
        owner = f"guardian:{self.host.name}"
        while True:
            # Lease scans are long periodic sleeps: park them in the
            # timer wheel instead of the event heap.
            yield self.sim.timer_event(self.scan_interval, owner=owner)
            if not self.host.up:
                registered = False
                continue
            if not registered:
                # First tick after boot or after our own host recovered:
                # make sure our service registration is in the catalog.
                defuse(self.sim.process(self._register(), name=f"guardian-rereg:{self.host.name}"))
                registered = True
            try:
                yield from self._scan()
            except Exception:
                continue  # catalog flaky this tick; next scan retries

    def _dead_hosts(self):
        """Hosts whose lease has lapsed *and* failed a liveness probe,
        as ``{host: lease-expiry}``.

        Lease comparison uses this guardian's own (possibly skewed) wall
        clock — exactly the evidence a real detector would have. The
        probe is what keeps that honest: a lapsed lease only says the
        daemon's heartbeat didn't reach the catalog, which a one-way
        partition or clock skew produces without anybody dying.
        """
        urls = yield self.rc.query("snipe://", lane=CONTROL)
        dead = {}
        now = self.host.clock()
        for url in urls:
            host_name = uri_mod.host_of(url)
            if host_name is None or not url.endswith("/"):
                continue  # sub-resources like snipe://h/fileserver
            try:
                lease = yield self.rc.get(url, "lease-expires", lane=CONTROL)
            except Exception:
                continue
            if lease is not None and lease + self.grace < now:
                if (yield from self._confirm_dead(host_name)):
                    dead[host_name] = lease
        return dead

    def _confirm_dead(self, host_name: str):
        """Second opinion on a lease-lapsed host: ping its daemon.

        Returns True only if every probe attempt fails. Each failed
        attempt feeds the path selector and health board, so a retry
        naturally prefers an alternate path on multi-homed topologies —
        no false death on a one-way partition that only cuts the first
        route. Gated on the differential detector: the ``naive-health``
        baseline trusts leases alone, which is the bug E15 demonstrates.
        """
        if not HealthBoard.differential_enabled:
            return True
        until = self._alive_until.get(host_name)
        if until is not None and self.sim.now < until:
            return False
        for _ in range(self.probe_attempts):
            try:
                yield self._probe.call(
                    host_name, DAEMON_PORT, "daemon.ping",
                    timeout=self.probe_timeout, lane=CONTROL,
                )
            except RpcError:
                continue
            self.false_deaths_averted += 1
            self._m_probe_saved.inc()
            self._alive_until[host_name] = self.sim.now + self.scan_interval
            tracer = self.sim.obs.tracer
            if tracer.enabled:
                tracer.event("guardian.probe_alive", guardian=self.host.name,
                             host=host_name)
            return False
        return True

    def _live_guardians(self, dead):
        """Guardian hosts registered in the catalog, minus dead ones."""
        try:
            assertions = yield self.rc.lookup(uri_mod.service_urn("guardian"), lane=CONTROL)
        except Exception:
            return [self.host.name]
        out = []
        for key, info in assertions.items():
            if key.startswith("location:") and info["value"]:
                hostname = key[len("location:"):].rsplit(":", 1)[0]
                if hostname not in dead:
                    out.append(hostname)
        return sorted(set(out)) or [self.host.name]

    def _owns(self, urn: str, live_guardians: List[str]) -> bool:
        idx = zlib.crc32(urn.encode()) % len(live_guardians)
        return live_guardians[idx] == self.host.name

    @staticmethod
    def _is_dead(state, error, task_host, dead) -> bool:
        """Is this task dead in a way the Guardian should repair?

        Three shapes of death: (a) the record says *running* but the
        host's lease lapsed — fail-stop crash or partition, nobody could
        report it; (b) the record says *killed* with a host-crash error —
        the host died and came back fast enough to reconcile its own
        catalog entries; (c) the record says *failed* — the program
        itself crashed on a live host. Deliberate kills (state killed,
        other error) are respected and never resurrected.
        """
        if state == TaskState.RUNNING:
            return task_host in dead
        if state == TaskState.KILLED:
            return error == "host-crash"
        return state == TaskState.FAILED

    @staticmethod
    def _death_reason(state) -> str:
        """Why the Guardian is declaring this death (for probes/oracles).

        ``host-lease`` deaths are the only inferred kind — the host never
        reported anything, the Guardian concluded death from a lapsed
        lease — so they are the only kind a false-death oracle audits.
        """
        if state == TaskState.RUNNING:
            return "host-lease"
        if state == TaskState.KILLED:
            return "host-crash-report"
        return "task-failed"

    def _scan(self):
        dead = yield from self._dead_hosts()
        live_guardians = yield from self._live_guardians(dead)
        urns = yield self.rc.query("urn:snipe:proc:", lane=CONTROL)
        for urn in urns:
            if urn in self._recovering:
                continue
            try:
                meta = yield self.rc.lookup(urn, lane=CONTROL)
            except Exception:
                continue

            def val(key):
                info = meta.get(key)
                return info["value"] if info else None

            if val("kind") == "guardian":
                continue
            lifn = val("checkpoint-lifn")
            state, task_host = val("state"), val("host")
            if lifn is not None and state == TaskState.RUNNING and self._owns(urn, live_guardians):
                # Subscribe to the task's notify list so a daemon-reported
                # death (task failure on a live host) reaches us without
                # waiting for a lease to lapse.
                if urn not in self._watched:
                    self._watched.add(urn)
                    current = val("notify-list") or []
                    if self.urn not in current:
                        defuse(self.rc.update(urn, {"notify-list": current + [self.urn]}))
            if not self._is_dead(state, val("exit-error"), task_host, dead):
                self._detected.pop(urn, None)
                continue
            if urn not in self._detected:
                self._detected[urn] = self.sim.now
                self.deaths_declared += 1
                self._m_deaths.inc()
                if self.sim.probes is not None:
                    self.sim.probes.emit("guardian.death", urn=urn,
                                         host=task_host or "",
                                         guardian=self.host.name,
                                         reason=self._death_reason(state))
                if state == TaskState.RUNNING and task_host in dead:
                    # Detect latency relative to the lease lapsing — the
                    # bound the harness checks is lease_ttl + scan + grace.
                    self._m_detect.observe(self.sim.now - dead[task_host])
            if lifn is None:
                if urn not in self.unrecoverable:
                    self.unrecoverable[urn] = task_host
                    self._m_unrecoverable.inc()
                continue
            if not self._owns(urn, live_guardians):
                continue
            self._start_recovery(urn, lifn, task_host, val("incarnation"))

    def _notify_loop(self):
        """Fast path: daemon-reported task deaths on still-live hosts."""
        while True:
            event = yield self.notifications.get()
            if not isinstance(event, dict) or event.get("kind") != "state-change":
                continue
            state = event.get("state")
            if state != TaskState.FAILED and not (
                state == TaskState.KILLED and event.get("error") == "host-crash"
            ):
                continue
            defuse(
                self.sim.process(
                    self._consider(event["urn"]), name=f"guardian-consider:{event['urn']}"
                )
            )

    def _consider(self, urn: str):
        if urn in self._recovering:
            return
        try:
            meta = yield self.rc.lookup(urn, lane=CONTROL)
        except Exception:
            return

        def val(key):
            info = meta.get(key)
            return info["value"] if info else None

        if val("kind") == "guardian":
            return
        lifn = val("checkpoint-lifn")
        if lifn is None:
            return
        dead = yield from self._dead_hosts()
        if not self._is_dead(val("state"), val("exit-error"), val("host"), dead):
            return
        live_guardians = yield from self._live_guardians(dead)
        if not self._owns(urn, live_guardians):
            return
        if urn not in self._detected:
            self._detected[urn] = self.sim.now
            self.deaths_declared += 1
            self._m_deaths.inc()
            if self.sim.probes is not None:
                self.sim.probes.emit("guardian.death", urn=urn,
                                     host=val("host") or "",
                                     guardian=self.host.name,
                                     reason=self._death_reason(val("state")))
        self._start_recovery(urn, lifn, val("host"), val("incarnation"))

    # -- recovery --------------------------------------------------------------
    def _start_recovery(self, urn, lifn, from_host, old_inc) -> None:
        self._recovering.add(urn)
        defuse(
            self.sim.process(
                self._recover(urn, lifn, from_host, old_inc),
                name=f"guardian-recover:{urn}",
            )
        )

    def _recover(self, urn: str, lifn: str, from_host: str, old_inc: Optional[int]):
        detected_at = self._detected.get(urn, self.sim.now)
        prev_lifn: Optional[str] = None
        try:
            # 0. Confirm against a quorum read: the scan may have seen a
            #    stale replica (e.g. a record predating a recovery we just
            #    completed). If the freshest record is no longer dead, a
            #    successor is already in place — do nothing. If the quorum
            #    is unreachable, proceed on the scan's evidence: fencing
            #    makes a redundant recovery safe, just wasteful.
            try:
                meta = yield self.rc.lookup(urn, consistency=QUORUM, lane=CONTROL)
            except Exception:
                meta = None
            if meta is not None:
                def val(key):
                    info = meta.get(key)
                    return info["value"] if info else None

                dead = yield from self._dead_hosts()
                if not self._is_dead(val("state"), val("exit-error"),
                                     val("host"), dead):
                    self._detected.pop(urn, None)
                    return
                inc = val("incarnation")
                if inc is not None and (old_inc is None or inc > old_inc):
                    old_inc = inc
                from_host = val("host") or from_host
                lifn = val("checkpoint-lifn") or lifn
                prev_lifn = val("checkpoint-prev-lifn")
            # 1. Fence the corpse *before* the successor exists: from this
            #    point a zombie below the fence will terminate itself, and
            #    receivers will drop its stragglers once the successor
            #    (whose incarnation is necessarily >= the fence) speaks.
            #    The fence is drawn from the global incarnation sequence,
            #    not computed as old_inc + 1: the record we read may be
            #    stale (a partitioned quorum can lag behind a successor
            #    another recovery already started), and a fence below that
            #    live successor would leave it running next to ours. A
            #    fresh sequence value is greater than every incarnation in
            #    existence, known to us or not.
            fence = self.sim.sequence("incarnation")
            if self.fence_writes_enabled:
                yield self.rc.update(urn, {"fenced-below": fence}, consistency=QUORUM)
                if self.sim.probes is not None:
                    self.sim.probes.emit("guardian.fence", urn=urn, fence=fence)
            # 2. Latest durable state — digest-verified. A checkpoint
            #    corrupted on its way to disk is rejected here, and the
            #    previous good version (kept by the writer's LIFN
            #    rotation) is respawned instead: stale state beats
            #    garbage state.
            got = yield self.files.read(lifn)
            record = got["payload"]
            if not verify_checkpoint_record(record):
                self.ckpt_rejected += 1
                self._m_ckpt_rejected.inc()
                if self.sim.probes is not None:
                    self.sim.probes.emit("guardian.ckpt_rejected", urn=urn, lifn=lifn)
                if prev_lifn is None:
                    try:
                        prev_lifn = yield self.rc.get(urn, "checkpoint-prev-lifn")
                    except Exception:
                        prev_lifn = None
                if prev_lifn is None:
                    raise RuntimeError(
                        f"checkpoint {lifn!r} corrupt, no previous good version"
                    )
                got = yield self.files.read(prev_lifn)
                record = got["payload"]
                if not verify_checkpoint_record(record):
                    self.ckpt_rejected += 1
                    self._m_ckpt_rejected.inc()
                    raise RuntimeError(
                        f"checkpoints {lifn!r} and {prev_lifn!r} both corrupt"
                    )
            spec = spec_from_record(record, keep_urn=True)
            # The spawning daemon re-fences under a fresh sequence value
            # immediately before launch (see Daemon._spawn_fenced): RM
            # retries after a lost reply can start two successors from
            # this one request, and only a fence drawn at launch time
            # postdates the sibling. Carries the same kill-switch as our
            # own fence writes so the seeded bug disables both layers.
            spec.fence_predecessors = self.fence_writes_enabled
            # 3. Respawn through an RM; lease-aware placement steers the
            #    task away from dead (and merely-partitioned) hosts.
            result = yield self.rm.request(spec, owner="guardian")
            new_host = result.get("host")
            # 4. Wait for the new incarnation to register, then raise the
            #    fence to exactly exclude everything before it.
            new_inc = None
            for _ in range(50):
                try:
                    inc = yield self.rc.get(urn, "incarnation")
                except Exception:
                    inc = None
                if inc is not None and inc >= fence:
                    new_inc = inc
                    break
                yield self.sim.timeout(0.1)
            if new_inc is not None and new_inc > fence and self.fence_writes_enabled:
                yield self.rc.update(urn, {"fenced-below": new_inc}, consistency=QUORUM)
                if self.sim.probes is not None:
                    self.sim.probes.emit("guardian.fence", urn=urn, fence=new_inc)
            recovered_at = self.sim.now
            self._m_recoveries.inc()
            self._m_recover.observe(recovered_at - detected_at)
            if self.sim.obs.tracer.enabled:
                self.sim.obs.tracer.event(
                    "guardian.recover", urn=urn, from_host=from_host,
                    to_host=new_host, old_inc=old_inc, new_inc=new_inc,
                )
            self.recoveries.append({
                "urn": urn,
                "from": from_host,
                "to": new_host,
                "old_inc": old_inc,
                "new_inc": new_inc,
                "detected_at": detected_at,
                "recovered_at": recovered_at,
            })
            self._detected.pop(urn, None)
        except Exception:
            # RM unreachable / checkpoint unreadable this round: drop the
            # guard so the next scan retries from scratch.
            self._m_failed.inc()
        finally:
            self._recovering.discard(urn)
