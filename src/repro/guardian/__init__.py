"""Self-healing supervision: the Guardian service.

Guardians watch the heartbeat leases the host daemons keep in RC
metadata, detect dead hosts within a bounded window, and restart their
checkpointed tasks elsewhere — fencing the old incarnation so a zombie
original can never double-execute. See :mod:`repro.guardian.guardian`.
"""

from repro.guardian.guardian import GUARDIAN_PORT, Guardian

__all__ = ["GUARDIAN_PORT", "Guardian"]
