"""Event primitives for the simulation kernel.

An :class:`Event` has three states: *pending* (created, not yet triggered),
*triggered* (a value or failure has been set and it is scheduled on the
event queue), and *processed* (its callbacks have run). Processes wait on
events by ``yield``-ing them; the kernel resumes the process with the
event's value, or throws the event's exception into it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from repro.sim.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

_PENDING = object()


class Event:
    """A one-shot occurrence in virtual time.

    Callbacks are invoked exactly once, in registration order, when the
    kernel pops the triggered event from its queue.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_processed")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._exc: Optional[BaseException] = None
        self._processed = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value/failure has been set."""
        return self._value is not _PENDING or self._exc is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return self._exc is None

    @property
    def value(self) -> Any:
        """The success value, or raises the failure exception."""
        if self._exc is not None:
            raise self._exc
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully, scheduling callbacks after *delay*."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed with exception *exc*."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._exc = exc
        self.sim._schedule(self, delay)
        return self

    def trigger(self, other: "Event") -> None:
        """Mirror another (already triggered) event's outcome onto this one."""
        if other._exc is not None:
            self.fail(other._exc)
        else:
            self.succeed(other._value)

    # -- callbacks -----------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run *fn(event)* when the event is processed (immediately if already)."""
        if self._processed:
            fn(self)
        else:
            assert self.callbacks is not None
            self.callbacks.append(fn)

    def remove_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is not None and fn in self.callbacks:
            self.callbacks.remove(fn)

    def _process(self) -> None:
        """Invoked by the kernel: run callbacks once."""
        if self._processed:
            return
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "processed" if self._processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


def waker(event: Event) -> Callable[..., None]:
    """A fire-once closure that succeeds *event* (if still pending).

    Registerable both as an event callback and as a kernel timer
    callback, which is what the transports' wait sites need: the first
    of "reply arrived" / "timer expired" wakes the waiting process, the
    second finds the event already triggered and does nothing. This
    replaces the per-wait ``any_of([reply, timeout(rto)])`` pattern —
    no Condition allocation, and the loser timer is *cancelled* instead
    of left to fire through the heap.
    """

    def _fire(*_args) -> None:
        if event._value is _PENDING and event._exc is None:
            event.succeed()

    return _fire


def defuse(event: Event) -> Event:
    """Mark a failure-capable event as observed.

    A process that fails with no callbacks registered is treated as an
    uncaught background crash and aborts ``run()`` in strict mode; fire-and
    -forget senders (e.g. RPC replies to a host that died) attach this noop
    observer to say "failure here is expected and handled elsewhere".
    """
    event.add_callback(_noop)
    return event


def _noop(_event: Event) -> None:
    return None


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = float(delay)
        self._value = value
        sim._schedule(self, delay)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Timeout delay={self.delay}>"


class Condition(Event):
    """Composite event over several child events.

    Fires when ``evaluate(children, n_done)`` returns True; its value is a
    dict mapping each *triggered* child to its value. A failing child fails
    the condition immediately.
    """

    __slots__ = ("_events", "_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._done = 0
        for ev in self._events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            ev.add_callback(self._on_child)

    def _evaluate(self, n_events: int, n_done: int) -> bool:
        raise NotImplementedError

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            # Propagate the first child failure.
            self.fail(ev._exc)  # type: ignore[arg-type]
            return
        self._done += 1
        if self._evaluate(len(self._events), self._done):
            # Only children whose callbacks have run count as "arrived":
            # a Timeout is triggered (scheduled) from birth but has not
            # occurred until the kernel processes it.
            self.succeed({e: e._value for e in self._events if e.processed and e.ok})


class AllOf(Condition):
    """Fires when every child event has fired."""

    __slots__ = ()

    def _evaluate(self, n_events: int, n_done: int) -> bool:
        return n_done == n_events


class AnyOf(Condition):
    """Fires when at least one child event has fired."""

    __slots__ = ()

    def _evaluate(self, n_events: int, n_done: int) -> bool:
        return n_done >= 1
