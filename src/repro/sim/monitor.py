"""Lightweight instrumentation: counters, time series, and event traces.

Benchmarks and tests observe the system through these rather than by
groping around in component internals. For spans, tagged histograms, and
causal message traces, :class:`TraceMonitor` fronts the richer
:mod:`repro.obs` layer attached to the simulator (``sim.obs``); the
primitives here remain for cheap ad-hoc accounting.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability, Span
    from repro.obs.metrics import Histogram
    from repro.sim.kernel import Simulator


class Counter:
    """A monotonically adjustable named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def incr(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Counter {self.name}={self.value}>"


class TimeSeries:
    """(time, value) samples, with summary statistics."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def record(self, t: float, value: float) -> None:
        self.samples.append((t, value))

    @property
    def values(self) -> List[float]:
        return [v for _, v in self.samples]

    def mean(self) -> float:
        vals = self.values
        return sum(vals) / len(vals) if vals else 0.0

    def total(self) -> float:
        return sum(self.values)

    def max(self) -> float:
        vals = self.values
        return max(vals) if vals else 0.0

    def min(self) -> float:
        vals = self.values
        return min(vals) if vals else 0.0

    #: Smallest time span ``rate()`` divides by when all samples share one
    #: timestamp (a same-instant burst must not report a rate of zero).
    RATE_EPSILON = 1e-9

    def rate(self) -> float:
        """Total value divided by the sampled time span (e.g. bytes/s).

        Contract: fewer than two samples is "no rate" (0.0). With two or
        more samples the span is clamped to at least ``RATE_EPSILON``, so
        a burst recorded at identical timestamps reports a (very large)
        finite rate instead of silently returning 0.0 for nonzero totals.
        """
        if len(self.samples) < 2:
            return 0.0
        span = self.samples[-1][0] - self.samples[0][0]
        return self.total() / max(span, self.RATE_EPSILON)

    def __len__(self) -> int:
        return len(self.samples)


class Probe:
    """Aggregates scalar observations without keeping them all (Welford)."""

    __slots__ = ("name", "n", "_mean", "_m2", "_min", "_max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        self.n += 1
        delta = value - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def min(self) -> float:
        return self._min if self.n else 0.0

    @property
    def max(self) -> float:
        return self._max if self.n else 0.0


class TraceMonitor:
    """Central sink for named counters/series/probes plus an event trace.

    ``trace_log`` is a bounded ring buffer: once *trace_capacity* records
    are held, each append evicts the oldest and bumps ``trace_dropped``,
    so long simulations can trace freely without unbounded memory growth.
    """

    def __init__(
        self,
        sim: Optional["Simulator"] = None,
        trace: bool = False,
        trace_capacity: int = 100_000,
    ) -> None:
        self.sim = sim
        self.tracing = trace
        self.trace_capacity = trace_capacity
        self.counters: Dict[str, Counter] = {}
        self.series: Dict[str, TimeSeries] = {}
        self.probes: Dict[str, Probe] = {}
        self.trace_log: Deque[Tuple[float, str, Any]] = deque()
        self.trace_dropped = 0
        self._obs: Optional["Observability"] = None

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def timeseries(self, name: str) -> TimeSeries:
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = TimeSeries(name)
        return s

    def probe(self, name: str) -> Probe:
        p = self.probes.get(name)
        if p is None:
            p = self.probes[name] = Probe(name)
        return p

    def trace(self, kind: str, detail: Any = None) -> None:
        """Append a trace record at the current virtual time (if tracing)."""
        if self.tracing:
            now = self.sim.now if self.sim is not None else 0.0
            if self.trace_capacity > 0 and len(self.trace_log) >= self.trace_capacity:
                self.trace_log.popleft()
                self.trace_dropped += 1
            self.trace_log.append((now, kind, detail))

    # -- the richer observability layer ------------------------------------
    @property
    def obs(self) -> "Observability":
        """The simulation's :class:`~repro.obs.Observability` hub (shared
        with every instrumented component via ``sim.obs``)."""
        if self.sim is not None:
            return self.sim.obs
        if self._obs is None:  # standalone monitor (tests, offline use)
            from repro.obs import Observability

            self._obs = Observability()
        return self._obs

    def span(self, name: str, **tags: Any) -> "Span":
        """``with monitor.span("rcds.update", uri=...):`` — a traced span
        recording virtual start/end, nesting, and outcome."""
        return self.obs.span(name, **tags)

    def histogram(self, name: str, **tags: Any) -> "Histogram":
        """A tagged log-bucketed histogram (p50/p95/p99) from the registry."""
        return self.obs.metrics.histogram(name, **tags)

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of counters, probe means, and registry metrics.

        Registry metrics are included only when something has touched the
        simulator's observability hub — pure-legacy users see exactly the
        counters and probes they recorded.
        """
        out: Dict[str, float] = {}
        for name, c in self.counters.items():
            out[f"counter.{name}"] = float(c.value)
        for name, p in self.probes.items():
            out[f"probe.{name}.mean"] = p.mean
        obs = self._obs if self.sim is None else self.sim._obs
        if obs is not None:
            out.update(obs.metrics.snapshot())
        return out
