"""Lightweight instrumentation: counters, time series, and event traces.

Benchmarks and tests observe the system through these rather than by
groping around in component internals.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Counter:
    """A monotonically adjustable named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def incr(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Counter {self.name}={self.value}>"


class TimeSeries:
    """(time, value) samples, with summary statistics."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def record(self, t: float, value: float) -> None:
        self.samples.append((t, value))

    @property
    def values(self) -> List[float]:
        return [v for _, v in self.samples]

    def mean(self) -> float:
        vals = self.values
        return sum(vals) / len(vals) if vals else 0.0

    def total(self) -> float:
        return sum(self.values)

    def max(self) -> float:
        vals = self.values
        return max(vals) if vals else 0.0

    def min(self) -> float:
        vals = self.values
        return min(vals) if vals else 0.0

    def rate(self) -> float:
        """Total value divided by the sampled time span (e.g. bytes/s)."""
        if len(self.samples) < 2:
            return 0.0
        span = self.samples[-1][0] - self.samples[0][0]
        return self.total() / span if span > 0 else 0.0

    def __len__(self) -> int:
        return len(self.samples)


class Probe:
    """Aggregates scalar observations without keeping them all (Welford)."""

    __slots__ = ("name", "n", "_mean", "_m2", "_min", "_max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        self.n += 1
        delta = value - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def min(self) -> float:
        return self._min if self.n else 0.0

    @property
    def max(self) -> float:
        return self._max if self.n else 0.0


class TraceMonitor:
    """Central sink for named counters/series/probes plus an event trace."""

    def __init__(self, sim: Optional["Simulator"] = None, trace: bool = False) -> None:
        self.sim = sim
        self.tracing = trace
        self.counters: Dict[str, Counter] = {}
        self.series: Dict[str, TimeSeries] = {}
        self.probes: Dict[str, Probe] = {}
        self.trace_log: List[Tuple[float, str, Any]] = []

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def timeseries(self, name: str) -> TimeSeries:
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = TimeSeries(name)
        return s

    def probe(self, name: str) -> Probe:
        p = self.probes.get(name)
        if p is None:
            p = self.probes[name] = Probe(name)
        return p

    def trace(self, kind: str, detail: Any = None) -> None:
        """Append a trace record at the current virtual time (if tracing)."""
        if self.tracing:
            now = self.sim.now if self.sim is not None else 0.0
            self.trace_log.append((now, kind, detail))

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of all counters and probe means — handy for asserts."""
        out: Dict[str, float] = {}
        for name, c in self.counters.items():
            out[f"counter.{name}"] = float(c.value)
        for name, p in self.probes.items():
            out[f"probe.{name}.mean"] = p.mean
        return out
