"""Exception types raised by the simulation kernel."""

from __future__ import annotations

from typing import Any


class SimulationError(RuntimeError):
    """Misuse of the kernel API (double-trigger, yielding non-events, ...)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The interrupted process may catch this to clean up or change course;
    ``cause`` carries whatever object the interrupter supplied.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt(cause={self.cause!r})"


class StopSimulation(Exception):
    """Internal signal used by ``Simulator.run(until=event)``."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value
