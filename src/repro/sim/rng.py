"""Named, independently seeded random streams.

Every stochastic component draws from its own named stream so that adding
a new component (or reordering draws inside one) never perturbs the others.
Streams are derived from the master seed with a stable hash of the name,
so runs are reproducible across processes and Python versions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def _derive_seed(master: int, name: str) -> int:
    digest = hashlib.sha256(f"{master}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache for named :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for *name*, created (deterministically) on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(_derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RngRegistry seed={self.master_seed} streams={sorted(self._streams)}>"
