"""Generator-coroutine processes.

A :class:`Process` drives a generator: each ``yield``-ed :class:`Event`
suspends the process until the event fires, at which point the generator
is resumed with the event's value (or the event's exception is thrown in).
A Process is itself an Event that fires with the generator's return value
when it exits, so processes can wait on each other with ``yield proc``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Process(Event):
    """A running simulation process wrapping a generator."""

    __slots__ = ("gen", "name", "_target", "_resume_pending")

    def __init__(
        self, sim: "Simulator", gen: Generator[Event, Any, Any], name: str = ""
    ) -> None:
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise SimulationError(f"process body must be a generator, got {gen!r}")
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[Event] = None
        # Kick off at the current simulation time via an initialisation event.
        init = Event(sim)
        init._value = None
        sim._schedule(init, 0.0)
        init.add_callback(self._resume)
        self._target = init

    @property
    def is_alive(self) -> bool:
        """True while the generator has not exited."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process
        that is about to be resumed is allowed (the interrupt wins).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        if self._target is self:
            raise SimulationError("process cannot interrupt itself")
        # Detach from the current target so its firing no longer resumes us.
        if self._target is not None:
            self._target.remove_callback(self._resume)
            self._target = None
        ev = Event(self.sim)
        ev._exc = Interrupt(cause)
        self.sim._schedule(ev, 0.0)
        ev.add_callback(self._resume)
        self._target = ev

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of *event*."""
        self.sim._active_process = self
        self._target = None
        try:
            if event._exc is not None:
                next_ev = self.gen.throw(event._exc)
            else:
                next_ev = self.gen.send(event._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._active_process = None
            self.fail(exc)
            if self.sim.strict_process_errors and not self.callbacks:
                # Nobody is waiting on this process: surface the error at
                # run() rather than letting a background crash pass silently.
                self.sim._crashed.append((self, exc))
            return
        finally:
            self.sim._active_process = None

        if not isinstance(next_ev, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded non-event {next_ev!r}"
            )
            self.gen.close()
            self.fail(exc)
            self.sim._crashed.append((self, exc))
            return
        self._target = next_ev
        next_ev.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "dead" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
