"""Deterministic discrete-event simulation kernel.

This package is the substrate for the whole SNIPE reproduction: virtual
time, generator-coroutine processes, events, resources, and seeded random
streams. Everything above it (network, transports, SNIPE services) is a
deterministic function of the master seed.

The programming model follows the classic process-interaction style
(cf. SimPy): a *process* is a Python generator that ``yield``\\ s events;
the kernel resumes it when the event fires.

Example
-------
>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> log = []
>>> def proc(sim):
...     yield sim.timeout(5)
...     log.append(sim.now)
>>> _ = sim.process(proc(sim))
>>> sim.run()
>>> log
[5.0]
"""

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout, defuse, waker
from repro.sim.kernel import Simulator, TimerHandle
from repro.sim.process import Process
from repro.sim.resources import Gate, PriorityStore, Resource, Store
from repro.sim.rng import RngRegistry
from repro.sim.monitor import Counter, Probe, TimeSeries, TraceMonitor

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Event",
    "Gate",
    "Interrupt",
    "PriorityStore",
    "Probe",
    "Process",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Store",
    "TimeSeries",
    "Timeout",
    "TimerHandle",
    "TraceMonitor",
    "defuse",
    "waker",
]
