"""The simulation kernel: virtual clock plus a priority event queue.

Two scheduling stores back the queue:

* a binary heap of ``(time, priority, eid, event)`` entries — the
  classic discrete-event core; and
* a hierarchical timer wheel for *cancellable* timers created through
  :meth:`Simulator.schedule_timer` (retransmission timers, RPC
  deadlines, heartbeat sleeps). Wheel entries carry a heap-compatible
  key assigned at schedule time but stay in coarse calendar buckets
  until the clock approaches; a timer cancelled before its bucket is
  flushed never touches the heap at all. Under a retransmit-heavy
  workload almost every timer is cancelled (the ACK beats the RTO), so
  the wheel turns the dominant heap traffic into list appends.

Determinism: entry keys are assigned when the timer is *scheduled*, and
buckets are flushed into the heap strictly before any entry with an
equal-or-later key can be popped, so the pop order — including
same-timestamp tie sets seen by an exploration scheduler — is
bit-identical to pushing every timer straight onto the heap. Setting
``SNIPE_LEGACY_KERNEL=1`` (or ``Simulator(legacy_timers=True)``) does
exactly that, which is what the kernel-equivalence suite compares
against.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.sim.errors import SimulationError, StopSimulation
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngRegistry

#: Queue priorities: urgent beats normal at equal timestamps. Used by the
#: kernel internally (interrupts are urgent); ties otherwise break on
#: insertion order, which keeps runs deterministic — unless a pluggable
#: tie-breaking scheduler (see :meth:`Simulator.set_scheduler`) permutes
#: them for systematic schedule exploration.
URGENT = 0
NORMAL = 1

#: Finest wheel slot width in virtual seconds. Timers due sooner than one
#: slot go straight onto the heap (bucketing them buys nothing).
WHEEL_GRANULARITY = 0.002
#: Slot-width ratio between adjacent wheel levels.
WHEEL_FANOUT = 32
#: Number of wheel levels. Level ``l`` slots span ``GRANULARITY *
#: FANOUT**l`` seconds; with 4 levels the coarsest slot is ~65 s, wide
#: enough for any lease/retry horizon in the tree.
WHEEL_LEVELS = 4


class TimerHandle:
    """A cancellable one-shot kernel timer (see ``schedule_timer``).

    Not an :class:`~repro.sim.events.Event`: it cannot be yielded on or
    given callbacks — it just runs ``fn()`` at its deadline unless
    cancelled first. ``cancel()`` after firing (or a second time) is a
    no-op, so the fired-vs-cancelled race needs no guard at call sites.
    """

    __slots__ = ("deadline", "owner", "cancelled", "fired", "_fn")

    def __init__(self, fn: Callable[[], None], deadline: float, owner: str) -> None:
        self._fn = fn
        self.deadline = deadline
        self.owner = owner
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        if not self.fired:
            self.cancelled = True

    def _process(self) -> None:
        if not self.cancelled:
            self.fired = True
            self._fn()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "cancelled" if self.cancelled else "fired" if self.fired else "armed"
        return f"<TimerHandle {state} t={self.deadline} owner={self.owner!r}>"


class Simulator:
    """Owns virtual time, the event queue, and the random-stream registry.

    Parameters
    ----------
    seed:
        Master seed for all named RNG streams (see :class:`RngRegistry`).
    strict_process_errors:
        When True (default), an uncaught exception in any process aborts
        ``run()`` with that exception; this turns silent background crashes
        into loud test failures.
    legacy_timers:
        When True, ``schedule_timer`` bypasses the timer wheel and pushes
        every timer straight onto the heap (the pre-wheel scheduling
        path, kept for one PR as the equivalence baseline). ``None``
        reads the ``SNIPE_LEGACY_KERNEL`` environment variable.
    """

    def __init__(
        self,
        seed: int = 0,
        strict_process_errors: bool = True,
        legacy_timers: Optional[bool] = None,
    ) -> None:
        self.now: float = 0.0
        self.rng = RngRegistry(seed)
        self.strict_process_errors = strict_process_errors
        self._queue: List[Tuple[float, int, int, Any]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        self._crashed: List[Tuple[Process, BaseException]] = []
        self._obs = None
        self._overload = None
        #: Pluggable same-timestamp tie-breaker (None = FIFO insertion
        #: order). See :meth:`set_scheduler`.
        self._scheduler = None
        #: Optional probe bus (:class:`repro.check.ProbeBus`): when set,
        #: instrumented components emit semantic events (context starts,
        #: envelope sends/deliveries, fence writes, catalog applies) that
        #: the model-checking oracles consume. None costs one attribute
        #: read at each emit site.
        self.probes = None
        #: Optional kernel profiler (:class:`repro.obs.prof.KernelProfiler`):
        #: when attached, every heap push is noted and every popped event is
        #: dispatched through the profiler so callback wall-clock can be
        #: attributed. None costs one attribute test per schedule/step.
        self._prof = None
        #: Optional flight recorder (:class:`repro.obs.flight.FlightRecorder`):
        #: when attached, hosts note delivered frames into its per-host
        #: rings. None costs one attribute read per delivered frame.
        self.flight = None
        #: Per-simulation named sequence counters (see :meth:`sequence`).
        self._seqs: Dict[str, int] = {}
        #: Frames constructed in this simulation (fed by the transports
        #: via :meth:`next_frame_id`; read by the kernel profiler). Like
        #: :meth:`sequence`, frame identity is per-sim state so replays
        #: cannot be perturbed by earlier simulations in the process.
        self.frames_constructed = 0
        if legacy_timers is None:
            legacy_timers = bool(os.environ.get("SNIPE_LEGACY_KERNEL"))
        self._legacy_timers = legacy_timers
        # Timer wheel: per-level sparse calendar buckets (slot -> entry
        # list) plus a heap of (slot_start, level, slot) flush deadlines.
        self._wheel: List[Dict[int, List[Tuple[float, int, int, TimerHandle]]]] = [
            {} for _ in range(WHEEL_LEVELS)
        ]
        self._wheel_due: List[Tuple[float, int, int]] = []
        self._wheel_spans = [
            WHEEL_GRANULARITY * WHEEL_FANOUT**level for level in range(WHEEL_LEVELS)
        ]

    def sequence(self, name: str) -> int:
        """Next value (1, 2, ...) of the named per-simulation counter.

        Identity counters (task URNs, context incarnations, transport
        message ids) must come from the simulation, not from
        process-global state: a URN like ``urn:snipe:proc:worker.7``
        feeds the Guardians' consistent-hash sharding, so
        globally-numbered identities would make the same seed behave
        differently depending on how many simulations ran earlier in the
        process — unacceptable for replayable runs.
        """
        n = self._seqs.get(name, 0) + 1
        self._seqs[name] = n
        return n

    def next_frame_id(self) -> int:
        """Next per-simulation frame id (1, 2, ...), counted for the
        profiler. A dedicated counter rather than :meth:`sequence`
        because frames are the hottest allocation on the wire path."""
        n = self.frames_constructed + 1
        self.frames_constructed = n
        return n

    def set_scheduler(self, scheduler) -> None:
        """Install a tie-breaking scheduler, or ``None`` for FIFO order.

        The scheduler sees every point where more than one event is
        runnable at the same (timestamp, priority) and picks which goes
        first: ``scheduler.pick(now, n)`` must return an index in
        ``[0, n)`` into the candidates listed in insertion order (so
        ``pick == 0`` everywhere reproduces the default schedule).
        Priorities are never reordered — urgent still beats normal.
        """
        self._scheduler = scheduler

    @property
    def obs(self):
        """This simulation's observability hub (metrics + tracer), created
        on first touch so bare kernels pay nothing for it."""
        if self._obs is None:
            from repro.obs import Observability

            self._obs = Observability(clock=lambda: self.now)
        return self._obs

    @property
    def overload(self):
        """This simulation's overload-control configuration (adaptive
        timeouts, circuit breakers, lane bounds), created on first touch.
        Flip its fields before building endpoints to change behaviour;
        ``adaptive=False`` is the static-timeout baseline."""
        if self._overload is None:
            from repro.robust.overload import OverloadConfig

            self._overload = OverloadConfig()
        return self._overload

    # -- event factories -------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event; trigger it with ``succeed``/``fail``."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing *delay* units of virtual time from now."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a new process from generator *gen*."""
        return Process(self, gen, name=name)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._eid += 1
        heapq.heappush(self._queue, (self.now + delay, priority, self._eid, event))
        if self._prof is not None:
            self._prof.note_schedule(event, len(self._queue))

    def schedule_timer(
        self, delay: float, fn: Callable[[], None], owner: str = ""
    ) -> TimerHandle:
        """Run ``fn()`` *delay* from now unless the handle is cancelled.

        The cheap path for the retransmit/deadline pattern: unlike a
        :class:`Timeout`, a cancelled timer is skipped without running
        callbacks, without advancing the clock, and without appearing in
        an exploration scheduler's tie sets — and when cancelled before
        its wheel bucket flushes (the common case: the ACK beats the
        RTO) it never reaches the event heap at all. *owner* is a
        process-style name (``srudp-send:h3``) the profiler uses to
        attribute the firing.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        deadline = self.now + delay
        handle = TimerHandle(fn, deadline, owner)
        self._eid += 1
        entry = (deadline, NORMAL, self._eid, handle)
        prof = self._prof
        if self._legacy_timers or delay < WHEEL_GRANULARITY:
            heapq.heappush(self._queue, entry)
            if prof is not None:
                prof.note_schedule(handle, len(self._queue))
        else:
            level = 0
            spans = self._wheel_spans
            for i in range(WHEEL_LEVELS - 1, 0, -1):
                if delay >= spans[i]:
                    level = i
                    break
            span = spans[level]
            slot = int(deadline / span)
            buckets = self._wheel[level]
            bucket = buckets.get(slot)
            if bucket is None:
                buckets[slot] = [entry]
                heapq.heappush(self._wheel_due, (slot * span, level, slot))
            else:
                bucket.append(entry)
        if prof is not None:
            prof.note_timer(handle)
        return handle

    def timer_event(self, delay: float, value: Any = None, owner: str = "") -> Event:
        """An event fired *delay* from now via the timer wheel.

        The drop-in for periodic sleeps (heartbeats, lease refresh,
        compaction ticks): behaves like :meth:`timeout` to the yielding
        process but keeps long-horizon sleeps out of the event heap
        until they are nearly due.
        """
        ev = Event(self)

        def _fire(ev=ev, value=value):
            ev.succeed(value)

        self.schedule_timer(delay, _fire, owner)
        return ev

    def _settle(self) -> None:
        """Make the heap head authoritative: drop cancelled timer heads
        and flush every wheel bucket whose slot could still precede it.

        The flush invariant that keeps wheel scheduling bit-identical to
        direct heap pushes: a bucket's entries all have ``deadline >=
        slot_start``, so as long as every bucket with ``slot_start <=
        head time`` is flushed before the head is popped, every entry
        reaches the heap before any entry with a later key can run.
        Coarse-level buckets cascade into level-0 slots rather than the
        heap so a 60-second lease sleep occupies one coarse slot, not a
        heap entry, for most of its life.
        """
        q = self._queue
        due = self._wheel_due
        prof = self._prof
        while True:
            while q:
                head = q[0][3]
                if head.__class__ is TimerHandle and head.cancelled:
                    heapq.heappop(q)
                else:
                    break
            if not due or (q and q[0][0] < due[0][0]):
                return
            _start, level, slot = heapq.heappop(due)
            bucket = self._wheel[level].pop(slot, None)
            if not bucket:
                continue
            if level == 0:
                for entry in bucket:
                    if not entry[3].cancelled:
                        heapq.heappush(q, entry)
                        if prof is not None:
                            prof.heap_pushes += 1
            else:
                fine = self._wheel[0]
                g0 = WHEEL_GRANULARITY
                for entry in bucket:
                    if entry[3].cancelled:
                        continue
                    fslot = int(entry[0] / g0)
                    fine_bucket = fine.get(fslot)
                    if fine_bucket is None:
                        fine[fslot] = [entry]
                        heapq.heappush(due, (fslot * g0, 0, fslot))
                    else:
                        fine_bucket.append(entry)

    # -- execution ---------------------------------------------------------
    @property
    def queue_empty(self) -> bool:
        self._settle()
        return not self._queue

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        self._settle()
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        self._settle()
        if not self._queue:
            raise SimulationError("step() on empty queue")
        if self._scheduler is None:
            t, _prio, _eid, event = heapq.heappop(self._queue)
        else:
            t, _prio, _eid, event = self._pop_scheduled()
        self.now = t
        if self._prof is None:
            event._process()
        else:
            self._prof.run_event(event)
        if self._crashed and self.strict_process_errors:
            _proc, exc = self._crashed[0]
            self._crashed.clear()
            raise exc

    def _pop_scheduled(self) -> Tuple[float, int, int, Any]:
        """Pop the next event, letting the scheduler break timestamp ties.

        All live events sharing the head's (timestamp, priority) are
        candidates; they are presented in insertion order, so index 0 is
        the FIFO choice. Cancelled timers are discarded while collecting
        — a dead retransmit timer must not widen the tie set the
        exploration scheduler permutes. Unchosen candidates go back on
        the heap — events scheduled *while the chosen one runs* join the
        tie set at the next step.
        """
        q = self._queue
        head = heapq.heappop(q)
        # A cancelled timer at the head must not seed the tie set: it
        # would widen the permutation set and burn a scheduler pick on an
        # event the run loop discards — and since legacy mode keeps every
        # cancelled timer on the heap while wheel mode drops most in
        # their buckets, that pick-count skew would make the two kernels
        # consume the exploration RNG differently. Hand it straight back
        # (the run loop discards it without advancing the clock); popping
        # onward here would skip past the caller's stop_at check.
        if head[3].__class__ is TimerHandle and head[3].cancelled:
            return head
        if not q or q[0][0] != head[0] or q[0][1] != head[1]:
            return head
        ties = [head]
        while q and q[0][0] == head[0] and q[0][1] == head[1]:
            item = heapq.heappop(q)
            ev = item[3]
            if ev.__class__ is TimerHandle and ev.cancelled:
                continue
            ties.append(item)
        if len(ties) == 1:
            return head
        chosen = ties.pop(self._scheduler.pick(head[0], len(ties)))
        for item in ties:
            heapq.heappush(q, item)
        return chosen

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until=None`` drains the queue; a number runs up to that virtual
        time; an :class:`Event` runs until that event is processed and
        returns its value.
        """
        stop_at: Optional[float] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            if until.sim is not self:
                raise SimulationError("until-event belongs to another simulator")

            def _stop(ev: Event) -> None:
                raise StopSimulation(ev._value if ev._exc is None else ev._exc)

            until.add_callback(_stop)
        elif isinstance(until, (int, float)):
            stop_at = float(until)
            if stop_at < self.now:
                raise SimulationError(f"until={stop_at} is in the past (now={self.now})")
        else:
            raise SimulationError(f"invalid until argument {until!r}")

        # The hot loop: equivalent to `while not queue_empty: step()` but
        # with the per-event property/method dispatch flattened out —
        # this loop runs once per simulated event, so plain attribute
        # traffic here is a measurable share of every benchmark.
        queue = self._queue
        crashed = self._crashed
        wheel_due = self._wheel_due
        pop = heapq.heappop
        try:
            while True:
                # Flush due wheel buckets only when one could actually
                # precede the heap head; in legacy mode (and between
                # timer deadlines) this is a single truthiness test
                # instead of a _settle() call per event.
                if wheel_due and (not queue or wheel_due[0][0] <= queue[0][0]):
                    self._settle()
                if not queue:
                    break
                if stop_at is not None and queue[0][0] > stop_at:
                    self.now = stop_at
                    return None
                if self._scheduler is None:
                    t, _prio, _eid, event = pop(queue)
                else:
                    t, _prio, _eid, event = self._pop_scheduled()
                if event.__class__ is TimerHandle and event.cancelled:
                    # Dead timers are discarded unseen — they must not
                    # advance the clock (legacy mode pushes every timer
                    # on the heap, so both modes must agree on this).
                    continue
                self.now = t
                if self._prof is None:
                    event._process()
                else:
                    self._prof.run_event(event)
                if crashed and self.strict_process_errors:
                    _proc, exc = crashed[0]
                    crashed.clear()
                    raise exc
        except StopSimulation as stop:
            if isinstance(stop.value, BaseException):
                raise stop.value
            return stop.value
        if stop_at is not None:
            self.now = stop_at
        if isinstance(until, Event) and not until.triggered:
            raise SimulationError("run(until=event): queue drained but event never fired")
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Simulator now={self.now} queued={len(self._queue)}>"
