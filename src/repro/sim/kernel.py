"""The simulation kernel: virtual clock plus a priority event queue."""

from __future__ import annotations

import heapq
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.sim.errors import SimulationError, StopSimulation
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngRegistry

#: Queue priorities: urgent beats normal at equal timestamps. Used by the
#: kernel internally (interrupts are urgent); ties otherwise break on
#: insertion order, which keeps runs deterministic — unless a pluggable
#: tie-breaking scheduler (see :meth:`Simulator.set_scheduler`) permutes
#: them for systematic schedule exploration.
URGENT = 0
NORMAL = 1


class Simulator:
    """Owns virtual time, the event queue, and the random-stream registry.

    Parameters
    ----------
    seed:
        Master seed for all named RNG streams (see :class:`RngRegistry`).
    strict_process_errors:
        When True (default), an uncaught exception in any process aborts
        ``run()`` with that exception; this turns silent background crashes
        into loud test failures.
    """

    def __init__(self, seed: int = 0, strict_process_errors: bool = True) -> None:
        self.now: float = 0.0
        self.rng = RngRegistry(seed)
        self.strict_process_errors = strict_process_errors
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        self._crashed: List[Tuple[Process, BaseException]] = []
        self._obs = None
        self._overload = None
        #: Pluggable same-timestamp tie-breaker (None = FIFO insertion
        #: order). See :meth:`set_scheduler`.
        self._scheduler = None
        #: Optional probe bus (:class:`repro.check.ProbeBus`): when set,
        #: instrumented components emit semantic events (context starts,
        #: envelope sends/deliveries, fence writes, catalog applies) that
        #: the model-checking oracles consume. None costs one attribute
        #: read at each emit site.
        self.probes = None
        #: Optional kernel profiler (:class:`repro.obs.prof.KernelProfiler`):
        #: when attached, every heap push is noted and every popped event is
        #: dispatched through the profiler so callback wall-clock can be
        #: attributed. None costs one attribute test per schedule/step.
        self._prof = None
        #: Optional flight recorder (:class:`repro.obs.flight.FlightRecorder`):
        #: when attached, hosts note delivered frames into its per-host
        #: rings. None costs one attribute read per delivered frame.
        self.flight = None
        #: Per-simulation named sequence counters (see :meth:`sequence`).
        self._seqs: Dict[str, int] = {}

    def sequence(self, name: str) -> int:
        """Next value (1, 2, ...) of the named per-simulation counter.

        Identity counters (task URNs, context incarnations) must come
        from the simulation, not from process-global state: a URN like
        ``urn:snipe:proc:worker.7`` feeds the Guardians' consistent-hash
        sharding, so globally-numbered identities would make the same
        seed behave differently depending on how many simulations ran
        earlier in the process — unacceptable for replayable runs.
        """
        n = self._seqs.get(name, 0) + 1
        self._seqs[name] = n
        return n

    def set_scheduler(self, scheduler) -> None:
        """Install a tie-breaking scheduler, or ``None`` for FIFO order.

        The scheduler sees every point where more than one event is
        runnable at the same (timestamp, priority) and picks which goes
        first: ``scheduler.pick(now, n)`` must return an index in
        ``[0, n)`` into the candidates listed in insertion order (so
        ``pick == 0`` everywhere reproduces the default schedule).
        Priorities are never reordered — urgent still beats normal.
        """
        self._scheduler = scheduler

    @property
    def obs(self):
        """This simulation's observability hub (metrics + tracer), created
        on first touch so bare kernels pay nothing for it."""
        if self._obs is None:
            from repro.obs import Observability

            self._obs = Observability(clock=lambda: self.now)
        return self._obs

    @property
    def overload(self):
        """This simulation's overload-control configuration (adaptive
        timeouts, circuit breakers, lane bounds), created on first touch.
        Flip its fields before building endpoints to change behaviour;
        ``adaptive=False`` is the static-timeout baseline."""
        if self._overload is None:
            from repro.robust.overload import OverloadConfig

            self._overload = OverloadConfig()
        return self._overload

    # -- event factories -------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event; trigger it with ``succeed``/``fail``."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing *delay* units of virtual time from now."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a new process from generator *gen*."""
        return Process(self, gen, name=name)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._eid += 1
        heapq.heappush(self._queue, (self.now + delay, priority, self._eid, event))
        if self._prof is not None:
            self._prof.note_schedule(event, len(self._queue))

    # -- execution ---------------------------------------------------------
    @property
    def queue_empty(self) -> bool:
        return not self._queue

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on empty queue")
        if self._scheduler is None:
            t, _prio, _eid, event = heapq.heappop(self._queue)
        else:
            t, _prio, _eid, event = self._pop_scheduled()
        self.now = t
        if self._prof is None:
            event._process()
        else:
            self._prof.run_event(event)
        if self._crashed and self.strict_process_errors:
            _proc, exc = self._crashed[0]
            self._crashed.clear()
            raise exc

    def _pop_scheduled(self) -> Tuple[float, int, int, Event]:
        """Pop the next event, letting the scheduler break timestamp ties.

        All events sharing the head's (timestamp, priority) are candidates;
        they are presented in insertion order, so index 0 is the FIFO
        choice. Unchosen candidates go back on the heap — events scheduled
        *while the chosen one runs* join the tie set at the next step.
        """
        head = heapq.heappop(self._queue)
        if not self._queue or self._queue[0][0] != head[0] or self._queue[0][1] != head[1]:
            return head
        ties = [head]
        while self._queue and self._queue[0][0] == head[0] and self._queue[0][1] == head[1]:
            ties.append(heapq.heappop(self._queue))
        chosen = ties.pop(self._scheduler.pick(head[0], len(ties)))
        for item in ties:
            heapq.heappush(self._queue, item)
        return chosen

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until=None`` drains the queue; a number runs up to that virtual
        time; an :class:`Event` runs until that event is processed and
        returns its value.
        """
        stop_at: Optional[float] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            if until.sim is not self:
                raise SimulationError("until-event belongs to another simulator")

            def _stop(ev: Event) -> None:
                raise StopSimulation(ev._value if ev._exc is None else ev._exc)

            until.add_callback(_stop)
        elif isinstance(until, (int, float)):
            stop_at = float(until)
            if stop_at < self.now:
                raise SimulationError(f"until={stop_at} is in the past (now={self.now})")
        else:
            raise SimulationError(f"invalid until argument {until!r}")

        try:
            while self._queue:
                if stop_at is not None and self._queue[0][0] > stop_at:
                    self.now = stop_at
                    return None
                self.step()
        except StopSimulation as stop:
            if isinstance(stop.value, BaseException):
                raise stop.value
            return stop.value
        if stop_at is not None:
            self.now = stop_at
        if isinstance(until, Event) and not until.triggered:
            raise SimulationError("run(until=event): queue drained but event never fired")
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Simulator now={self.now} queued={len(self._queue)}>"
