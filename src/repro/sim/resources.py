"""Shared resources: stores (bounded queues), priority stores, semaphores,
and broadcast gates. These are the synchronisation vocabulary used by the
network and SNIPE service layers.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List, Tuple

from repro.sim.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Store:
    """FIFO queue of items with optional capacity.

    ``put(item)`` and ``get()`` return events; a put blocks while the store
    is full, a get blocks while it is empty.
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def full(self) -> bool:
        return len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        ev = Event(self.sim)
        # Fast paths preserve _dispatch()'s order exactly (put admitted
        # first, then the getter satisfied) without the scan: with no
        # queued putters a waiting getter implies an empty store, and a
        # non-full store with no getters just appends.
        if not self._putters:
            if self._getters and not self.items:
                ev.succeed()
                self._getters.popleft().succeed(item)
                return ev
            if not self.full and not self._getters:
                self._push_item(item)
                ev.succeed()
                return ev
        self._putters.append((ev, item))
        self._dispatch()
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; False if the store is full."""
        if self.full and not self._getters:
            return False
        self.put(item)
        return True

    def get(self) -> Event:
        ev = Event(self.sim)
        if not self._putters:
            if self.items and not self._getters:
                ev.succeed(self._pop_item())
            else:
                self._getters.append(ev)
            return ev
        self._getters.append(ev)
        self._dispatch()
        return ev

    def try_get(self) -> Tuple[bool, Any]:
        """Non-blocking get; (False, None) if nothing immediately available."""
        if not self.items and not self._putters:
            return False, None
        if self.items:
            item = self._pop_item()
            self._dispatch()
            return True, item
        # A putter is waiting but the item hasn't been admitted yet.
        ev, item = self._putters.popleft()
        ev.succeed()
        return True, item

    # -- internals -------------------------------------------------------
    def _push_item(self, item: Any) -> None:
        self.items.append(item)

    def _pop_item(self) -> Any:
        return self.items.popleft()

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Admit queued puts while there is room.
            while self._putters and not self.full:
                ev, item = self._putters.popleft()
                self._push_item(item)
                ev.succeed()
                progressed = True
            # Satisfy queued gets while there are items.
            while self._getters and self.items:
                ev = self._getters.popleft()
                ev.succeed(self._pop_item())
                progressed = True


class PriorityStore(Store):
    """Store returning the smallest item first (items must be orderable)."""

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:
        super().__init__(sim, capacity)
        self._heap: List[Any] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.capacity

    def _push_item(self, item: Any) -> None:
        heapq.heappush(self._heap, item)

    def _pop_item(self) -> Any:
        return heapq.heappop(self._heap)

    @property
    def items(self):  # type: ignore[override]
        return self._heap

    @items.setter
    def items(self, value) -> None:
        # Base-class __init__ assigns a deque; ignore it, the heap is canonical.
        pass


class Resource:
    """Counting semaphore: at most *capacity* concurrent holders."""

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def request(self) -> Event:
        """Event that fires when a slot is granted."""
        ev = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError("release without matching request")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class Gate:
    """Broadcast signal: many waiters, one ``open()`` wakes them all.

    Unlike an Event, a Gate is reusable: after opening it can be reset and
    waited on again. Used for "state changed" notifications.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.is_open = False
        self._waiters: List[Event] = []

    def wait(self) -> Event:
        ev = Event(self.sim)
        if self.is_open:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def open(self, value: Any = None) -> None:
        self.is_open = True
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed(value)

    def reset(self) -> None:
        self.is_open = False

    def pulse(self, value: Any = None) -> None:
        """Wake current waiters without leaving the gate open."""
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed(value)
