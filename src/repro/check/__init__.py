"""repro.check — the deterministic simulator as a model checker.

The simulator already makes every run a pure function of its seed; this
package adds the three missing pieces of a model checker on top of it:

* **schedule exploration** — :class:`ExplorationScheduler` plugs into
  :meth:`repro.sim.kernel.Simulator.set_scheduler` and permutes
  same-timestamp event ties from a seed, so one integer fully determines
  a schedule and different integers genuinely explore different
  interleavings (priorities are never reordered);
* **reference-model oracles** — small, obviously-correct models checked
  *continuously* against the real implementation through the kernel's
  probe bus: an LWW-map model for catalog replica convergence
  (:class:`ConvergenceOracle`), an exactly-once/FIFO model for
  URN-addressed message streams (:class:`DeliveryOracle`), and a
  single-owner model for Guardian restarts — never two live, unfenced
  incarnations of one URN (:class:`SingleOwnerOracle`);
* **search and shrinking** — :func:`run_check` drives a seeded workload
  + fault plan under an explored schedule; ``python -m repro check
  sweep`` searches seeds; on a violation, :func:`minimize`
  delta-debugs the fault timeline (and drops the tie permutation when
  it is not needed) down to a minimized trace that ``python -m repro
  check replay`` re-fails deterministically.

Deliberately seeded bugs (``--bug``, see :data:`BUGS`) exist to prove
the oracles can catch what they claim to catch.
"""

from repro.check.explore import (
    BUGS,
    ExplorationScheduler,
    FaultEvent,
    apply_fault_plan,
    run_check,
    sample_fault_plan,
    seeded_bug,
)
from repro.check.oracles import (
    ConvergenceOracle,
    DeliveryOracle,
    LwwMap,
    ProbeBus,
    SingleOwnerOracle,
    Violation,
    lww_merge,
)
from repro.check.shrink import ddmin, load_trace, minimize, replay_trace, write_trace

__all__ = [
    "BUGS",
    "ConvergenceOracle",
    "DeliveryOracle",
    "ExplorationScheduler",
    "FaultEvent",
    "LwwMap",
    "ProbeBus",
    "SingleOwnerOracle",
    "Violation",
    "apply_fault_plan",
    "ddmin",
    "load_trace",
    "lww_merge",
    "minimize",
    "replay_trace",
    "run_check",
    "sample_fault_plan",
    "seeded_bug",
    "write_trace",
]
