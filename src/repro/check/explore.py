"""Schedule exploration: seeded tie-breaking, explicit fault plans, and
the check harness that runs a workload under oracle supervision.

One integer — the seed — fully determines a run: it picks the fault
plan (an explicit, replayable list of :class:`FaultEvent`), seeds every
workload RNG stream, and seeds the :class:`ExplorationScheduler` that
permutes same-timestamp event ties inside the kernel. Replaying the
same (scenario, seed, plan, bug) tuple therefore reproduces the same
execution bit-for-bit, which is what makes shrinking
(:mod:`repro.check.shrink`) possible.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bulk.fetch import BulkFetcher
from repro.check.oracles import (
    ChunkOracle,
    CompactionOracle,
    ConvergenceOracle,
    CorruptionOracle,
    DeliveryOracle,
    FalseDeathOracle,
    ProbeBus,
    ResurrectionOracle,
    ShardOracle,
    SingleOwnerOracle,
    Violation,
)
from repro.core.process import SnipeContext
from repro.daemon.tasks import TaskSpec
from repro.guardian.guardian import Guardian
from repro.obs.flight import FlightRecorder
from repro.rcds.records import RCStore
from repro.rcds.shard.server import ShardRCServer
from repro.robust.health import HealthBoard
from repro.transport.srudp import SrudpEndpoint
from repro.robust.chaos import (
    _instrument_sim,
    build_chaos_env,
    build_shard_env,
    install_chaos_programs,
    install_overload_worker,
    new_coll_state,
    start_heal_sessions,
    start_load_generators,
    start_shard_sessions,
)


class ExplorationScheduler:
    """Seeded same-timestamp tie-breaker for the simulation kernel.

    ``pick(now, n)`` chooses uniformly among the *n* runnable events
    sharing the head (timestamp, priority); seed 0 always picks index 0,
    which is the kernel's default FIFO schedule. The pick sequence is a
    pure function of the seed and of the schedule so far, so a seed is a
    complete schedule description.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(0x5EED ^ (seed * 0x9E3779B1)) if seed else None
        self.picks = 0
        self.reordered = 0

    def pick(self, now: float, n: int) -> int:
        self.picks += 1
        if self._rng is None or n <= 1:
            return 0
        choice = self._rng.randrange(n)
        if choice:
            self.reordered += 1
        return choice


# ---------------------------------------------------------------------------
# Explicit fault plans
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, explicit and serializable (so shrinkable).

    ``kind`` is one of ``crash`` (host down), ``partition`` (segment
    down, host stays up — the zombie scenario), ``split`` (target
    ``"a,b|c,d"``: a full two-sided cut between the host groups on a
    shared segment — the heal scenario's replica-group partition),
    ``congest`` (segment bandwidth/latency degraded by ``factor``),
    ``slow`` (host CPU divided by ``factor``), or one of the gray
    kinds: ``oneway``
    (target ``"a->b"``, frames a→b eaten while b→a flow), ``impair``
    (probabilistic loss/dup/reorder/corrupt on a segment, rates in
    ``extra``), ``skew`` (host wall clock offset/drift in ``extra``)
    and ``ckptrot`` (checkpoints written by the host are corrupted).
    Every window heals after ``duration``. ``extra`` is a sorted tuple
    of ``(key, value)`` pairs — hashable, so the event stays frozen,
    and round-trips through ``to_dict`` for shrinking.
    """

    kind: str
    target: str
    t: float
    duration: float
    factor: float = 1.0
    extra: tuple = ()

    def to_dict(self) -> Dict:
        d = {"kind": self.kind, "target": self.target, "t": self.t,
             "duration": self.duration, "factor": self.factor}
        if self.extra:
            d["extra"] = dict(self.extra)
        return d

    @classmethod
    def from_dict(cls, d: Dict) -> "FaultEvent":
        return cls(kind=d["kind"], target=d["target"], t=d["t"],
                   duration=d["duration"], factor=d.get("factor", 1.0),
                   extra=tuple(sorted(d.get("extra", {}).items())))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = f" x{self.factor:g}" if self.kind in ("congest", "slow") else ""
        if self.extra:
            extra += " " + ",".join(f"{k}={v:g}" for k, v in self.extra)
        return f"t={self.t:5.1f}s {self.kind} {self.target} for {self.duration:.1f}s{extra}"


def apply_fault_plan(env, plan: List[FaultEvent]) -> None:
    """Arm every event of *plan* on the environment's failure injector."""
    for ev in plan:
        if ev.kind == "crash":
            env.failures.host_down_at(ev.t, ev.target, duration=ev.duration)
        elif ev.kind == "partition":
            env.failures.segment_down_at(ev.t, ev.target, duration=ev.duration)
        elif ev.kind == "split":
            a, b = ev.target.split("|", 1)
            env.failures.partition_at(ev.t, a.split(","), b.split(","),
                                      duration=ev.duration)
        elif ev.kind == "congest":
            env.failures.congest_segment_at(ev.t, ev.target, ev.factor,
                                            duration=ev.duration)
        elif ev.kind == "slow":
            env.failures.slow_host_at(ev.t, ev.target, ev.factor,
                                      duration=ev.duration)
        elif ev.kind == "oneway":
            a, b = ev.target.split("->", 1)
            env.failures.partition_oneway_at(ev.t, [a], [b],
                                             duration=ev.duration)
        elif ev.kind == "impair":
            env.failures.impair_link_at(ev.t, ev.target, symmetric=True,
                                        duration=ev.duration,
                                        **dict(ev.extra))
        elif ev.kind == "skew":
            env.failures.skew_clock_at(ev.t, ev.target, duration=ev.duration,
                                       **dict(ev.extra))
        elif ev.kind == "ckptrot":
            env.failures.corrupt_checkpoints_at(ev.t, ev.target,
                                                duration=ev.duration)
        else:
            raise ValueError(f"unknown fault kind {ev.kind!r}")


def sample_fault_plan(
    scenario: str, seed: int, workers: List[str], horizon: float
) -> List[FaultEvent]:
    """Seeded explicit fault plan for a scenario.

    ``faults`` always includes at least one worker *partition* (the
    host survives — only a correct fencing chain keeps the zombie from
    double-owning its URN) plus a seeded mix of crashes and further
    partitions. ``overload`` schedules degradation windows — congestion
    on the core LAN and CPU-starved workers — on top of the bulk load.
    All times are rounded so plans serialize cleanly.
    """
    rng = random.Random(0xFA017 ^ (seed * 0x61C88647))
    r2 = lambda x: round(x, 2)  # noqa: E731
    plan: List[FaultEvent] = []
    if scenario == "faults":
        # The mandatory partition must outlast the Guardian's detection
        # horizon (lease lapse + grace + probe-confirmed death), or no
        # recovery ever starts while the victim is still alive and the
        # zombie/fencing chain goes untested. Probe confirmation added
        # several seconds to that horizon; durations shorter than ~12s
        # heal before a death is ever declared.
        w = workers[rng.randrange(len(workers))]
        plan.append(FaultEvent("partition", f"s-{w}",
                               r2(rng.uniform(3.0, horizon * 0.4)),
                               r2(rng.uniform(14.0, 20.0))))
        for _ in range(rng.randrange(1, 4)):
            w = workers[rng.randrange(len(workers))]
            kind = rng.choice(("crash", "partition"))
            target = w if kind == "crash" else f"s-{w}"
            plan.append(FaultEvent(kind, target,
                                   r2(rng.uniform(3.0, horizon * 0.6)),
                                   r2(rng.uniform(2.0, 8.0))))
    elif scenario == "overload":
        plan.append(FaultEvent("congest", "core-lan",
                               r2(rng.uniform(4.0, 7.0)),
                               r2(rng.uniform(6.0, 10.0)),
                               factor=round(rng.uniform(2.0, 4.0), 1)))
        for w in workers[: max(1, len(workers) // 2)]:
            plan.append(FaultEvent("slow", w,
                                   r2(rng.uniform(5.0, 9.0)),
                                   r2(rng.uniform(4.0, 8.0)),
                                   factor=round(rng.uniform(2.0, 5.0), 1)))
    elif scenario == "bulk":
        # Crash fetching hosts while the object is in flight (transfers
        # are sub-second to a-few-seconds, so faults land early).
        for _ in range(1 + rng.randrange(2)):
            w = workers[rng.randrange(len(workers))]
            plan.append(FaultEvent("crash", w,
                                   r2(rng.uniform(0.1, min(3.0, horizon))),
                                   r2(rng.uniform(0.5, 2.0))))
    elif scenario == "gray":
        plan = _sample_gray_plan(rng, workers, horizon)
    elif scenario == "heal":
        # One catalog replica isolated from the other two for longer than
        # the stability window (peer_stale_after + compact_interval), so
        # log compaction provably runs *while the cut is up* and the heal
        # has to cross the compaction horizon — gapped batches, snapshot
        # catch-up, and tombstone GC discipline are all on the path.
        iso = ("c0", "c1", "c2")[rng.randrange(3)]
        rest = ",".join(r for r in ("c0", "c1", "c2") if r != iso)
        plan.append(FaultEvent("split", f"{iso}|{rest}",
                               r2(rng.uniform(4.0, 10.0)),
                               r2(rng.uniform(12.0, 18.0))))
    elif scenario == "shard":
        # A core host carrying shard replicas crashes mid-migration (c0
        # stays up: it serves the director's own RC client), and one
        # worker segment is cut so its facade re-routes on a stale map
        # after the heal. Faults land while the write load is forcing
        # splits, so every run races handoff against them.
        core = ("c1", "c2")[rng.randrange(2)]
        plan.append(FaultEvent("crash", core,
                               r2(rng.uniform(8.0, horizon * 0.6)),
                               r2(rng.uniform(4.0, 8.0))))
        w = workers[rng.randrange(len(workers))]
        plan.append(FaultEvent("partition", f"s-{w}",
                               r2(rng.uniform(8.0, horizon * 0.7)),
                               r2(rng.uniform(4.0, 8.0))))
    else:
        raise ValueError(f"unknown scenario {scenario!r}")
    return sorted(plan, key=lambda e: (e.t, e.kind, e.target))


def _sample_gray_plan(rng: random.Random, workers: List[str],
                      horizon: float) -> List[FaultEvent]:
    """Gray faults: nothing here bumps the topology version or fully cuts
    a host off — every fault is the kind a lease-based detector misreads.

    The roles are kept on *disjoint* workers deliberately: a clock-skewed
    worker whose lease always looks lapsed must stay probe-reachable
    (overlaying a lossy window on the same host would turn an honest
    probe failure into an unavoidable "false" death and make clean seeds
    flaky). One-way cuts run core→worker only: the worker's lease
    renewals still arrive, so the Guardian never needs to probe through
    the cut direction — its replies are simply eaten, which is exactly
    the retransmission/dup stress srudp must absorb.
    """
    r2 = lambda x: round(x, 2)  # noqa: E731
    ws = list(workers)
    rng.shuffle(ws)
    skew_w, oneway_w = ws[0], ws[1 % len(ws)]
    rest = ws[2:] or ws[1:]
    plan: List[FaultEvent] = []
    # Lossy/duplicating/reordering windows on the remaining segments.
    for w in rest:
        plan.append(FaultEvent(
            "impair", f"s-{w}",
            r2(rng.uniform(3.0, horizon * 0.5)), r2(rng.uniform(4.0, 8.0)),
            extra=(("dup", round(rng.uniform(0.05, 0.15), 2)),
                   ("loss", round(rng.uniform(0.05, 0.2), 2)),
                   ("reorder", round(rng.uniform(0.05, 0.2), 2))),
        ))
    # One bit-flip window: every gray run exercises digest verification.
    cw = rest[rng.randrange(len(rest))]
    plan.append(FaultEvent(
        "impair", f"s-{cw}",
        r2(rng.uniform(4.0, horizon * 0.5)), r2(rng.uniform(3.0, 6.0)),
        extra=(("corrupt", round(rng.uniform(0.1, 0.25), 2)),),
    ))
    # Clock skew: the worker's lease stamps land far in the past, so its
    # lease looks permanently lapsed — only a probe-before-death keeps
    # the Guardian from killing a live host.
    # Early and long: the window must overlap the running workload, or
    # there is no RUNNING task whose death the naive detector could
    # wrongly declare.
    plan.append(FaultEvent(
        "skew", skew_w,
        r2(rng.uniform(2.5, 5.0)), r2(rng.uniform(15.0, 25.0)),
        extra=(("offset", -round(rng.uniform(15.0, 40.0), 1)),),
    ))
    # Asymmetric cut, replies-only direction (leases keep flowing).
    plan.append(FaultEvent(
        "oneway", f"gw->{oneway_w}",
        r2(rng.uniform(3.0, horizon * 0.5)), r2(rng.uniform(3.0, 6.0)),
    ))
    # Sometimes: a short checkpoint-bitrot window followed by a genuine
    # crash of the same worker — recovery must reject the torn record
    # and fall back to the previous good version.
    if rng.random() < 0.6:
        cv = rest[rng.randrange(len(rest))]
        t0 = r2(rng.uniform(6.0, horizon * 0.6))
        plan.append(FaultEvent("ckptrot", cv, t0, 0.4))
        plan.append(FaultEvent("crash", cv, r2(t0 + 0.45),
                               r2(rng.uniform(2.0, 5.0))))
    return plan


# ---------------------------------------------------------------------------
# Deliberately seeded bugs
# ---------------------------------------------------------------------------

#: name -> (what it breaks, which oracle must catch it).
BUGS: Dict[str, str] = {
    "no-fence-write": "Guardian skips the fenced-below quorum writes during "
                      "recovery (caught by the single-owner oracle)",
    "no-rx-fencing": "receivers accept envelopes from superseded incarnations "
                     "(caught by the delivery oracle)",
    "no-lww": "catalog replicas apply entries without the last-writer-wins "
              "comparison (caught by the convergence oracle)",
    "no-chunk-verify": "bulk fetchers commit chunks without checking their "
                       "digest against the chunk map (caught by the "
                       "chunk-integrity oracle; bulk scenario)",
    "no-digest": "transports skip payload digest stamping, so bit-flipped "
                 "fragments reassemble silently (caught by the "
                 "no-corrupt-delivery oracle; gray scenario)",
    "naive-health": "the Guardian trusts lapsed leases without the "
                    "differential probe-before-death, so a clock-skewed "
                    "live host is declared dead (caught by the "
                    "no-false-death oracle; gray scenario)",
    "early-gc": "replicas collect tombstones before every peer has acked "
                "past them, so a partitioned peer's stale pre-delete "
                "write resurrects the key on heal (caught by the "
                "no-resurrection oracle; heal scenario)",
    "vector-gap": "a gapped anti-entropy batch bumps the version vector "
                  "past records that were never applied, so the skipped "
                  "records are never requested again (caught by the "
                  "compaction-convergence oracle; heal scenario)",
    "stale-epoch-write": "shard replicas drop the epoch ownership fence, so "
                         "a client routing on a stale pre-split map lands "
                         "writes in the parent shard after the epoch "
                         "advanced (caught by the shard-ownership oracle; "
                         "shard scenario)",
}

_BUG_HOOKS = {
    "no-fence-write": (Guardian, "fence_writes_enabled"),
    "no-rx-fencing": (SnipeContext, "rx_fencing_enabled"),
    "no-lww": (RCStore, "lww_enabled"),
    "no-chunk-verify": (BulkFetcher, "verify_enabled"),
    "no-digest": (SrudpEndpoint, "digest_enabled"),
    "naive-health": (HealthBoard, "differential_enabled"),
    "early-gc": (RCStore, "safe_gc_enabled"),
    "vector-gap": (RCStore, "contiguous_vector_enabled"),
    "stale-epoch-write": (ShardRCServer, "epoch_fencing_enabled"),
}


@contextmanager
def seeded_bug(name: Optional[str]):
    """Disable one safety mechanism for the duration of the block."""
    if name is None:
        yield
        return
    if name not in _BUG_HOOKS:
        raise ValueError(f"unknown bug {name!r} (known: {sorted(_BUG_HOOKS)})")
    cls, attr = _BUG_HOOKS[name]
    saved = getattr(cls, attr)
    setattr(cls, attr, False)
    try:
        yield
    finally:
        setattr(cls, attr, saved)


# ---------------------------------------------------------------------------
# The check harness
# ---------------------------------------------------------------------------

#: Virtual seconds between oracle sweeps of the run loop.
CHUNK = 0.5


def _flight_on_failure(flight: FlightRecorder,
                       violations: List[Violation]) -> Optional[List[Dict]]:
    """Stamp the violations onto the flight tape and snapshot it — but only
    on failure; a clean run ships no tape."""
    if not violations:
        return None
    for v in violations:
        flight.note_violation(v.oracle, v.time, v.detail)
    return flight.snapshot()

DEFAULT_PARAMS = {
    "n_workers": 3,
    "total": 16,
    "step": 0.2,
    "duration": 60.0,
    "saturation": 3.0,
    "service_time": 0.05,
}


def run_check(
    scenario: str = "faults",
    seed: int = 1,
    bug: Optional[str] = None,
    plan: Optional[List[FaultEvent]] = None,
    explore: bool = True,
    n_workers: int = 3,
    total: int = 16,
    step: float = 0.2,
    duration: float = 60.0,
    saturation: float = 3.0,
    service_time: float = 0.05,
    obs_sample: Optional[float] = None,
) -> Dict:
    """One model-checking run; returns a report dict (``report["ok"]``).

    Builds the chaos star site, attaches the probe bus and all three
    oracles, runs the checkpointing workload under the seeded fault
    *plan* (sampled from the seed when not given) with tie-permutation
    *explore* enabled, and sweeps the oracles every :data:`CHUNK`
    virtual seconds. The run stops at the first violation — everything
    after it is noise for shrinking purposes.

    Violations are *recorded*, never raised: several components
    legitimately wrap their loops in broad ``except`` clauses, so an
    oracle exception could be swallowed at the point of detection. A
    process crash escaping the kernel (strict mode) is itself recorded
    as a ``process-crash`` violation.
    """
    if scenario not in ("faults", "overload", "bulk", "gray", "heal", "shard"):
        raise ValueError(f"unknown scenario {scenario!r}")
    with seeded_bug(bug):
        if scenario == "bulk":
            report = _run_bulk(seed, plan, explore, duration, obs_sample)
        elif scenario == "shard":
            report = _run_shard(seed, plan, explore, n_workers, duration,
                                obs_sample)
        else:
            report = _run(scenario, seed, plan, explore, n_workers, total, step,
                          duration, saturation, service_time, obs_sample)
    report["bug"] = bug
    report["params"] = {
        "n_workers": n_workers, "total": total, "step": step,
        "duration": duration, "saturation": saturation,
        "service_time": service_time, "obs_sample": obs_sample,
    }
    return report


def _run(scenario, seed, plan, explore, n_workers, total, step, duration,
         saturation, service_time, obs_sample=None):
    if scenario == "overload":
        def configure(sim):
            # Bounded server queues small enough that overload actually
            # bites (cf. run_overload); the adaptive controls stay on —
            # the oracles check safety, not the overload treatment.
            sim.overload.server_bulk_capacity = 128

        env, workers = build_chaos_env(
            seed, n_workers, rc_service_time=service_time, configure=configure
        )
    elif scenario == "heal":
        # Aggressive compaction, so the horizon provably moves while one
        # replica is cut off and anti-entropy must heal across it (via
        # gap-refusing batches and snapshot catch-up) rather than replay
        # a complete log.
        env, workers = build_chaos_env(seed, n_workers, rc_server_kw=dict(
            compact_interval=1.0, peer_stale_after=6.0, max_sync_records=32,
            snapshot_every=64, log_keep_tail=8))
    else:
        env, workers = build_chaos_env(seed, n_workers)
    sim = env.sim
    _instrument_sim(sim, None, obs_sample)

    if plan is None:
        plan = sample_fault_plan(scenario, seed, workers, horizon=duration * 0.5)

    bus = ProbeBus()
    sim.probes = bus
    flight = FlightRecorder(sim).attach(bus)
    convergence = ConvergenceOracle(sim)
    convergence.attach(env)
    bus.subscribe(convergence.on_probe)
    delivery = DeliveryOracle(sim)
    owner = SingleOwnerOracle(sim)
    chunks = ChunkOracle(sim)  # inert unless something moves bulk data
    corruption = CorruptionOracle(sim)
    bus.subscribe(delivery.on_probe)
    bus.subscribe(owner.on_probe)
    bus.subscribe(chunks.on_probe)
    bus.subscribe(corruption.on_probe)
    oracles = [convergence, delivery, owner, chunks, corruption]
    resurrection = compaction = None
    if scenario == "heal":
        # Attach order matters: ConvergenceOracle.attach *sets* the
        # stores' on_apply slot; these two chain onto it.
        resurrection = ResurrectionOracle(sim)
        resurrection.attach(env)
        compaction = CompactionOracle(sim)
        compaction.attach(env)
        oracles += [resurrection, compaction]
    if scenario == "gray":
        # Only gray plans promise every non-crashed host stays reachable
        # over *some* path; a full partition (faults scenario) makes a
        # lease-inferred death legitimate, so the oracle stays out there.
        spans = [(e.target, e.t, e.t + e.duration + 20.0)
                 for e in plan if e.kind == "crash"]
        falsedeath = FalseDeathOracle(
            sim, crashed=lambda h, t: any(
                h == c and a <= t <= b for c, a, b in spans),
        )
        bus.subscribe(falsedeath.on_probe)
        oracles.append(falsedeath)

    scheduler = ExplorationScheduler(seed) if explore else None
    if scheduler is not None:
        sim.set_scheduler(scheduler)

    acked: Dict[str, int] = {}
    coll_state = new_coll_state()
    install_chaos_programs(env, acked, coll_state)
    wstats = {"steps": 0, "send_failures": 0, "ckpt_failures": 0}
    if scenario == "overload":
        install_overload_worker(env, wstats)

    env.settle(2.0)
    coll = env.spawn(TaskSpec(program="chaos-collector", name="check-coll"), on="c0")
    program = "overload-worker" if scenario == "overload" else "chaos-worker"
    urns = []
    for i, w in enumerate(workers):
        spec = TaskSpec(
            program=program, arch="worker", name=f"check-w{i}",
            params={"total": total, "ckpt_every": 3,
                    "collector_urn": coll.urn, "step": step},
        )
        urns.append(env.spawn(spec, on=w).urn)

    if scenario == "overload":
        capacity = len(env.rc_replicas) / service_time
        start_load_generators(env, workers, saturation * capacity,
                              4.0, duration - 6.0)

    heal_tracked = None
    heal_end = 0.0
    if scenario == "heal":
        # Per-key write/delete load pinned to fixed replicas, with the
        # retirements (write-here/delete-there pairs) seeded *inside*
        # the split window so the tombstone and the stale live write
        # land on opposite sides of the cut.
        splits = [e for e in plan if e.kind == "split"]
        if splits:
            retire_window = (splits[0].t + 0.35 * splits[0].duration,
                             splits[0].t + 0.65 * splits[0].duration)
        else:  # a shrunk plan may have dropped the split entirely
            retire_window = (duration * 0.2, duration * 0.3)
        heal_end = duration * 0.55
        heal_tracked = start_heal_sessions(
            env, workers, 3.0, heal_end, n_keys=18, interval=0.35,
            value_pad=256, retire_frac=0.3, retire_window=retire_window)

    apply_fault_plan(env, plan)
    fault_end = max((e.t + e.duration for e in plan), default=0.0)

    violations: List[Violation] = []
    crashed = False

    def sweep() -> None:
        for oracle in oracles:
            violations.extend(oracle.violations)
            oracle.violations = []

    while sim.now < duration:
        try:
            env.run(until=min(sim.now + CHUNK, duration))
        except Exception as exc:  # strict mode: a component process died
            violations.append(Violation(
                "process-crash", sim.now, f"{type(exc).__name__}: {exc}"
            ))
            crashed = True
            break
        sweep()
        if violations:
            break
        if (scenario in ("faults", "gray", "heal")
                and len(coll_state["done"]) == len(urns)
                and sim.now > fault_end + 6.0
                and sim.now > heal_end + 6.0):
            break

    completed = sum(1 for u in urns if coll_state["done"].get(u) == total)
    if not violations and not crashed:
        try:
            env.settle(4.0)  # drain queues, let anti-entropy converge
        except Exception as exc:
            violations.append(Violation(
                "process-crash", sim.now, f"{type(exc).__name__}: {exc}"
            ))
        sweep()
        completed = sum(1 for u in urns if coll_state["done"].get(u) == total)
        if not violations and scenario in ("faults", "gray", "heal"):
            if completed == len(urns):
                convergence.check_quiescent(urns)
            else:
                violations.append(Violation(
                    "liveness", sim.now,
                    f"only {completed}/{len(urns)} workers completed within "
                    f"the {duration:.0f}s budget",
                ))
            sweep()
        if not violations and scenario == "heal":
            resurrection.check_quiescent()
            compaction.check_quiescent(prefix="snipe://heal/")
            for uri in sorted(heal_tracked["retired"]):
                holders = sorted(r for r, srv in env.rc_servers.items()
                                 if srv.store.lookup(uri))
                if holders:
                    violations.append(Violation(
                        "no-resurrection", sim.now,
                        f"retired key {uri} still visible on "
                        f"{', '.join(holders)} after its delete was "
                        f"acknowledged",
                    ))
            sweep()

    recoveries = sum(len(g.recoveries) for g in env.guardians.values())
    heal = None
    if heal_tracked is not None:
        heal = {
            "writes_ok": heal_tracked["writes_ok"],
            "writes_failed": heal_tracked["writes_failed"],
            "deletes_ok": heal_tracked["deletes_ok"],
            "deletes_failed": heal_tracked["deletes_failed"],
            "retired": len(heal_tracked["retired"]),
            "compactions": sum(
                s.store.compactions for s in env.rc_servers.values()),
            "tombstones_collected": sum(
                s.store.tombstones_collected for s in env.rc_servers.values()),
            "snapshot_catchups": sum(
                s.snapshot_catchups for s in env.rc_servers.values()),
        }
    return {
        "scenario": scenario,
        "seed": seed,
        "explore": explore,
        "plan": [e.to_dict() for e in plan],
        "violations": [v.to_dict() for v in violations],
        "flight": _flight_on_failure(flight, violations),
        "ok": not violations,
        "completed": completed,
        "workers": len(urns),
        "recoveries": recoveries,
        "delivered": delivery.delivered,
        "heal": heal,
        "schedule_picks": scheduler.picks if scheduler else 0,
        "schedule_reordered": scheduler.reordered if scheduler else 0,
        "finished_at": sim.now,
    }


def _run_shard(seed, plan, explore, n_workers, duration, obs_sample=None):
    """Model-check the sharded catalog: write/delete load through the
    facade forces splits while a core host crashes and a worker segment
    is cut, with the shard-ownership oracle judging every locally
    accepted record against the replica's own adopted map and the
    convergence oracle mirroring every replica (root and shard groups
    alike). At quiescence the final map must place every live name in
    exactly one group — in particular no name on both sides of a split
    boundary — with each group internally converged."""
    env, workers = build_shard_env(seed, n_workers=min(n_workers, 3),
                                   split_threshold=24)
    sim = env.sim
    mgr = env.shard_manager
    _instrument_sim(sim, None, obs_sample)

    bus = ProbeBus()
    sim.probes = bus
    flight = FlightRecorder(sim).attach(bus)
    convergence = ConvergenceOracle(sim)
    convergence.attach(env)
    bus.subscribe(convergence.on_probe)
    shard = ShardOracle(sim)
    shard.attach(env)
    bus.subscribe(shard.on_probe)
    oracles = [convergence, shard]

    scheduler = ExplorationScheduler(seed) if explore else None
    if scheduler is not None:
        sim.set_scheduler(scheduler)

    env.settle(2.0)
    fault_stop = duration * 0.5
    t1 = fault_stop + 10.0
    load = start_shard_sessions(
        env, workers, 3.0, t1, n_keys=48, interval=0.25,
        retire_window=(fault_stop * 0.5, fault_stop * 0.9))

    if plan is None:
        plan = sample_fault_plan("shard", seed, workers, horizon=duration * 0.5)
    apply_fault_plan(env, plan)

    violations: List[Violation] = []
    crashed = False

    def sweep() -> None:
        for oracle in oracles:
            violations.extend(oracle.violations)
            oracle.violations = []

    while sim.now < duration:
        try:
            env.run(until=min(sim.now + CHUNK, duration))
        except Exception as exc:  # strict mode: a component process died
            violations.append(Violation(
                "process-crash", sim.now, f"{type(exc).__name__}: {exc}"
            ))
            crashed = True
            break
        sweep()
        if violations:
            break

    if not violations and not crashed:
        try:
            env.settle(12.0)  # anti-entropy + handoff janitors drain
        except Exception as exc:
            violations.append(Violation(
                "process-crash", sim.now, f"{type(exc).__name__}: {exc}"
            ))
        sweep()
        if not violations:
            if mgr.splits < 1:
                violations.append(Violation(
                    "liveness", sim.now,
                    f"the load never forced a split (threshold 24, "
                    f"{load['writes_ok']} writes acked) — the scenario "
                    f"exercised no migration",
                ))
            shard.check_quiescent(mgr)
            sweep()

    return {
        "scenario": "shard",
        "seed": seed,
        "explore": explore,
        "plan": [e.to_dict() for e in plan],
        "violations": [v.to_dict() for v in violations],
        "flight": _flight_on_failure(flight, violations),
        "ok": not violations,
        "completed": len(load["retired"]),
        "workers": len(workers),
        "recoveries": 0,
        "delivered": load["writes_ok"],
        "splits": mgr.splits,
        "epoch": mgr.map.epoch,
        "shards": sorted(mgr.map.shards),
        "local_accepts": shard.local_accepts,
        "schedule_picks": scheduler.picks if scheduler else 0,
        "schedule_reordered": scheduler.reordered if scheduler else 0,
        "finished_at": sim.now,
    }


def _run_bulk(seed, plan, explore, duration, obs_sample=None):
    """Model-check the bulk data plane: a relay-tree distribution under
    crashing fetchers and one poisoned source, with the chunk-integrity
    oracle watching every commit.

    The poisoner corrupts one chunk in the first relay's store the
    instant that relay commits it (synchronously, from the probe), so
    every run exercises the per-chunk verification path: a correct
    fetcher quarantines the poisoned source and re-pulls the chunk from
    a clean one; under the seeded ``no-chunk-verify`` bug the corrupt
    bytes are committed and the oracle flags the commit."""
    from repro.bulk.testbed import build_bulk_site, make_payload

    chunk_size = 16384
    object_kb = 512
    env, root, dests = build_bulk_site(seed=seed, racks=2, per_rack=3)
    sim = env.sim
    _instrument_sim(sim, None, obs_sample)

    bus = ProbeBus()
    sim.probes = bus
    flight = FlightRecorder(sim).attach(bus)
    chunks = ChunkOracle(sim)
    bus.subscribe(chunks.on_probe)

    # Poison the first fetched commit, synchronously at commit time —
    # before the committing host can have served that chunk onward.
    poisoned = {}

    def poisoner(kind, f):
        if kind != "bulk.chunk" or poisoned:
            return
        svc = env.bulk_services.get(f["host"])
        if svc is None:
            return
        data = svc.store.get(f["name"], f["seq"])
        svc.store._chunks[f["name"]][f["seq"]] = b"\x00poison\x00" + data[8:]
        poisoned[(f["host"], f["seq"])] = sim.now

    bus.subscribe(poisoner)

    scheduler = ExplorationScheduler(seed) if explore else None
    if scheduler is not None:
        sim.set_scheduler(scheduler)

    if plan is None:
        plan = sample_fault_plan("bulk", seed, dests, horizon=duration * 0.5)
    apply_fault_plan(env, plan)

    payload = make_payload(object_kb * 1024, chunk_size)
    dist = env.bulk_distributor(root)
    proc = dist.distribute("check-obj", payload, dests,
                           chunk_size=chunk_size, strategy="tree",
                           deadline=duration)

    violations: List[Violation] = []
    crashed = False
    report = None
    while sim.now < duration:
        try:
            env.run(until=min(sim.now + CHUNK, duration))
        except Exception as exc:  # strict mode: a component process died
            violations.append(Violation(
                "process-crash", sim.now, f"{type(exc).__name__}: {exc}"
            ))
            crashed = True
            break
        violations.extend(chunks.violations)
        chunks.violations = []
        if violations:
            break
        if proc.triggered:
            report = proc.value
            break
    if report is None and proc.triggered and proc.ok:
        report = proc.value

    completed = report["completed"] if report else 0
    if not violations and not crashed:
        if report is None:
            violations.append(Violation(
                "liveness", sim.now,
                f"distribution did not finish within the "
                f"{duration:.0f}s budget",
            ))
        elif report["completed"] != len(dests):
            violations.append(Violation(
                "liveness", sim.now,
                f"only {report['completed']}/{len(dests)} hosts completed "
                f"(failed: {report['failed']})",
            ))
        elif not report["all_verified"]:
            violations.append(Violation(
                "chunk-integrity", sim.now,
                "a completed host's whole-object hash did not verify",
            ))
        violations.extend(chunks.violations)
        chunks.violations = []

    crashes = sum(
        r.get("crashes", 0) for r in (report or {}).get("per_dest", {}).values()
    )
    return {
        "scenario": "bulk",
        "seed": seed,
        "explore": explore,
        "plan": [e.to_dict() for e in plan],
        "violations": [v.to_dict() for v in violations],
        "flight": _flight_on_failure(flight, violations),
        "ok": not violations,
        "completed": completed,
        "workers": len(dests),
        "recoveries": crashes,
        "delivered": chunks.committed,
        "poisoned": sorted(f"{h}#{s}" for h, s in poisoned),
        "chunk_retries": report["chunk_retries"] if report else 0,
        "schedule_picks": scheduler.picks if scheduler else 0,
        "schedule_reordered": scheduler.reordered if scheduler else 0,
        "finished_at": sim.now,
    }
