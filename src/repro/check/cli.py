"""``python -m repro check`` — model-check the simulated site.

Subcommands:

* ``run`` — one check run: seeded fault plan + explored schedule +
  continuous oracles. ``--bug NAME`` disables a safety mechanism to
  prove the oracles catch it. On violation the failing run is shrunk
  (``--no-shrink`` to skip) and a minimized trace is written.
* ``sweep`` — seeds 1..N (``--seeds N``) of a scenario; first
  violation is shrunk, written as a trace, and fails the sweep.
* ``replay TRACE`` — re-run a trace file; exit 0 if the violation
  reproduces, 2 if it does not.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.check.explore import BUGS, DEFAULT_PARAMS, FaultEvent, run_check
from repro.check.shrink import load_trace, minimize, replay_trace, write_trace


def _add_run_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scenario",
                   choices=("faults", "overload", "bulk", "gray", "heal",
                            "shard"),
                   default="faults",
                   help="faults: crash/partition chaos (default); "
                        "overload: saturation + degradation, no crashes; "
                        "bulk: relay-tree distribution with a poisoned "
                        "source and crashing fetchers; "
                        "gray: asymmetric cuts, lossy/corrupting links, "
                        "clock skew, zombie hosts — nothing fail-stop; "
                        "heal: a replica partitioned past the compaction "
                        "horizon under write/delete load, then healed; "
                        "shard: federated catalog splitting under load "
                        "with crashes and cuts racing the migration")
    p.add_argument("--workers", type=int, default=DEFAULT_PARAMS["n_workers"],
                   help=f"worker hosts (default {DEFAULT_PARAMS['n_workers']})")
    p.add_argument("--steps", type=int, default=DEFAULT_PARAMS["total"],
                   help=f"work units per task (default {DEFAULT_PARAMS['total']})")
    p.add_argument("--duration", type=float, default=DEFAULT_PARAMS["duration"],
                   help="simulated-seconds budget per run "
                        f"(default {DEFAULT_PARAMS['duration']:.0f})")
    p.add_argument("--no-explore", action="store_true",
                   help="keep the kernel's FIFO tie-breaking (fault timing "
                        "is still the seeded plan)")
    p.add_argument("--bug", choices=sorted(BUGS), default=None,
                   help="deliberately disable a safety mechanism: "
                        + "; ".join(f"{k} = {v}" for k, v in sorted(BUGS.items())))
    p.add_argument("--no-shrink", action="store_true",
                   help="on violation, skip minimization")
    p.add_argument("--trace", default=None,
                   help="where to write the minimized failing trace "
                        "(default: check-<scenario>-seed<N>.json)")
    p.add_argument("--obs-sample", type=float, default=None, metavar="RATE",
                   help="enable tracing at this sampling rate (1.0 = every "
                        "record, 0.01 = 1-in-100; default: tracing off)")


def _params(args) -> dict:
    return {
        "n_workers": args.workers,
        "total": args.steps,
        "step": DEFAULT_PARAMS["step"],
        "duration": args.duration,
        "saturation": DEFAULT_PARAMS["saturation"],
        "service_time": DEFAULT_PARAMS["service_time"],
        "obs_sample": args.obs_sample,
    }


def _describe(report: dict) -> str:
    extra = (f" reorders={report['schedule_reordered']}"
             if report["explore"] else " (FIFO schedule)")
    if report.get("scenario") == "shard":
        return (f"splits={report['splits']} epoch={report['epoch']} "
                f"shards={len(report['shards'])} writes={report['delivered']} "
                f"retired={report['completed']}{extra} "
                f"t={report['finished_at']:.1f}s")
    return (f"completed={report['completed']}/{report['workers']} "
            f"recoveries={report['recoveries']} delivered={report['delivered']}"
            f"{extra} t={report['finished_at']:.1f}s")


def _handle_failure(report: dict, args, params: dict) -> None:
    """Print the violation, shrink it, write the trace."""
    for v in report["violations"]:
        print(f"  VIOLATION [{v['oracle']}] t={v['time']:.3f}s: {v['detail']}")
    plan = [FaultEvent.from_dict(d) for d in report["plan"]]
    if args.no_shrink:
        final = report
    else:
        shrunk = minimize(report["scenario"], report["seed"], report.get("bug"),
                          plan, explore=report["explore"], params=params,
                          log=lambda msg: print(f"  {msg}"))
        final = shrunk["report"]
        print(f"  minimized to {len(shrunk['plan'])} fault event(s) "
              f"in {shrunk['runs']} runs:")
        for ev in shrunk["plan"]:
            print(f"    {ev}")
    path = args.trace or f"check-{report['scenario']}-seed{report['seed']}.json"
    write_trace(path, final)
    print(f"  trace written: {path} (python -m repro check replay {path})")
    flight = final.get("flight") or report.get("flight")
    if flight:
        from os.path import splitext

        from repro.obs.flight import dump_flight_records

        fpath = splitext(path)[0] + ".flight.jsonl"
        n = dump_flight_records(fpath, flight)
        print(f"  flight recorder: {n} records dumped to {fpath}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro check",
                                     description=__doc__.split("\n")[0])
    sub = parser.add_subparsers(dest="cmd", required=True)
    p_run = sub.add_parser("run", help="one model-checking run")
    p_run.add_argument("--seed", type=int, default=1)
    _add_run_args(p_run)
    p_sweep = sub.add_parser("sweep", help="check seeds 1..N")
    p_sweep.add_argument("--seeds", type=int, default=25,
                         help="number of seeds to run (1..N, default 25)")
    _add_run_args(p_sweep)
    p_replay = sub.add_parser("replay", help="re-run a minimized trace")
    p_replay.add_argument("trace", help="trace file from run/sweep")
    args = parser.parse_args(argv)

    if args.cmd == "replay":
        trace = load_trace(args.trace)
        expected = trace.get("violations") or []
        print(f"replaying {args.trace}: scenario={trace['scenario']} "
              f"seed={trace['seed']} bug={trace.get('bug')} "
              f"explore={trace['explore']} "
              f"plan={len(trace['plan'])} event(s)")
        report = replay_trace(trace)
        for v in report["violations"]:
            print(f"  VIOLATION [{v['oracle']}] t={v['time']:.3f}s: {v['detail']}")
        if report["ok"]:
            print("NOT REPRODUCED: the trace ran clean")
            return 2
        if expected and report["violations"][0]["oracle"] != expected[0]["oracle"]:
            print(f"REPRODUCED (different oracle: recorded "
                  f"{expected[0]['oracle']}, got "
                  f"{report['violations'][0]['oracle']})")
        else:
            print("REPRODUCED")
        return 0

    params = _params(args)
    if args.cmd == "run":
        report = run_check(scenario=args.scenario, seed=args.seed, bug=args.bug,
                           explore=not args.no_explore, **params)
        status = "OK  " if report["ok"] else "FAIL"
        print(f"seed {args.seed:4d}: {status} {_describe(report)}")
        if not report["ok"]:
            _handle_failure(report, args, params)
            return 1
        return 0

    # sweep: seeds 1..N, stop at the first violation
    for seed in range(1, args.seeds + 1):
        report = run_check(scenario=args.scenario, seed=seed, bug=args.bug,
                           explore=not args.no_explore, **params)
        status = "OK  " if report["ok"] else "FAIL"
        print(f"seed {seed:4d}: {status} {_describe(report)}")
        if not report["ok"]:
            _handle_failure(report, args, params)
            print(f"sweep FAILED at seed {seed}/{args.seeds}")
            return 1
    print(f"sweep OK: {args.seeds} seeds, scenario={args.scenario}, "
          f"no violations")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
