"""Reference-model oracles, checked continuously through the probe bus.

Instrumented components (contexts, guardians, catalog stores) emit
semantic events on ``sim.probes``; each oracle folds those events into a
small reference model and records a :class:`Violation` the moment the
implementation disagrees with the model — *at the step it happens*, not
at quiescence, so a shrunk trace points at the divergent event rather
than at its downstream wreckage.

Probe vocabulary (emitted only when ``sim.probes`` is set):

========================  ====================================================
``ctx.start``             a :class:`~repro.core.process.SnipeContext` came up
                          (``urn, inc, host, info``)
``ctx.send``              an envelope was assigned its stream sequence number
                          (``src, inc, dst, seq, tag``)
``ctx.deliver``           an envelope was admitted to the application
                          (``dst, dst_inc, src, src_inc, seq, tag``)
``guardian.fence``        a ``fenced-below`` quorum write succeeded
                          (``urn, fence``)
``bulk.map``              a chunk map was sealed at the seeding host
                          (``name, size, chunk_size, digests, hash``)
``bulk.chunk``            a fetched chunk was committed to a chunk store
                          (``host, name, seq, digest, source``)
``bulk.evict``            a corrupt chunk was evicted for refetch
                          (``host, name, seq``)
``bulk.complete``         a host reassembled and verified a whole object
                          (``host, name, hash``)
========================  ====================================================

plus the per-replica :attr:`repro.rcds.records.RCStore.on_apply` hook,
which the convergence oracle uses instead of a probe (it needs the
replica identity and the store itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.daemon.tasks import TaskState


@dataclass
class Violation:
    """One oracle/model disagreement, timestamped in virtual time."""

    oracle: str
    time: float
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {"oracle": self.oracle, "time": self.time, "detail": self.detail}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.oracle}] t={self.time:.3f}s {self.detail}"


class ProbeBus:
    """Fan-out for semantic probe events (``sim.probes``).

    Deliberately minimal: subscribers are called synchronously, in
    subscription order, from inside the emitting component. Oracle
    callbacks must therefore be O(1) and must never raise — they record
    violations instead (an exception here would surface inside an
    unrelated component's ``except`` clause and be swallowed or
    misattributed).
    """

    __slots__ = ("_subs",)

    def __init__(self) -> None:
        self._subs: List[Callable[[str, Dict[str, Any]], None]] = []

    def subscribe(self, fn: Callable[[str, Dict[str, Any]], None]) -> None:
        self._subs.append(fn)

    def emit(self, kind: str, **fields: Any) -> None:
        for fn in self._subs:
            fn(kind, fields)


# ---------------------------------------------------------------------------
# LWW reference model (shared with the property tests)
# ---------------------------------------------------------------------------

def lww_merge(a, b):
    """Winner of two catalog entries under last-writer-wins.

    Entries are anything with a ``stamp()`` ordering key (see
    :meth:`repro.rcds.records.Entry.stamp`). This two-line function *is*
    the specification the replicas must agree with: it is commutative
    (up to stamp ties, which unequal origins make impossible),
    associative, and idempotent — the property tests in
    ``tests/rcds/test_lww_properties.py`` verify exactly that, so the
    oracle below rests on a checked foundation.
    """
    return a if a.stamp() >= b.stamp() else b


class LwwMap:
    """Reference model of a replica: (uri, key) -> LWW-winning entry.

    Folding any permutation of the same entry set through ``apply``
    yields the same map — that is the convergence argument, and the
    property the real :class:`~repro.rcds.records.RCStore` must match.
    """

    def __init__(self) -> None:
        self.regs: Dict[Tuple[str, str], Any] = {}

    def apply(self, uri: str, key: str, entry) -> Any:
        """Fold one entry in; returns the register's winning entry."""
        cur = self.regs.get((uri, key))
        win = entry if cur is None else lww_merge(cur, entry)
        self.regs[(uri, key)] = win
        return win

    def get(self, uri: str, key: str) -> Optional[Any]:
        return self.regs.get((uri, key))

    def visible(self) -> Dict[Tuple[str, str], Any]:
        """Non-tombstoned register values (for whole-map comparisons)."""
        return {
            rk: e.value for rk, e in self.regs.items() if not getattr(e, "deleted", False)
        }


class ConvergenceOracle:
    """Each catalog replica must equal the LWW fold of what it applied.

    A :class:`LwwMap` mirror shadows every replica through the store's
    ``on_apply`` hook; after each applied record the replica's register
    must hold the same winner as the mirror (O(1) per apply). Any
    apply-order dependence — e.g. the seeded ``no-lww`` bug, where a
    replica blindly overwrites — diverges at the exact record that
    exposes it.

    :meth:`check_quiescent` adds the cross-replica half at the end of a
    run: once anti-entropy has settled, every replica must report the
    same (terminal) state for every workload task.

    Subscribe :meth:`on_probe` when the scenario crashes hosts carrying
    replicas: a durable server wipes its store on crash and rebuilds it
    from snapshot + journal on recovery (``rcds.wipe`` probe), so the
    mirror must forget its pre-crash history along with the store or
    every replayed record looks like a LWW regression.
    """

    name = "lww-convergence"

    def __init__(self, sim) -> None:
        self.sim = sim
        self.violations: List[Violation] = []
        self.mirrors: Dict[str, LwwMap] = {}
        self._stores: Dict[str, Any] = {}

    def attach(self, env) -> None:
        """Hook every RC replica in *env* (call before the workload).

        Uses ``env.all_rc_servers()`` when available, so on a sharded
        site every shard group's replicas are mirrored too, not just the
        root directory group. Hooks are *chained* onto ``on_apply``
        rather than set — a shard replica already watches its own slot
        to flag misplaced names for the handoff janitor."""
        servers = (env.all_rc_servers() if hasattr(env, "all_rc_servers")
                   else dict(env.rc_servers))
        for name, server in servers.items():
            self._stores[name] = server.store
            mirror = self.mirrors[name] = LwwMap()
            chain_on_apply(server.store, self._hook(name, server.store, mirror))

    def on_probe(self, kind: str, f: Dict[str, Any]) -> None:
        if kind != "rcds.wipe":
            return
        mirror = self.mirrors.get(f["server"])
        if mirror is not None:
            mirror.regs.clear()  # in place: the apply hooks close over it

    def _hook(self, replica: str, store, mirror: LwwMap):
        def on_apply(uri: str, key: str, entry) -> None:
            model = mirror.apply(uri, key, entry)
            actual = store.data.get(uri, {}).get(key)
            if actual is None or actual.stamp() != model.stamp():
                self.violations.append(Violation(
                    self.name, self.sim.now,
                    f"replica {replica} holds stamp "
                    f"{None if actual is None else actual.stamp()} for "
                    f"({uri!r}, {key!r}) but the LWW fold of its applied "
                    f"entries wins with {model.stamp()}",
                ))

        return on_apply

    def check_quiescent(self, urns: List[str]) -> None:
        """After settle: replicas agree on a terminal state per task."""
        for urn in urns:
            states = {
                replica: store.get(urn, "state")
                for replica, store in self._stores.items()
            }
            values = set(states.values())
            if len(values) != 1:
                self.violations.append(Violation(
                    self.name, self.sim.now,
                    f"replicas disagree on {urn} state at quiescence: {states}",
                ))
            elif not values <= TaskState.TERMINAL:
                self.violations.append(Violation(
                    self.name, self.sim.now,
                    f"{urn} not terminal at quiescence: {states}",
                ))


# ---------------------------------------------------------------------------
# Replication-state oracles (tombstone GC / log compaction)
# ---------------------------------------------------------------------------

def chain_on_apply(store, fn: Callable[[str, str, Any], None]) -> None:
    """Add *fn* to a store's ``on_apply`` without displacing an oracle
    already hooked there (the hook is a single slot, not a list)."""
    prev = store.on_apply
    if prev is None:
        store.on_apply = fn
    else:
        def chained(uri: str, key: str, entry) -> None:
            prev(uri, key, entry)
            fn(uri, key, entry)

        store.on_apply = chained


def chain_on_record(store, fn: Callable[[Any], None]) -> None:
    """Same as :func:`chain_on_apply` for the ``on_record`` log hook."""
    prev = store.on_record
    if prev is None:
        store.on_record = fn
    else:
        def chained(record) -> None:
            prev(record)
            fn(record)

        store.on_record = chained


class ResurrectionOracle:
    """A deleted key must never come back older than its tombstone.

    Per replica, the oracle remembers the newest tombstone stamp it has
    seen applied for each (uri, key). From then on, that replica's
    visible register for the key may only be a *live* entry if its stamp
    beats the tombstone — an older live entry winning means the
    tombstone was garbage-collected before every peer acked past it
    (the seeded ``early-gc`` bug), letting a partitioned peer's stale
    pre-delete write resurrect the key on heal.
    """

    name = "no-resurrection"

    def __init__(self, sim) -> None:
        self.sim = sim
        self.violations: List[Violation] = []
        self._stores: Dict[str, Any] = {}
        #: (replica, uri, key) -> newest applied tombstone stamp.
        self._tombs: Dict[Tuple[str, str, str], Tuple] = {}

    def attach(self, env) -> None:
        for host_name, server in env.rc_servers.items():
            self._stores[host_name] = server.store
            chain_on_apply(server.store, self._hook(host_name, server.store))

    def _hook(self, replica: str, store):
        def on_apply(uri: str, key: str, entry) -> None:
            slot = (replica, uri, key)
            if entry.deleted:
                tomb = self._tombs.get(slot)
                if tomb is None or entry.stamp() > tomb:
                    self._tombs[slot] = entry.stamp()
                return
            tomb = self._tombs.get(slot)
            if tomb is None:
                return
            current = store.data.get(uri, {}).get(key)
            if (current is not None and not current.deleted
                    and current.stamp() < tomb):
                self.violations.append(Violation(
                    self.name, self.sim.now,
                    f"replica {replica} resurrected ({uri!r}, {key!r}): "
                    f"live entry stamp {current.stamp()} predates its "
                    f"applied tombstone {tomb} — the tombstone was "
                    f"collected before every peer acked past it",
                ))

        return on_apply

    def check_quiescent(self) -> None:
        """Re-verify every remembered tombstone against the final state."""
        for (replica, uri, key), tomb in self._tombs.items():
            store = self._stores.get(replica)
            if store is None:
                continue
            current = store.data.get(uri, {}).get(key)
            if (current is not None and not current.deleted
                    and current.stamp() < tomb):
                self.violations.append(Violation(
                    self.name, self.sim.now,
                    f"at quiescence replica {replica} shows ({uri!r}, "
                    f"{key!r}) live at stamp {current.stamp()}, older than "
                    f"its tombstone {tomb}",
                ))


class CompactionOracle:
    """The version vector must never outrun contiguous knowledge.

    ``vector[origin] == n`` is a promise that records ``1..n`` from that
    origin were all applied here (directly, or summarized by a snapshot
    whose compaction horizon covers them). The oracle replays that
    definition: it tracks every record entering each replica's log via
    ``on_record``, maintains the contiguous watermark over
    ``max(compacted horizon, seen seqs)``, and flags the first apply
    that leaves the vector past the watermark — the seeded
    ``vector-gap`` bug, where a gapped anti-entropy batch silently
    advances the vector so the skipped records are never requested.

    :meth:`check_quiescent` adds the cross-replica half: once the run
    settles, every replica must hold the identical visible state for the
    checked prefix — compaction and snapshot catch-up must be invisible
    to convergence.
    """

    name = "compaction-convergence"

    def __init__(self, sim) -> None:
        self.sim = sim
        self.violations: List[Violation] = []
        self._stores: Dict[str, Any] = {}
        self._pending: Dict[Tuple[str, str], Set[int]] = {}
        self._water: Dict[Tuple[str, str], int] = {}

    def attach(self, env) -> None:
        for host_name, server in env.rc_servers.items():
            self._stores[host_name] = server.store
            chain_on_record(server.store, self._on_record(host_name))
            chain_on_apply(server.store, self._on_apply(host_name, server.store))

    def _on_record(self, replica: str):
        def on_record(record) -> None:
            self._pending.setdefault((replica, record.origin), set()).add(record.seq)

        return on_record

    def _advance(self, slot: Tuple[str, str], base: int) -> int:
        water = max(self._water.get(slot, 0), base)
        pending = self._pending.get(slot, ())
        while water + 1 in pending:
            water += 1
        self._water[slot] = water
        return water

    def _on_apply(self, replica: str, store):
        def on_apply(uri: str, key: str, entry) -> None:
            origin = entry.origin
            slot = (replica, origin)
            water = self._advance(slot, store.compacted.get(origin, 0))
            vec = store.vector.get(origin, 0)
            if vec > water:
                self.violations.append(Violation(
                    self.name, self.sim.now,
                    f"replica {replica} advanced vector[{origin!r}] to "
                    f"{vec} but its contiguous knowledge ends at {water} "
                    f"— a gapped batch bumped the vector past records it "
                    f"never applied",
                ))

        return on_apply

    def check_quiescent(self, prefix: str = "") -> None:
        """After settle: identical visible registers on every replica."""
        snaps = {}
        for replica, store in self._stores.items():
            snaps[replica] = {
                (uri, key): entry.stamp()
                for uri, bucket in store.data.items() if uri.startswith(prefix)
                for key, entry in bucket.items() if not entry.deleted
            }
        if len(set(map(frozenset, (s.items() for s in snaps.values())))) > 1:
            keys = set()
            for s in snaps.values():
                keys |= set(s)
            diffs = [
                f"{k}: " + ", ".join(
                    f"{r}={s.get(k)}" for r, s in sorted(snaps.items()))
                for k in sorted(keys)
                if len({s.get(k) for s in snaps.values()}) > 1
            ]
            self.violations.append(Violation(
                self.name, self.sim.now,
                "replicas diverge at quiescence despite compaction-safe "
                f"anti-entropy: {'; '.join(diffs[:5])}"
                + (f" (+{len(diffs) - 5} more)" if len(diffs) > 5 else ""),
            ))


# ---------------------------------------------------------------------------
# Message-delivery oracle
# ---------------------------------------------------------------------------

class DeliveryOracle:
    """Exactly-once, per-stream FIFO, no ghost messages, no zombie talk.

    A *stream* is (src urn, src incarnation, dst urn, dst incarnation):
    sender restarts start a new sequence space, and a receiver restarted
    from a checkpoint legitimately re-syncs onto live streams, so both
    incarnations are part of the stream identity. Within one stream,
    deliveries must be contiguous ascending after the first (the sync
    point); across streams, a receiver incarnation must never accept
    from a source incarnation older than one it already heard
    (incarnation regression = a fenced zombie's straggler got through).

    Group fan-out envelopes carry ``seq == 0`` and are outside the
    point-to-point guarantee; they are ignored.
    """

    name = "delivery"

    def __init__(self, sim) -> None:
        self.sim = sim
        self.violations: List[Violation] = []
        #: (src, src_inc, dst) -> sequence numbers actually sent.
        self.sent: Dict[Tuple[str, int, str], Set[int]] = {}
        #: stream -> last delivered sequence number.
        self.cursor: Dict[Tuple[str, int, str, int], int] = {}
        #: (dst, dst_inc, src) -> highest src incarnation delivered.
        self.max_src_inc: Dict[Tuple[str, int, str], int] = {}
        self.delivered = 0

    def on_probe(self, kind: str, f: Dict[str, Any]) -> None:
        if kind == "ctx.send":
            self.sent.setdefault((f["src"], f["inc"], f["dst"]), set()).add(f["seq"])
        elif kind == "ctx.deliver":
            self._on_deliver(f)

    def _on_deliver(self, f: Dict[str, Any]) -> None:
        src, src_inc = f["src"], f["src_inc"]
        dst, dst_inc, seq = f["dst"], f["dst_inc"], f["seq"]
        if seq == 0:
            return  # group fan-out: not a point-to-point stream
        self.delivered += 1
        if seq not in self.sent.get((src, src_inc, dst), ()):
            self.violations.append(Violation(
                self.name, self.sim.now,
                f"{dst} (inc {dst_inc}) delivered seq {seq} from {src} "
                f"(inc {src_inc}) which that incarnation never sent",
            ))
            return
        ik = (dst, dst_inc, src)
        high = self.max_src_inc.get(ik, 0)
        if src_inc < high:
            self.violations.append(Violation(
                self.name, self.sim.now,
                f"incarnation regression at {dst} (inc {dst_inc}): accepted "
                f"{src} inc {src_inc} after already hearing inc {high} — "
                f"a fenced zombie's message was admitted",
            ))
            return
        self.max_src_inc[ik] = src_inc
        stream = (src, src_inc, dst, dst_inc)
        last = self.cursor.get(stream)
        if last is not None and seq != last + 1:
            what = "duplicate of" if seq <= last else "gap before"
            self.violations.append(Violation(
                self.name, self.sim.now,
                f"stream {src}#{src_inc} -> {dst}#{dst_inc}: delivered seq "
                f"{seq} after {last} ({what} the FIFO cursor)",
            ))
        self.cursor[stream] = seq if last is None else max(last, seq)


# ---------------------------------------------------------------------------
# Single-owner (Guardian restart) oracle
# ---------------------------------------------------------------------------

class SingleOwnerOracle:
    """Never two live incarnations of one URN with the older unfenced.

    Whenever a context starts as incarnation *N* of a URN, every older
    incarnation that is still running must already be fence-covered: a
    successful ``fenced-below`` quorum write with fence > its
    incarnation (the zombie will then terminate itself and receivers
    will drop its stragglers — that *is* single ownership in an
    asynchronous system; killing the zombie instantaneously is
    impossible). An *equal* incarnation is a live-migration handoff
    (the URN and incarnation move together) and is legitimate overlap.
    An older incarnation on the *same host* as the newcomer is also
    covered: the shared daemon fences it synchronously during spawn.

    This is the oracle that catches the seeded ``no-fence-write`` bug:
    a Guardian that respawns without fencing leaves a merely-partitioned
    original running unfenced next to its successor.
    """

    name = "single-owner"

    def __init__(self, sim) -> None:
        self.sim = sim
        self.violations: List[Violation] = []
        #: urn -> [(incarnation, TaskInfo)] for every context ever started.
        self.instances: Dict[str, List[Tuple[int, Any]]] = {}
        #: urn -> highest fence successfully quorum-written.
        self.fences: Dict[str, int] = {}

    def on_probe(self, kind: str, f: Dict[str, Any]) -> None:
        if kind == "guardian.fence":
            urn = f["urn"]
            self.fences[urn] = max(self.fences.get(urn, 0), f["fence"])
        elif kind == "ctx.start":
            self._on_start(f)

    def _on_start(self, f: Dict[str, Any]) -> None:
        urn, inc, info = f["urn"], f["inc"], f["info"]
        fence = self.fences.get(urn, 0)
        for old_inc, old_info in self.instances.get(urn, []):
            if old_inc >= inc:
                continue  # equal = migration handoff; newer = stale probe order
            # The TaskInfo reference is live: the owning daemon mutates
            # its state in place, so this reads the zombie's state *now*.
            if old_info.state in TaskState.TERMINAL or old_info.fenced:
                continue
            if fence > old_inc:
                continue  # covered: the old incarnation is fenced below
            if old_info.host == f["host"]:
                # Same daemon: spawn() fences a stale non-terminal task of
                # the same URN synchronously in _launch(), with no yield
                # between this probe and the fence (see
                # SnipeDaemon._launch). A duplicate spawn landing on the
                # host that still runs the old incarnation is therefore
                # resolved locally, without a quorum fence write.
                continue
            self.violations.append(Violation(
                self.name, self.sim.now,
                f"{urn} started incarnation {inc} on {f['host']} while "
                f"incarnation {old_inc} is still {old_info.state} on "
                f"{old_info.host} and unfenced (fence={fence}) — "
                f"two live owners of one URN",
            ))
        self.instances.setdefault(urn, []).append((inc, info))

# ---------------------------------------------------------------------------
# Bulk chunk-integrity oracle
# ---------------------------------------------------------------------------

class ChunkOracle:
    """Every committed chunk matches the signed chunk map, exactly once.

    Folds the ``bulk.map`` / ``bulk.chunk`` / ``bulk.complete`` probes
    from the bulk data plane into a reference model of what each host's
    chunk store may legally contain:

    * a chunk commit must reference a published map, an in-range
      sequence number, and carry that sequence's digest from the map —
      a disagreement means corrupt bytes were committed;
    * ``(host, object, seq)`` commits at most once — the chunk store
      deduplicates, so a second commit is a double-apply;
    * a completion claim requires every chunk committed at that host
      and a reassembled hash equal to the map's whole-object hash.

    This is the oracle that catches the seeded ``no-chunk-verify``
    bug: with per-chunk digest verification disabled, a poisoned
    source's bytes are committed and the commit's digest disagrees
    with the chunk map at the moment it happens.
    """

    name = "chunk-integrity"

    def __init__(self, sim) -> None:
        self.sim = sim
        self.violations: List[Violation] = []
        #: object name -> (digests tuple, whole-object hash).
        self.maps: Dict[str, Tuple[tuple, str]] = {}
        #: (host, object name) -> committed sequence numbers.
        self.commits: Dict[Tuple[str, str], Set[int]] = {}
        self.committed = 0
        self.completions = 0

    def on_probe(self, kind: str, f: Dict[str, Any]) -> None:
        if kind == "bulk.map":
            self._on_map(f)
        elif kind == "bulk.chunk":
            self._on_chunk(f)
        elif kind == "bulk.evict":
            # Corruption recovery legitimately re-commits an evicted
            # chunk; only a commit with no intervening evict is a dup.
            self.commits.get((f["host"], f["name"]), set()).discard(f["seq"])
        elif kind == "bulk.complete":
            self._on_complete(f)

    def _on_map(self, f: Dict[str, Any]) -> None:
        name = f["name"]
        entry = (tuple(f["digests"]), f["hash"])
        if name in self.maps and self.maps[name] != entry:
            self.violations.append(Violation(
                self.name, self.sim.now,
                f"chunk map for {name!r} re-published with different "
                f"content — immutable-map invariant broken",
            ))
            return
        self.maps[name] = entry

    def _on_chunk(self, f: Dict[str, Any]) -> None:
        host, name, seq = f["host"], f["name"], f["seq"]
        self.committed += 1
        entry = self.maps.get(name)
        if entry is None:
            self.violations.append(Violation(
                self.name, self.sim.now,
                f"{host} committed chunk {seq} of {name!r} with no "
                f"published chunk map",
            ))
            return
        digests, _ = entry
        if not 0 <= seq < len(digests):
            self.violations.append(Violation(
                self.name, self.sim.now,
                f"{host} committed out-of-range chunk {seq} of {name!r} "
                f"(map has {len(digests)} chunks)",
            ))
            return
        if f["digest"] != digests[seq]:
            self.violations.append(Violation(
                self.name, self.sim.now,
                f"{host} committed chunk {seq} of {name!r} from "
                f"{f['source']} whose digest disagrees with the chunk "
                f"map — corrupt bytes committed",
            ))
            return
        seen = self.commits.setdefault((host, name), set())
        if seq in seen:
            self.violations.append(Violation(
                self.name, self.sim.now,
                f"{host} committed chunk {seq} of {name!r} twice — "
                f"exactly-once-per-chunk broken",
            ))
            return
        seen.add(seq)

    def _on_complete(self, f: Dict[str, Any]) -> None:
        host, name = f["host"], f["name"]
        self.completions += 1
        entry = self.maps.get(name)
        if entry is None:
            self.violations.append(Violation(
                self.name, self.sim.now,
                f"{host} claims completion of {name!r} with no "
                f"published chunk map",
            ))
            return
        digests, whole = entry
        got = self.commits.get((host, name), set())
        missing = set(range(len(digests))) - got
        if missing:
            self.violations.append(Violation(
                self.name, self.sim.now,
                f"{host} claims completion of {name!r} with "
                f"{len(missing)} chunk(s) never committed "
                f"(e.g. seq {min(missing)})",
            ))
            return
        if f["hash"] != whole:
            self.violations.append(Violation(
                self.name, self.sim.now,
                f"{host} completed {name!r} but the reassembled hash "
                f"disagrees with the chunk map's whole-object hash",
            ))


# ---------------------------------------------------------------------------
# Gray-failure oracles
# ---------------------------------------------------------------------------

class CorruptionOracle:
    """No corrupted payload is ever delivered to an application.

    The injector flips bits on the wire (``Frame.corrupt``); a digest-
    verifying receiver detects the mismatch, drops the fragment and lets
    the sender retransmit. If a corrupted message nonetheless reassembles
    and is handed up, the transport emits ``srudp.corrupt_deliver`` —
    ground truth straight from the frame's taint bit, independent of any
    digest check. Every such probe is a violation.

    This is the oracle that catches the seeded ``no-digest`` bug: with
    digest stamping disabled, corrupt fragments reassemble silently and
    applications consume garbage.
    """

    name = "no-corrupt-delivery"

    def __init__(self, sim) -> None:
        self.sim = sim
        self.violations: List[Violation] = []
        self.delivered = 0

    def on_probe(self, kind: str, f: Dict[str, Any]) -> None:
        if kind != "srudp.corrupt_deliver":
            return
        self.delivered += 1
        self.violations.append(Violation(
            self.name, self.sim.now,
            f"corrupted message {f['msg']} from {f['src']} delivered "
            f"to the application on {f['dst']} — payload integrity lost",
        ))


class ShardOracle:
    """Epoch-fenced ownership for the federated catalog.

    Continuous half: a shard replica must never *locally originate* a
    live register for a name its own adopted map routes elsewhere — that
    acceptance is exactly what the ownership fence refuses with a
    ``shard-redirect``, so seeing one means a client's stale pre-split
    map landed a write after the epoch advanced (the seeded
    ``stale-epoch-write`` bug). The oracle watches each replica's log
    through ``on_record`` and judges every locally-originated record
    against the map the replica itself believes *at that moment*
    (``shard.config`` probes mark adoptions, and accepts within a short
    grace of an adoption are excused: the fence decision legitimately
    predates a map that arrived mid-handler). Tombstones are exempt —
    moved markers are locally-originated deletions for names the map
    routes elsewhere *by design*.

    Quiescent half (:meth:`check_quiescent`): under the final map, every
    shard replica group internally agrees on its visible registers
    (per-shard LWW convergence), every live name is visible only in the
    group that owns it, and — the split boundary invariant — no name is
    visible in both a parent and its child.
    """

    name = "shard-ownership"

    #: Accepts this soon after the replica adopted a newer map are not
    #: violations: the handler fenced against the map that was current
    #: when the request was admitted, then yielded through the apply
    #: delay while the adoption happened.
    ADOPT_GRACE = 0.25

    #: A locally-originated record is a *fresh* accept only if its wall
    #: stamp is about now — a fresh accept stamps the host clock at
    #: accept time. Durability recovery replays the journal through the
    #: same log hook with the original (old) stamps preserved; those
    #: records were fenced when they were first accepted, under the map
    #: of their day, and must not be re-judged against today's.
    FRESH_WINDOW = 1.0

    def __init__(self, sim) -> None:
        self.sim = sim
        self.violations: List[Violation] = []
        self._servers: Dict[str, Any] = {}
        self._adopted_at: Dict[str, float] = {}
        self.local_accepts = 0

    def on_probe(self, kind: str, f: Dict[str, Any]) -> None:
        if kind == "shard.config":
            self._adopted_at[f["server"]] = self.sim.now

    def attach(self, env) -> None:
        """Hook every shard-aware replica (root and shard groups)."""
        from repro.rcds.shard.server import ShardRCServer

        for server in env.all_rc_servers().values():
            if not isinstance(server, ShardRCServer):
                continue
            self._servers[server.store.server_id] = server
            chain_on_record(server.store, self._hook(server))

    def _hook(self, server):
        from repro.rcds.shard.map import MAP_URI

        store = server.store

        def on_record(record) -> None:
            if record.origin != store.server_id:
                return  # replicated/merged, not locally accepted
            entry = record.entry
            if entry.deleted or record.uri == MAP_URI:
                return
            if self.sim.now - entry.wall > self.FRESH_WINDOW:
                return  # journal replay on recovery, not a fresh accept
            if server.map is None or server.owns(record.uri):
                self.local_accepts += 1
                return
            adopted = self._adopted_at.get(store.server_id)
            if adopted is not None and self.sim.now - adopted < self.ADOPT_GRACE:
                return
            self.violations.append(Violation(
                self.name, self.sim.now,
                f"replica {store.server_id} (shard {server.sid}, epoch "
                f"{server.epoch}) locally accepted a live write for "
                f"{record.uri!r}, which its own map routes to "
                f"{server.map.route(record.uri)} — a stale-epoch write "
                f"got past the ownership fence",
            ))

        return on_record

    def check_quiescent(self, manager) -> None:
        """Final-map placement: per-group convergence, single-group
        visibility, and no parent+child dual visibility."""
        from repro.rcds.shard.map import MAP_URI

        final_map = manager.map
        visible_in: Dict[str, List[str]] = {}
        for sid, grp in sorted(manager.servers.items()):
            snaps = {
                server_id: {
                    (uri, key): entry.stamp()
                    for uri, bucket in server.store.data.items()
                    if uri != MAP_URI
                    for key, entry in bucket.items() if not entry.deleted
                }
                for server_id, server in grp.items()
            }
            if len(set(map(frozenset, (s.items() for s in snaps.values())))) > 1:
                keys = set()
                for s in snaps.values():
                    keys |= set(s)
                diffs = [k for k in sorted(keys)
                         if len({s.get(k) for s in snaps.values()}) > 1]
                self.violations.append(Violation(
                    self.name, self.sim.now,
                    f"shard {sid} replicas diverge at quiescence on "
                    f"{len(diffs)} register(s), e.g. {diffs[:3]}",
                ))
            for uri in {uri for s in snaps.values() for (uri, _k) in s}:
                visible_in.setdefault(uri, []).append(sid)
                if final_map.route(uri) != sid:
                    self.violations.append(Violation(
                        self.name, self.sim.now,
                        f"{uri!r} still live in shard {sid} at quiescence "
                        f"but the final map (epoch {final_map.epoch}) "
                        f"routes it to {final_map.route(uri)}",
                    ))
        for uri, sids in sorted(visible_in.items()):
            if len(sids) > 1:
                self.violations.append(Violation(
                    self.name, self.sim.now,
                    f"{uri!r} visible in {len(sids)} shard groups at "
                    f"quiescence ({', '.join(sorted(sids))}) — a split "
                    f"left the name live on both sides of the boundary",
                ))


class FalseDeathOracle:
    """No lease-inferred death of a host that never actually crashed.

    ``guardian.death`` probes carry a *reason*. Reported deaths
    (``task-failed``, ``host-crash-report``) come from a live daemon and
    are trusted. ``host-lease`` deaths are the Guardian's own inference
    from a lapsed lease — under gray faults (clock skew on the lease
    writer, a one-way cut on the lease path) that inference can be wrong
    about a perfectly live host, and acting on it respawns tasks out
    from under their running originals. The fault plan tells the oracle
    which hosts really crashed (and when); a host-lease death of any
    other host is a violation.

    This is the oracle that catches the seeded ``naive-health`` bug: with
    differential confirmation disabled the Guardian declares a skewed but
    live host dead without ever probing it over a second channel.
    """

    name = "no-false-death"

    def __init__(self, sim, crashed: Optional[Callable[[str, float], bool]] = None) -> None:
        self.sim = sim
        self.violations: List[Violation] = []
        #: (host, sim-time) -> True if the host was genuinely down around
        #: then. Defaults to "nothing ever crashed".
        self.crashed = crashed or (lambda host, t: False)
        self.false_deaths = 0
        self.lease_deaths = 0

    def on_probe(self, kind: str, f: Dict[str, Any]) -> None:
        if kind != "guardian.death" or f.get("reason") != "host-lease":
            return
        self.lease_deaths += 1
        host = f.get("host") or ""
        if host and not self.crashed(host, self.sim.now):
            self.false_deaths += 1
            self.violations.append(Violation(
                self.name, self.sim.now,
                f"guardian {f.get('guardian', '?')} declared live host "
                f"{host} dead from a lapsed lease ({f['urn']}) — "
                f"false death of a running host",
            ))
