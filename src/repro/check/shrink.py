"""Failing-schedule shrinking: delta-debug the fault plan, drop the
tie permutation when it is not needed, emit a replayable trace.

A failing check run is described by (scenario, seed, bug, fault plan,
explore flag) — all explicit, all serializable. Shrinking asks the only
question that matters for debugging: *which of these ingredients does
the failure actually need?* The ddmin pass removes fault events while
the run still fails; a final pass retries without schedule permutation.
The result is a minimized trace (JSON) that ``python -m repro check
replay`` re-runs deterministically.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Sequence

from repro.check.explore import FaultEvent, run_check

TRACE_VERSION = 1


def ddmin(items: Sequence, failing: Callable[[List], bool]) -> List:
    """Zeller's delta-debugging minimization.

    Returns a sublist of *items* (order preserved) on which *failing*
    still returns True, locally minimal in the sense that removing any
    single remaining chunk at the finest granularity makes the failure
    disappear. *failing* must be deterministic; it is assumed True for
    the full list.
    """
    items = list(items)
    n = 2
    while len(items) >= 2:
        chunk = (len(items) + n - 1) // n
        reduced = False
        for i in range(0, len(items), chunk):
            complement = items[:i] + items[i + chunk:]
            if complement and failing(complement):
                items = complement
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), n * 2)
    if len(items) == 1 and failing([]):
        items = []
    return items


def minimize(
    scenario: str,
    seed: int,
    bug: Optional[str],
    plan: List[FaultEvent],
    explore: bool = True,
    params: Optional[Dict] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Shrink a failing run to its minimal fault plan.

    Returns ``{"plan", "explore", "report", "runs"}`` where ``plan`` is
    the minimized :class:`FaultEvent` list, ``explore`` says whether tie
    permutation is still required to fail, ``report`` is the final
    failing run's report, and ``runs`` counts the check runs spent.
    Raises ``ValueError`` if the original configuration does not fail
    (nothing to shrink — a non-reproducible report upstream).
    """
    params = dict(params or {})
    counter = {"runs": 0}
    say = log or (lambda _msg: None)

    def attempt(candidate: List[FaultEvent], expl: bool) -> Dict:
        counter["runs"] += 1
        return run_check(scenario=scenario, seed=seed, bug=bug,
                         plan=list(candidate), explore=expl, **params)

    base = attempt(plan, explore)
    if base["ok"]:
        raise ValueError("original run does not fail; nothing to minimize")
    say(f"shrinking: {len(plan)} fault events, explore={explore}")

    best = {"report": base}

    def failing(candidate: List[FaultEvent]) -> bool:
        report = attempt(candidate, explore)
        if not report["ok"]:
            best["report"] = report
            return True
        return False

    min_plan = ddmin(plan, failing)
    say(f"ddmin: {len(plan)} -> {len(min_plan)} fault events "
        f"({counter['runs']} runs)")

    final_explore = explore
    if explore:
        report = attempt(min_plan, False)
        if not report["ok"]:
            final_explore = False
            best["report"] = report
            say("tie permutation not needed: fails on the FIFO schedule too")

    return {
        "plan": list(min_plan),
        "explore": final_explore,
        "report": best["report"],
        "runs": counter["runs"],
    }


# ---------------------------------------------------------------------------
# Trace files
# ---------------------------------------------------------------------------

def write_trace(path: str, report: Dict) -> None:
    """Serialize a (minimized) failing run so ``check replay`` can re-run it.

    *report* is a :func:`run_check` report; everything needed to
    reproduce — scenario, seed, bug, explore flag, workload parameters,
    and the explicit fault plan — is copied into the trace along with
    the violation it produced.
    """
    trace = {
        "version": TRACE_VERSION,
        "scenario": report["scenario"],
        "seed": report["seed"],
        "bug": report.get("bug"),
        "explore": report["explore"],
        "params": report["params"],
        "plan": report["plan"],
        "violations": report["violations"],
    }
    with open(path, "w") as fh:
        json.dump(trace, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_trace(path: str) -> Dict:
    with open(path) as fh:
        trace = json.load(fh)
    if trace.get("version") != TRACE_VERSION:
        raise ValueError(f"{path}: unsupported trace version {trace.get('version')!r}")
    return trace


def replay_trace(trace: Dict) -> Dict:
    """Re-run the exact configuration a trace describes."""
    return run_check(
        scenario=trace["scenario"],
        seed=trace["seed"],
        bug=trace.get("bug"),
        plan=[FaultEvent.from_dict(d) for d in trace["plan"]],
        explore=trace["explore"],
        **trace["params"],
    )
