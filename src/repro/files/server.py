"""The file server process: storage, RPC access, sinks and sources."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.bulk.chunks import DEFAULT_CHUNK_SIZE, chunk_digests
from repro.rcds import uri as uri_mod
from repro.rcds.client import ONE, RCClient
from repro.rcds.lifn import LifnRegistry
from repro.rpc import RpcServer, Sized, payload_size
from repro.security.hashes import content_hash
from repro.sim.errors import Interrupt
from repro.transport.srudp import SrudpEndpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host

#: Well-known file server port.
FILE_PORT = 2100

_sink_ids = itertools.count(1)

#: Sentinel payload closing a sink's stream.
_EOF = "__snipe_file_eof__"


@dataclass
class VirtualFile:
    """A stored file: opaque payload plus byte accounting and a hash."""

    name: str
    payload: Any
    size: int
    hash: str
    created: float
    gets: int = 0
    #: Chunked payloads (from sinks) keep their message list.
    chunks: Optional[list] = None
    #: Per-chunk digests for chunked payloads — what `file.stat` exposes
    #: instead of the opaque chunk tuple, and what the bulk plane checks.
    chunk_digests: Optional[tuple] = None


class FileServer:
    """One replica server. Registers itself as a fileserver service in RC
    metadata so clients and replication daemons can find it."""

    def __init__(
        self,
        host: "Host",
        rc: RCClient,
        port: int = FILE_PORT,
        secret: Optional[bytes] = None,
        protocols: tuple = ("snipe", "http", "ftp"),
    ) -> None:
        self.sim = host.sim
        self.host = host
        self.rc = rc
        self.port = port
        self.protocols = protocols
        self.files: Dict[str, VirtualFile] = {}
        self.lifns = LifnRegistry(rc)
        self.rpc = RpcServer(host, port, secret=secret)
        self.rpc.register("file.put", self._h_put)
        self.rpc.register("file.get", self._h_get)
        self.rpc.register("file.stat", self._h_stat)
        self.rpc.register("file.delete", self._h_delete)
        self.rpc.register("file.list", self._h_list)
        self.sim.process(self._register(), name=f"fs-reg:{host.name}")

    def _register(self):
        try:
            yield self.rc.update(
                uri_mod.service_urn("fileserver"),
                {f"location:{self.host.name}:{self.port}": True},
            )
            yield self.rc.update(
                f"snipe://{self.host.name}/fileserver",
                {"accepts": list(self.protocols), "provides": list(self.protocols)},
            )
        except Exception:
            pass

    # -- direct storage API ------------------------------------------------
    def store(self, name: str, payload: Any, size: int, chunks: Optional[list] = None) -> VirtualFile:
        vf = VirtualFile(
            name=name,
            payload=payload,
            size=size,
            hash=content_hash(payload),
            created=self.sim.now,
            chunks=chunks,
            chunk_digests=chunk_digests(chunks) if chunks is not None else None,
        )
        self.files[name] = vf
        return vf

    def location_url(self, name: str) -> str:
        return uri_mod.file_url(self.host.name, name)

    def bind_lifn(self, name: str):
        """Advertise our replica of *name* in the LIFN registry (a process).

        Registration prefers a quorum write (bind-then-resolve reads its
        own writes), but degrades to ONE when no quorum answers — a gray
        peer or a one-way link must not turn a durable local write into a
        hard failure. The locally-registered location spreads by
        anti-entropy; a briefly-stale LIFN beats a failed checkpoint.
        """
        vf = self.files[name]
        url = self.location_url(name)
        return self.sim.process(self._bind_lifn(name, url, vf.hash),
                                name=f"fs-bind:{name}")

    def _bind_lifn(self, name: str, url: str, vhash):
        try:
            yield self.lifns.bind(name, url, content_hash=vhash)
        except Exception:
            yield self.lifns.bind(name, url, content_hash=vhash, consistency=ONE)

    # -- sinks and sources (§5.9) ------------------------------------------------
    def spawn_sink(self, name: str):
        """Spawn a file sink; returns (port, done_event).

        The sink reads SNIPE messages sent to its port and stores them
        into file *name* when the EOF sentinel arrives; done_event fires
        with the stored :class:`VirtualFile` after the LIFN is bound.
        """
        port = self.host.ephemeral_port()
        ep = SrudpEndpoint(self.host, port)
        done = self.sim.event()
        self.sim.process(self._sink(name, ep, done), name=f"sink:{name}@{self.host.name}")
        return port, done

    def _sink(self, name: str, ep: SrudpEndpoint, done):
        chunks = []
        total = 0
        try:
            while True:
                msg = yield ep.recv()
                if msg.payload == _EOF:
                    break
                chunks.append(msg.payload)
                total += msg.size
            vf = self.store(name, payload=tuple(chunks), size=total, chunks=chunks)
            yield self.bind_lifn(name)
            done.succeed(vf)
        except Interrupt:
            if not done.triggered:
                done.fail(RuntimeError(f"sink for {name!r} interrupted"))
        finally:
            ep.close()

    def spawn_source(
        self, name: str, dst_host: str, dst_port: int,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ):
        """Spawn a file source streaming *name* to a SNIPE address.

        ``chunk_size`` defaults to the system-wide bulk chunk size
        (:data:`repro.bulk.chunks.DEFAULT_CHUNK_SIZE`) so sources, the
        bulk plane, and the MPI pipeliner stream in the same units.
        Returns the source process; its value is the number of messages
        sent (excluding EOF).
        """
        if name not in self.files:
            raise KeyError(f"no file {name!r} on {self.host.name}")
        return self.sim.process(
            self._source(name, dst_host, dst_port, chunk_size),
            name=f"source:{name}@{self.host.name}",
        )

    def _source(self, name: str, dst_host: str, dst_port: int, chunk_size: int):
        vf = self.files[name]
        ep = SrudpEndpoint(self.host, self.host.ephemeral_port())
        try:
            sent = 0
            if vf.chunks is not None:
                for chunk in vf.chunks:
                    yield ep.send(dst_host, dst_port, chunk, payload_size(chunk))
                    sent += 1
            else:
                remaining = vf.size
                while remaining > 0 or sent == 0:
                    n = min(chunk_size, remaining) if remaining else 1
                    yield ep.send(dst_host, dst_port, (name, sent), n)
                    remaining -= n
                    sent += 1
            yield ep.send(dst_host, dst_port, _EOF, 16)
            return sent
        finally:
            ep.close()

    # -- RPC handlers -----------------------------------------------------------
    def _h_put(self, args: Dict) -> Dict:
        vf = self.store(args["name"], args["payload"], args["size"], args.get("chunks"))

        def finish():
            yield self.bind_lifn(args["name"])
            return {"hash": vf.hash, "location": self.location_url(args["name"])}

        return finish()

    def _h_get(self, args: Dict):
        vf = self.files.get(args["name"])
        if vf is None:
            raise KeyError(f"no file {args['name']!r}")
        vf.gets += 1
        # The response carries the file body: charge its declared size.
        return Sized(
            {"payload": vf.payload, "size": vf.size, "hash": vf.hash}, size=vf.size + 128
        )

    def _h_stat(self, args: Dict) -> Dict:
        vf = self.files.get(args["name"])
        if vf is None:
            raise KeyError(f"no file {args['name']!r}")
        return {
            "size": vf.size,
            "hash": vf.hash,
            "created": vf.created,
            "gets": vf.gets,
            "chunk_digests": vf.chunk_digests,
        }

    def _h_delete(self, args: Dict):
        name = args["name"]
        if name not in self.files:
            return False

        def finish():
            del self.files[name]
            yield self.lifns.unbind(name, self.location_url(name))
            return True

        return finish()

    def _h_list(self, args: Dict):
        return sorted(self.files)
