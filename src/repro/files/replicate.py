"""Replication daemons (§3.2).

    "Replication daemons on these servers communicate with one another,
    creating and deleting replicas of files according to local policy,
    redundancy requirements, and demand. Name-to-location binding for
    these files is maintained by metadata servers, which are informed as
    replicas are created and deleted."

Policy implemented: every local file is pushed to peers until it has at
least ``redundancy`` registered locations; files whose read rate exceeds
``hot_threshold`` gets/second earn extra replicas up to ``max_replicas``.
Over-replicated cold files are trimmed (never below the target, and a
server only deletes its *own* replica).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.files.server import FileServer
from repro.rcds import uri as uri_mod
from repro.rpc import RpcClient, RpcError
from repro.sim.errors import Interrupt

if TYPE_CHECKING:  # pragma: no cover
    pass


class ReplicationDaemon:
    """One per file server; wakes periodically and enforces the policy."""

    def __init__(
        self,
        server: FileServer,
        redundancy: int = 2,
        max_replicas: int = 5,
        hot_threshold: float = 10.0,
        interval: float = 2.0,
        secret: Optional[bytes] = None,
    ) -> None:
        self.server = server
        self.sim = server.sim
        self.redundancy = redundancy
        self.max_replicas = max_replicas
        self.hot_threshold = hot_threshold
        self.interval = interval
        self._rpc = RpcClient(server.host, secret=secret)
        self._last_gets: Dict[str, int] = {}
        self.replicas_created = 0
        self.replicas_deleted = 0
        self._proc = self.sim.process(self._run(), name=f"repl:{server.host.name}")

    def _run(self):
        rng = self.sim.rng.stream(f"replication.{self.server.host.name}")
        try:
            while True:
                yield self.sim.timeout(self.interval * (0.5 + rng.random()))
                if not self.server.host.up:
                    continue
                for name in list(self.server.files):
                    yield from self._consider(name, rng)
        except Interrupt:
            return

    def _consider(self, name: str, rng):
        vf = self.server.files.get(name)
        if vf is None:
            return
        # Demand estimate: gets since the last wakeup, per second.
        prev = self._last_gets.get(name, 0)
        rate = (vf.gets - prev) / max(self.interval, 1e-9)
        self._last_gets[name] = vf.gets
        try:
            locations = yield self.server.lifns.locations(name)
            servers = yield from self._peer_servers()
        except Exception:
            return
        target = self.redundancy
        if rate > self.hot_threshold:
            target = self.max_replicas  # demand-driven expansion
        if len(locations) < target:
            # Push to a peer that lacks a replica.
            holders = {uri_mod.host_of(u) for u in locations}
            candidates = [s for s in servers if s[0] not in holders and s[0] != self.server.host.name]
            if candidates:
                peer = candidates[rng.randrange(len(candidates))]
                try:
                    yield self._rpc.call(
                        peer[0], peer[1], "file.put",
                        timeout=5.0, _size=vf.size,
                        name=name, payload=vf.payload, size=vf.size,
                    )
                    self.replicas_created += 1
                except RpcError:
                    pass
        elif len(locations) > max(target, self.redundancy) and rate == 0.0:
            # Trim our own cold excess replica (never drop below target).
            our_url = self.server.location_url(name)
            if our_url in locations and len(locations) - 1 >= self.redundancy:
                del self.server.files[name]
                self.replicas_deleted += 1
                try:
                    yield self.server.lifns.unbind(name, our_url)
                except Exception:
                    pass

    def _peer_servers(self):
        assertions = yield self.server.rc.lookup(uri_mod.service_urn("fileserver"))
        out = []
        for key, info in assertions.items():
            if key.startswith("location:") and info["value"]:
                hostname, port = key[len("location:"):].rsplit(":", 1)
                out.append((hostname, int(port)))
        return sorted(out)

    def close(self) -> None:
        if self._proc.is_alive:
            self._proc.interrupt("closed")
        self._rpc.close()
