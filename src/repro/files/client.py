"""Client-side file access: write anywhere, read the closest replica.

Reads verify the payload against the LIFN's registered content hash —
the end-to-end integrity guarantee RCDS promises (§2.1) — and fail over
to the next-closest replica when a server is dead or a copy corrupt.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional

from repro.files.server import FILE_PORT
from repro.rcds import uri as uri_mod
from repro.rcds.client import RCClient
from repro.rcds.lifn import LifnRegistry
from repro.robust import TIMEOUTS
from repro.robust.retry import RetryPolicy
from repro.rpc import RpcClient, RpcError
from repro.security.hashes import content_hash

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host


class FileError(Exception):
    """No replica reachable, or all reachable replicas failed integrity."""


class FileClient:
    """File operations from one host against the replicated file service."""

    def __init__(
        self,
        host: "Host",
        rc: RCClient,
        secret: Optional[bytes] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.sim = host.sim
        self.host = host
        self.rc = rc
        self.lifns = LifnRegistry(rc)
        self._rpc = RpcClient(host, secret=secret)
        self.integrity_failures = 0
        #: Rounds over the replica set; a round where every replica fails
        #: (FileError) is retried under this policy.
        self.retry = retry or RetryPolicy.single()
        self._rng = host.sim.rng.stream(f"file-client.{host.name}")

    # -- server discovery ---------------------------------------------------
    def file_servers(self):
        """Registered file servers as (host, port) pairs (a process)."""
        return self.sim.process(self._file_servers(), name="fs-discover")

    def _file_servers(self) -> List:
        assertions = yield self.rc.lookup(uri_mod.service_urn("fileserver"))
        out = []
        for key, info in assertions.items():
            if key.startswith("location:") and info["value"]:
                hostname, port = key[len("location:"):].rsplit(":", 1)
                out.append((hostname, int(port)))
        return sorted(out)

    # -- write ------------------------------------------------------------------
    def write(self, lifn: str, payload: Any, size: int, server: Optional[tuple] = None):
        """Store *payload* as *lifn* on a file server (local one preferred)."""
        return self.sim.process(self._write(lifn, payload, size, server), name=f"fwrite:{lifn}")

    def _write(self, lifn: str, payload: Any, size: int, server: Optional[tuple]):
        def one_round(_attempt: int):
            target = server
            if target is None:
                servers = yield from self._file_servers()
                if not servers:
                    raise FileError("no file servers registered")
                local = [s for s in servers if s[0] == self.host.name]
                target = local[0] if local else servers[0]
            try:
                result = yield self._rpc.call(
                    target[0], target[1], "file.put",
                    timeout=TIMEOUTS["file.put"], _size=size,
                    name=lifn, payload=payload, size=size,
                )
            except RpcError as exc:
                raise FileError(f"write {lifn!r} to {target}: {exc}") from None
            return result

        return (
            yield from self.retry.run(
                self.sim, one_round, retry_on=(FileError,), rng=self._rng, op="file.put"
            )
        )

    # -- read ---------------------------------------------------------------------
    def read(self, lifn: str, verify: bool = True):
        """Fetch *lifn* from the closest replica, verifying integrity."""
        return self.sim.process(self._read(lifn, verify), name=f"fread:{lifn}")

    def _read(self, lifn: str, verify: bool):
        def one_round(_attempt: int):
            locations = yield self.lifns.locations(lifn)
            if not locations:
                raise FileError(f"no replicas registered for {lifn!r}")
            expected_hash = yield self.lifns.content_hash(lifn)
            # Closest-first ordering (§6).
            topo = self.host.topology

            def rank(url: str) -> tuple:
                h = uri_mod.host_of(url)
                # A replica behind an open circuit breaker or a health
                # quarantine sorts after every healthy one at any
                # distance: quarantine first, topology second.
                sick = bool(h) and (
                    self._rpc.breaker_open(h, FILE_PORT)
                    or self.host.health.is_quarantined(h)
                )
                if h == self.host.name:
                    return (sick, 0)
                if h in topo.hosts and topo.shared_segments(self.host.name, h):
                    return (sick, 1)
                return (sick, 2)

            errors = []
            for url in sorted(locations, key=lambda u: (rank(u), u)):
                server_host = uri_mod.host_of(url)
                if server_host is None:
                    continue
                try:
                    result = yield self._rpc.call(
                        server_host, FILE_PORT, "file.get",
                        timeout=TIMEOUTS["file.get"], name=lifn
                    )
                except RpcError as exc:
                    errors.append(f"{url}: {exc}")
                    continue
                if verify and expected_hash is not None:
                    if content_hash(result["payload"]) != expected_hash:
                        self.integrity_failures += 1
                        errors.append(f"{url}: integrity check failed")
                        continue
                result["location"] = url
                return result
            raise FileError(f"all replicas of {lifn!r} failed: {errors}")

        return (
            yield from self.retry.run(
                self.sim, one_round, retry_on=(FileError,), rng=self._rng, op="file.get"
            )
        )

    # -- sink/source conveniences (§5.9) ------------------------------------------
    def open_write(self, lifn: str, server_host: str, file_server) -> tuple:
        """Spawn a sink on *file_server*; returns (host, port, done_event).

        "Opening a file for writing thus consists of spawning a file sink
        process" — the caller then sends ordinary SNIPE messages to
        (host, port) and an EOF to close.
        """
        port, done = file_server.spawn_sink(lifn)
        return server_host, port, done
