"""SNIPE file servers (§3.2, §5.9).

    "A file server is a host which is capable of spawning 'file sinks',
    which accept data from SNIPE processes to be stored in files, and make
    that data available to other processes. The files thus stored may be
    replicated to other locations…"

Pieces:

* :class:`FileServer` — stores virtual files, serves get/put/stat RPCs,
  binds LIFN locations in RC metadata, spawns sinks and sources.
* :class:`ReplicationDaemon` — keeps each file at its redundancy target
  and adds demand-driven replicas ("according to local policy, redundancy
  requirements, and demand").
* :class:`FileClient` — write-anywhere / read-closest client with
  integrity verification via signed content hashes, falling back across
  replicas on failure (§6: "duplicated file reading/access is supported
  via location of closest resource").
"""

from repro.files.server import FILE_PORT, FileServer, VirtualFile
from repro.files.client import FileClient, FileError
from repro.files.replicate import ReplicationDaemon

__all__ = [
    "FILE_PORT",
    "FileClient",
    "FileError",
    "FileServer",
    "ReplicationDaemon",
    "VirtualFile",
]
