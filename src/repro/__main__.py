"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``examples`` — list the runnable examples.
* ``experiments`` — regenerate every experiment table (same as
  ``scripts/run_all_experiments.py``).
* ``fig1`` — just the Fig. 1 reproduction, with an ASCII rendering.
* ``info`` — package and inventory summary.
* ``obs`` — observability: ``obs report [export.json]``, ``obs diff
  BASE NEW`` (with ``--fail-over PCT`` as a CI regression gate),
  ``obs profile`` (kernel profiler + flamegraph JSON), ``obs overhead``
  (tracing cost: off/sampled/on), and ``obs slo`` (declarative SLO
  gates over an overload run or a saved export)
  (see :mod:`repro.obs.cli`).
* ``chaos`` — seeded fault injection with invariant checking:
  ``chaos run --seed N`` and ``chaos sweep`` (see :mod:`repro.robust.cli`).
* ``check`` — model checking: explored schedules, reference-model
  oracles, failing-schedule shrinking: ``check run``, ``check sweep``,
  ``check replay TRACE`` (see :mod:`repro.check.cli`).
* ``bulk`` — the bulk-data distribution plane: ``bulk bench`` (E13,
  unicast vs relay tree) and ``bulk tree`` (show the relay tree, run
  one fan-out) (see :mod:`repro.bulk.cli`).
"""

from __future__ import annotations

import sys


def _cmd_examples() -> int:
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[2] / "examples"
    print("Runnable examples (python examples/<name>.py):\n")
    if root.is_dir():
        for path in sorted(root.glob("*.py")):
            doc = ""
            for line in path.read_text().splitlines():
                if line.startswith('"""'):
                    doc = line.strip('"').strip()
                    break
            print(f"  {path.name:28s} {doc}")
    else:
        print("  (examples directory not found — run from a source checkout)")
    return 0


def _cmd_fig1() -> int:
    from repro.bench.fig1 import fig1_bandwidth
    from repro.bench.plotting import ascii_chart
    from repro.bench.table import print_table

    rows = fig1_bandwidth(sizes=[16_384, 131_072, 1_048_576])
    print_table("Fig. 1: bandwidth (MB/s) vs message size", rows,
                ["series", "size", "mbps"])
    series = {}
    for row in rows:
        series.setdefault(row["series"], []).append((row["size"], row["mbps"]))
    print()
    print(ascii_chart(series, title="Fig. 1 (MB/s vs bytes, log-x)",
                      x_label="message size", y_label="MB/s"))
    return 0


def _cmd_experiments() -> int:
    import runpy
    import pathlib

    script = pathlib.Path(__file__).resolve().parents[2] / "scripts" / "run_all_experiments.py"
    runpy.run_path(str(script), run_name="__main__")
    return 0


def _cmd_info() -> int:
    import repro

    print(f"repro (SNIPE reproduction) {repro.__version__}")
    print(__doc__)
    for pkg in ("sim", "net", "transport", "rcds", "security", "daemon",
                "files", "rm", "playground", "core", "console", "pvm",
                "mpi", "bulk", "bench"):
        mod = __import__(f"repro.{pkg}", fromlist=["__doc__"])
        first = (mod.__doc__ or "").strip().splitlines()[0] if mod.__doc__ else ""
        print(f"  repro.{pkg:12s} {first}")
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    commands = {
        "examples": _cmd_examples,
        "experiments": _cmd_experiments,
        "fig1": _cmd_fig1,
        "info": _cmd_info,
    }
    if argv and argv[0] == "obs":
        from repro.obs.cli import main as obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == "chaos":
        from repro.robust.cli import main as chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] == "check":
        from repro.check.cli import main as check_main

        return check_main(argv[1:])
    if argv and argv[0] == "bulk":
        from repro.bulk.cli import main as bulk_main

        return bulk_main(argv[1:])
    if not argv or argv[0] not in commands:
        print("usage: python -m repro "
              "{examples|experiments|fig1|info|obs|chaos|check|bulk}")
        return 2
    return commands[argv[0]]()


if __name__ == "__main__":
    raise SystemExit(main())
