"""A faithful-in-the-ways-that-matter PVM baseline (§2.2).

SNIPE's design is motivated by PVM's limitations; reproducing the
paper's comparisons therefore needs a PVM to compare against. This
implementation models the properties §2.2 enumerates:

* a **master pvmd** owning the host table — "PVM can tolerate slave
  failures but not failure of its master host";
* **host-table updates** broadcast by the master, which "cannot tolerate
  link failures during host table updates";
* a **centralized resource manager** in the master — "this would be a
  bottleneck for a very large virtual machine";
* task ids valid **only within one virtual machine** — no global names;
* default **pvmd-to-pvmd routing**: task → local pvmd → remote pvmd →
  task, the store-and-forward hop that PVMPI paid and MPI_Connect (via
  SNIPE) avoided (§6.1).
"""

from repro.pvm.pvmd import PVMD_PORT, PvmContext, PvmError, Pvmd

__all__ = ["PVMD_PORT", "PvmContext", "PvmError", "Pvmd"]
