"""The PVM daemon and task context.

Task ids pack (host index, per-host sequence); the master's host table
maps indices to host names and every pvmd keeps a copy, refreshed by
master broadcasts. All the §2.2 failure modes fall out of this structure
naturally — no artificial failure switches.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.rpc import RpcClient, RpcError, RpcServer, payload_size
from repro.sim.events import defuse

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host

#: Well-known pvmd port.
PVMD_PORT = 3700

_HOST_SHIFT = 18  # tid = host_index << 18 | sequence


class PvmError(Exception):
    """Virtual machine operation failed (master dead, unknown tid, ...)."""


@dataclass
class _TaskEnv:
    src_tid: int
    tag: str
    payload: Any
    size: int


class PvmContext:
    """What a PVM task sees: tid-addressed send/recv inside one VM."""

    def __init__(self, pvmd: "Pvmd", tid: int) -> None:
        self.pvmd = pvmd
        self.sim = pvmd.sim
        self.host = pvmd.host
        self.tid = tid
        self._pending: List[_TaskEnv] = []
        self._waiters: List[Tuple[Optional[str], Any]] = []

    def send(self, dst_tid: int, payload: Any, tag: str = "", size: Optional[int] = None):
        """Send to another task in this VM (a process; yield it)."""
        if size is None:
            size = payload_size(payload)
        env = _TaskEnv(self.tid, tag, payload, size)
        return self.pvmd.route(dst_tid, env)

    def recv(self, tag: Optional[str] = None):
        """Event yielding the next matching :class:`_TaskEnv`."""
        from repro.sim.events import Event

        ev = Event(self.sim)
        for i, env in enumerate(self._pending):
            if tag is None or env.tag == tag:
                del self._pending[i]
                ev.succeed(env)
                return ev
        self._waiters.append((tag, ev))
        return ev

    def _deliver(self, env: _TaskEnv) -> None:
        for i, (tag, ev) in enumerate(self._waiters):
            if tag is None or env.tag == tag:
                del self._waiters[i]
                ev.succeed(env)
                return
        self._pending.append(env)

    def sleep(self, seconds: float):
        return self.sim.timeout(seconds)

    def compute(self, cpu_seconds: float):
        return self.sim.timeout(cpu_seconds / self.host.cpu_speed)


class Pvmd:
    """One PVM daemon. The first one (no ``master_host``) is the master."""

    def __init__(
        self,
        host: "Host",
        programs: Dict[str, Callable[..., Generator]],
        master_host: Optional[str] = None,
        service_time: float = 0.0005,
    ) -> None:
        self.sim = host.sim
        self.host = host
        self.programs = programs
        self.is_master = master_host is None
        self.master_host = host.name if master_host is None else master_host
        #: host table: index -> host name. Index 0 is always the master.
        self.host_table: Dict[int, str] = {0: self.master_host} if self.is_master else {}
        self._next_host_index = 1
        self._next_task_seq = itertools.count(1)
        self.my_host_index: Optional[int] = 0 if self.is_master else None
        self.tasks: Dict[int, PvmContext] = {}
        self.task_procs: Dict[int, Any] = {}
        self.vm_corrupt = False  # host-table update hit a failure mid-broadcast
        self.spawns_served = 0
        # Master spawn handling is serialized with a fixed cost: the
        # centralized-RM bottleneck of §2.2 (measured in E4).
        self.rpc = RpcServer(
            host, PVMD_PORT, service_time=service_time if self.is_master else 0.0
        )
        self.rpc.register("pvm.addhost", self._h_addhost)
        self.rpc.register("pvm.table", self._h_table)
        self.rpc.register("pvm.spawn", self._h_spawn)
        self.rpc.register("pvm.spawn_local", self._h_spawn_local)
        self.rpc.register("pvm.route", self._h_route)
        self.rpc.register("pvm.tasks", self._h_tasks)
        self.rpc.register("pvm.putinfo", self._h_putinfo)
        self.rpc.register("pvm.getinfo", self._h_getinfo)
        #: Master-held global service registry ("simple facility for
        #: global registration of well-known services") — what PVMPI used
        #: to rendezvous MPI applications.
        self.info_registry: Dict[str, Any] = {}
        self._client = RpcClient(host)
        host.on_crash.append(self._on_crash)

    # -- joining the virtual machine ---------------------------------------------
    def join(self):
        """Slave: register with the master; returns a process (yield it)."""
        if self.is_master:
            raise PvmError("master does not join itself")
        return self.sim.process(self._join(), name=f"pvm-join:{self.host.name}")

    def _join(self):
        try:
            result = yield self._client.call(
                self.master_host, PVMD_PORT, "pvm.addhost",
                timeout=2.0, host=self.host.name,
            )
        except RpcError as exc:
            raise PvmError(f"cannot join VM: {exc}") from None
        self.my_host_index = result["index"]
        self.host_table = dict(result["table"])
        return self.my_host_index

    def _h_addhost(self, args: Dict):
        """Master: extend the host table, then broadcast it to every slave.

        A slave that cannot be reached mid-broadcast leaves the VM with
        inconsistent tables — the §2.2 link-failure fragility.
        """
        if not self.is_master:
            raise PvmError("addhost must go to the master")
        return self._addhost(args["host"])

    def _addhost(self, new_host: str):
        index = self._next_host_index
        self._next_host_index += 1
        self.host_table[index] = new_host
        # Sequential broadcast of the new table to all other slaves.
        for idx, name in sorted(self.host_table.items()):
            if name in (self.master_host, new_host):
                continue
            try:
                yield self._client.call(
                    name, PVMD_PORT, "pvm.table", timeout=1.0, table=self.host_table
                )
            except RpcError:
                self.vm_corrupt = True  # tables now disagree across the VM
        return {"index": index, "table": dict(self.host_table)}

    def _h_table(self, args: Dict):
        self.host_table = dict(args["table"])
        return True

    # -- spawning (centralized through the master) ----------------------------------
    def spawn(self, program: str, n: int = 1, **params):
        """Ask the master to place and start *n* tasks (a process)."""
        return self.sim.process(self._spawn_via_master(program, n, params),
                                name=f"pvm-spawn:{program}")

    def _spawn_via_master(self, program: str, n: int, params: Dict):
        try:
            result = yield self._client.call(
                self.master_host, PVMD_PORT, "pvm.spawn",
                timeout=5.0, program=program, n=n, params=params,
            )
        except RpcError as exc:
            raise PvmError(f"spawn failed (master unreachable?): {exc}") from None
        return result["tids"]

    def _h_spawn(self, args: Dict):
        if not self.is_master:
            raise PvmError("spawn requests must go to the master")
        return self._master_spawn(args["program"], args["n"], args.get("params", {}))

    def _master_spawn(self, program: str, n: int, params: Dict):
        """Round-robin placement over the host table (the built-in RM)."""
        self.spawns_served += 1
        tids = []
        indices = sorted(self.host_table)
        for i in range(n):
            idx = indices[i % len(indices)]
            target = self.host_table[idx]
            if target == self.host.name:
                tids.append(self.spawn_local(program, params))
                continue
            try:
                result = yield self._client.call(
                    target, PVMD_PORT, "pvm.spawn_local",
                    timeout=2.0, program=program, params=params,
                )
                tids.append(result["tid"])
            except RpcError:
                continue  # slave failure tolerated: fewer tasks come back
        return {"tids": tids}

    def _h_spawn_local(self, args: Dict):
        return {"tid": self.spawn_local(args["program"], args.get("params", {}))}

    def spawn_local(self, program: str, params: Dict) -> int:
        fn = self.programs.get(program)
        if fn is None:
            raise PvmError(f"unknown program {program!r}")
        if self.my_host_index is None:
            raise PvmError(f"{self.host.name} has not joined the VM")
        tid = (self.my_host_index << _HOST_SHIFT) | next(self._next_task_seq)
        ctx = PvmContext(self, tid)
        self.tasks[tid] = ctx
        proc = self.sim.process(fn(ctx, **params), name=f"pvm-task:{tid}")
        self.task_procs[tid] = proc
        defuse(proc)
        return tid

    # -- message routing (task -> pvmd -> pvmd -> task) -------------------------------
    def route(self, dst_tid: int, env: _TaskEnv):
        """The default PVM route: always through the daemons."""
        return self.sim.process(self._route(dst_tid, env), name=f"pvm-route:{dst_tid}")

    def _route(self, dst_tid: int, env: _TaskEnv):
        from repro.net.media import LOOPBACK

        # Task -> local pvmd: a real copy over the host's loopback.
        if env is not None:
            yield self.sim.timeout(LOOPBACK.latency + env.size / LOOPBACK.bandwidth)
        host_index = dst_tid >> _HOST_SHIFT
        if host_index == self.my_host_index:
            self._deliver_local(dst_tid, env)
            return True
        target = self.host_table.get(host_index)
        if target is None:
            raise PvmError(f"tid {dst_tid}: host index {host_index} not in my table")
        try:
            # pvmd -> pvmd crossing pays the message's declared size.
            yield self._client.call(
                target, PVMD_PORT, "pvm.route",
                timeout=5.0, _size=env.size, dst_tid=dst_tid, env=env,
            )
        except RpcError as exc:
            raise PvmError(f"route to {dst_tid} failed: {exc}") from None
        return True

    def _h_route(self, args: Dict):
        return self._route_in(args["dst_tid"], args["env"])

    def _route_in(self, dst_tid: int, env: _TaskEnv):
        from repro.net.media import LOOPBACK

        # Remote pvmd -> destination task: the second loopback copy.
        yield self.sim.timeout(LOOPBACK.latency + env.size / LOOPBACK.bandwidth)
        self._deliver_local(dst_tid, env)
        return True

    def _deliver_local(self, tid: int, env: _TaskEnv) -> None:
        ctx = self.tasks.get(tid)
        if ctx is None:
            raise PvmError(f"no task {tid} on {self.host.name}")
        ctx._deliver(env)

    def _h_tasks(self, args: Dict):
        return sorted(self.tasks)

    def _h_putinfo(self, args: Dict):
        if not self.is_master:
            raise PvmError("putinfo must go to the master")
        self.info_registry[args["key"]] = args["value"]
        return True

    def _h_getinfo(self, args: Dict):
        if not self.is_master:
            raise PvmError("getinfo must go to the master")
        if args["key"] not in self.info_registry:
            raise PvmError(f"no info for {args['key']!r}")
        return self.info_registry[args["key"]]

    def putinfo(self, key: str, value: Any):
        """Register a value in the VM-wide registry (a process)."""
        return self._client.call(
            self.master_host, PVMD_PORT, "pvm.putinfo", timeout=2.0, key=key, value=value
        )

    def getinfo(self, key: str):
        """Fetch a registered value from the master (a process)."""
        return self._client.call(
            self.master_host, PVMD_PORT, "pvm.getinfo", timeout=2.0, key=key
        )

    def enroll(self) -> Tuple[int, PvmContext]:
        """Enroll an external process (e.g. an MPI rank) as a PVM task.

        This is PVMPI's trick: each MPI process also becomes addressable
        inside the PVM virtual machine.
        """
        if self.my_host_index is None:
            raise PvmError(f"{self.host.name} has not joined the VM")
        tid = (self.my_host_index << _HOST_SHIFT) | next(self._next_task_seq)
        ctx = PvmContext(self, tid)
        self.tasks[tid] = ctx
        return tid, ctx

    # -- failure ----------------------------------------------------------------
    def _on_crash(self, host) -> None:
        for tid, proc in list(self.task_procs.items()):
            if proc.is_alive:
                proc.interrupt("host-crash")
        self.tasks.clear()
        self.task_procs.clear()
