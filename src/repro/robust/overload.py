"""Overload control: adaptive timeouts, circuit breakers, priority lanes.

SNIPE's target environment is the wide-area Internet, where the common
failure is not a clean crash but *congestion*: a host that is alive yet
slow. Under the PR-2 stack, overload and death were indistinguishable —
fixed 5 s RPC timeouts, a static SRUDP RTO, and unbounded receive queues
meant a saturated replica was hammered harder until its lease lapsed and
the Guardian respawned a perfectly healthy task. This module holds the
three primitives that separate "slow" from "dead":

* :class:`RttEstimator` — per-destination Jacobson/Karels smoothed RTT
  and variance (RFC 6298 style): ``rto = srtt + 4·rttvar``, doubled per
  consecutive timeout up to a cap. Timeouts *adapt* to the path instead
  of being a global constant, so congestion stretches patience rather
  than triggering retry storms.
* :class:`CircuitBreaker` — closed/open/half-open quarantine per
  destination. A replica failing more than ``failure_threshold`` of its
  recent window is left alone for ``open_for`` seconds (doubling while
  it stays sick), then probed with a single request before traffic is
  restored. Clients fail over to healthy candidates immediately instead
  of burning their deadline budget on a sick one.
* :class:`LaneStore` — a two-lane ingress queue. The control lane
  (lease heartbeats, fencing, guardian probes, RC anti-entropy) is never
  shed; the bulk lane is bounded and either backpressures the sender
  (transport mode: an unacknowledged segment is retransmitted, so
  nothing is silently lost) or sheds its oldest entry (RPC mode: the
  request would have timed out anyway, and dropping it *before* the
  server wastes service time on it is what keeps goodput up).

Everything is tunable per simulation through :class:`OverloadConfig`,
reached as the lazy ``sim.overload`` property; ``adaptive=False``
restores the static-timeout behaviour and is the E12 baseline flag.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Optional, Tuple

from repro.sim.events import Event

#: Priority lanes. Control traffic keeps the failure detectors honest and
#: must survive saturation; bulk traffic is the load being controlled.
CONTROL = "control"
BULK = "bulk"

#: Methods that are control-plane regardless of what the caller says.
#: Server-side safety net: even a client that forgot to tag its call
#: cannot starve fencing or anti-entropy behind bulk data.
CONTROL_METHODS = frozenset(
    {
        "daemon.fence",
        "daemon.notify",
        "daemon.ping",
        "guardian.status",
        "rc.sync",
    }
)


def lane_for_request(req: Any) -> str:
    """Classify an RPC request into a lane.

    An explicit ``req.lane`` wins; otherwise the method table decides.
    """
    lane = getattr(req, "lane", None)
    if lane == CONTROL:
        return CONTROL
    if getattr(req, "method", None) in CONTROL_METHODS:
        return CONTROL
    return BULK


@dataclass
class OverloadConfig:
    """Per-simulation overload-control switches (see ``sim.overload``).

    ``adaptive=False`` freezes every timeout at its static default and is
    the E12 baseline; ``breakers=False`` disables quarantine. Both exist
    so experiments can measure each mechanism's contribution separately.
    """

    adaptive: bool = True
    breakers: bool = True
    #: When False, every RPC is issued on the bulk lane (priority
    #: classification off) — the static-baseline half of E12 together
    #: with ``adaptive=False``/``breakers=False``.
    lanes: bool = True
    #: Adaptive RPC timeouts never drop below this fraction of the static
    #: default (guards against a lucky fast sample starving slow methods).
    timeout_floor_factor: float = 0.5
    #: ...and never exceed this, however congested the path looks.
    max_timeout: float = 30.0
    #: Bulk-lane bound for RPC servers (shed-oldest beyond this).
    server_bulk_capacity: int = 256
    #: Bulk-lane bound for transport rx queues (backpressure beyond this).
    transport_rx_capacity: int = 512


class RttEstimator:
    """Jacobson/Karels RTT estimation with exponential timeout backoff.

    First sample initialises ``srtt = rtt, rttvar = rtt/2``; thereafter
    ``rttvar = 0.75·rttvar + 0.25·|srtt − rtt|`` then
    ``srtt = 0.875·srtt + 0.125·rtt`` (RFC 6298 §2). The retransmission
    timeout is ``srtt + 4·rttvar`` clamped to ``[min_rto, max_rto]`` and
    doubled per consecutive loss (``backoff()``); any fresh sample resets
    the backoff.
    """

    __slots__ = ("initial_rto", "min_rto", "max_rto", "srtt", "rttvar", "samples", "_shift")

    def __init__(
        self,
        initial_rto: float = 0.05,
        min_rto: float = 0.002,
        max_rto: float = 2.0,
    ) -> None:
        self.initial_rto = initial_rto
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.srtt = 0.0
        self.rttvar = 0.0
        self.samples = 0
        self._shift = 0  # consecutive-timeout exponent

    @property
    def cold(self) -> bool:
        """True until the first RTT sample arrives."""
        return self.samples == 0

    def observe(self, rtt: float) -> None:
        """Feed one round-trip sample; resets any timeout backoff."""
        if rtt < 0:
            return
        if self.samples == 0:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        self.samples += 1
        self._shift = 0

    def backoff(self) -> None:
        """Note one timeout: double the next RTO (capped by ``max_rto``)."""
        if self._shift < 16:  # 2**16 already saturates any sane cap
            self._shift += 1

    def rto(self) -> float:
        """Current retransmission timeout."""
        base = self.initial_rto if self.samples == 0 else self.srtt + 4.0 * self.rttvar
        base = max(self.min_rto, base)
        return min(self.max_rto, base * (1 << self._shift))


#: Circuit breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Closed/open/half-open quarantine over a sliding outcome window.

    The breaker sees only call *outcomes* (``record``) and admission
    questions (``allow``); time is passed in explicitly so transports can
    use it without touching the obs layer. While CLOSED, outcomes feed a
    window of the last ``window`` calls; once at least ``min_samples``
    are present and the failure fraction reaches ``failure_threshold``
    the breaker OPENs for ``open_for`` seconds (doubling per consecutive
    open, capped at ``max_open``). After that it goes HALF_OPEN and
    admits exactly one probe; a success recloses (and resets the open
    duration), a failure reopens.
    """

    __slots__ = (
        "window",
        "min_samples",
        "failure_threshold",
        "base_open_for",
        "max_open",
        "state",
        "opened_at",
        "open_for",
        "opens",
        "_outcomes",
        "_probing",
        "on_transition",
    )

    def __init__(
        self,
        window: int = 16,
        min_samples: int = 4,
        failure_threshold: float = 0.5,
        open_for: float = 1.0,
        max_open: float = 30.0,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        self.window = window
        self.min_samples = min_samples
        self.failure_threshold = failure_threshold
        self.base_open_for = open_for
        self.max_open = max_open
        self.state = CLOSED
        self.opened_at = 0.0
        self.open_for = open_for
        self.opens = 0  # total times this breaker tripped
        self._outcomes: Deque[bool] = deque(maxlen=window)
        self._probing = False
        self.on_transition = on_transition

    def _move(self, state: str) -> None:
        old, self.state = self.state, state
        if old != state and self.on_transition is not None:
            self.on_transition(old, state)

    def allow(self, now: float) -> bool:
        """May a call be issued to this destination right now?"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self.opened_at < self.open_for:
                return False
            self._move(HALF_OPEN)
            self._probing = False
        # HALF_OPEN: admit a single probe at a time.
        if self._probing:
            return False
        self._probing = True
        return True

    def record(self, ok: bool, now: float) -> None:
        """Report the outcome of an admitted call."""
        if self.state == HALF_OPEN:
            self._probing = False
            if ok:
                self.open_for = self.base_open_for
                self._outcomes.clear()
                self._move(CLOSED)
            else:
                self._trip(now, redouble=True)
            return
        if self.state == OPEN:
            # A straggler from before the trip; the probe decides, not it.
            return
        self._outcomes.append(ok)
        if len(self._outcomes) < self.min_samples:
            return
        failures = sum(1 for o in self._outcomes if not o)
        if failures / len(self._outcomes) >= self.failure_threshold:
            self.open_for = self.base_open_for
            self._trip(now, redouble=False)

    def _trip(self, now: float, redouble: bool) -> None:
        if redouble:
            self.open_for = min(self.max_open, self.open_for * 2)
        self.opened_at = now
        self.opens += 1
        self._outcomes.clear()
        self._probing = False
        self._move(OPEN)


class BreakerBoard:
    """A keyed family of breakers sharing one configuration.

    Clients key by destination (host, port); the path selector keys by
    (destination, interface). Obs counters are tagged with the board's
    ``scope`` so a report can tell RPC quarantine from path quarantine.
    """

    def __init__(self, sim, scope: str, **breaker_kwargs: Any) -> None:
        self.sim = sim
        self.scope = scope
        self.kwargs = breaker_kwargs
        self._breakers: dict = {}
        metrics = sim.obs.metrics
        self._m_opened = metrics.counter("robust.breaker_opened", scope=scope)
        self._m_reclosed = metrics.counter("robust.breaker_reclosed", scope=scope)
        self._m_rejected = metrics.counter("robust.breaker_rejected", scope=scope)

    def breaker(self, key: Any) -> CircuitBreaker:
        br = self._breakers.get(key)
        if br is None:

            def transition(old: str, new: str, _key=key) -> None:
                if new == OPEN:
                    self._m_opened.inc()
                elif new == CLOSED:
                    self._m_reclosed.inc()
                hook = getattr(self, "on_transition", None)
                if hook is not None:
                    hook(_key, old, new)

            br = CircuitBreaker(on_transition=transition, **self.kwargs)
            self._breakers[key] = br
        return br

    def allow(self, key: Any) -> bool:
        """Admission check; counts a rejection when the answer is no."""
        if not self.breaker(key).allow(self.sim.now):
            self._m_rejected.inc()
            return False
        return True

    def record(self, key: Any, ok: bool) -> None:
        br = self.breaker(key)
        if br.state == OPEN and self.sim.now - br.opened_at >= br.open_for:
            # Users that only peek via is_open (the path selector) never
            # call allow(); a due breaker treats this outcome as its probe.
            br.allow(self.sim.now)
        br.record(ok, self.sim.now)

    def due_at(self, key: Any) -> Optional[float]:
        """When an OPEN breaker becomes due for its probe (None unless
        OPEN). Lets peek-only users expire caches built around it."""
        br = self._breakers.get(key)
        if br is None or br.state != OPEN:
            return None
        return br.opened_at + br.open_for

    def is_open(self, key: Any) -> bool:
        """Non-mutating peek: is this destination currently quarantined?
        (OPEN and not yet due for a probe — a due breaker counts as
        available so candidate ordering lets the probe happen.)"""
        br = self._breakers.get(key)
        if br is None or br.state == CLOSED:
            return False
        if br.state == HALF_OPEN:
            return br._probing
        return self.sim.now - br.opened_at < br.open_for


class LaneStore:
    """Two-priority ingress queue: an unbounded control lane over a
    bounded bulk lane.

    ``get()`` always drains control before bulk. The bulk lane bound is
    enforced one of two ways:

    * **backpressure** (``shed_oldest=False``, transports): ``try_put``
      returns False and the caller withholds its ACK, so the sender's
      reliability machinery retransmits — nothing is silently lost.
    * **shed-oldest** (``shed_oldest=True``, RPC servers): the oldest
      queued bulk item is evicted through ``on_shed`` and the new one
      admitted. Under sustained overload the oldest request is the one
      whose caller has already given up; serving it would be pure waste.

    Control items are always admitted: they are tiny, rare, and the whole
    point of the lane is that saturation cannot delay them behind data.
    """

    def __init__(
        self,
        sim,
        bulk_capacity: float = float("inf"),
        shed_oldest: bool = False,
        on_shed: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self.sim = sim
        self.bulk_capacity = bulk_capacity
        self.shed_oldest = shed_oldest
        self.on_shed = on_shed
        self.control: Deque[Any] = deque()
        self.bulk: Deque[Any] = deque()
        self.sheds = 0
        self.rejected = 0
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self.control) + len(self.bulk)

    @property
    def bulk_full(self) -> bool:
        return len(self.bulk) >= self.bulk_capacity

    def try_put(self, item: Any, lane: str = BULK) -> bool:
        """Admit *item*; False only in backpressure mode with a full bulk
        lane and no waiting consumer."""
        if self._getters:
            # Direct handoff: a waiting consumer takes it immediately,
            # whatever the lane — the queue never actually forms.
            self._getters.popleft().succeed(item)
            return True
        if lane == CONTROL:
            self.control.append(item)
            return True
        if self.bulk_full:
            if not self.shed_oldest:
                self.rejected += 1
                return False
            victim = self.bulk.popleft()
            self.sheds += 1
            if self.on_shed is not None:
                self.on_shed(victim)
        self.bulk.append(item)
        return True

    def get(self) -> Event:
        """Event yielding the next item, control lane first."""
        ev = Event(self.sim)
        if self.control:
            ev.succeed(self.control.popleft())
        elif self.bulk:
            ev.succeed(self.bulk.popleft())
        else:
            self._getters.append(ev)
        return ev


def estimator_key(dst_host: str, dst_port: int, method: str) -> Tuple[str, int, str]:
    """RPC latency is method-shaped (service time + payload), so adaptive
    timeouts are learned per (destination, port, method), never pooled."""
    return (dst_host, dst_port, method)


@dataclass
class AdaptiveTimeouts:
    """Per-destination call-timeout estimation for an RPC client.

    Wraps a family of :class:`RttEstimator` instances keyed by
    :func:`estimator_key`. The *static* timeout (caller argument or the
    :data:`repro.robust.TIMEOUTS` default) is both the cold-start value
    and the anchor for the floor: an adaptive timeout lives in
    ``[floor_factor·static, max_timeout]``.
    """

    config: OverloadConfig
    estimators: dict = field(default_factory=dict)

    def _est(self, key: Tuple[str, int, str], static: float) -> RttEstimator:
        est = self.estimators.get(key)
        if est is None:
            est = self.estimators[key] = RttEstimator(
                initial_rto=static,
                min_rto=static * self.config.timeout_floor_factor,
                max_rto=self.config.max_timeout,
            )
        return est

    def timeout_for(self, dst_host: str, dst_port: int, method: str, static: float) -> float:
        if not self.config.adaptive:
            return static
        return self._est(estimator_key(dst_host, dst_port, method), static).rto()

    def observe(self, dst_host: str, dst_port: int, method: str, static: float, rtt: float):
        if self.config.adaptive:
            self._est(estimator_key(dst_host, dst_port, method), static).observe(rtt)

    def note_timeout(self, dst_host: str, dst_port: int, method: str, static: float):
        if self.config.adaptive:
            self._est(estimator_key(dst_host, dst_port, method), static).backoff()
