"""Differential health scoring per (peer, iface).

Lease heartbeats answer "is the host's daemon alive?"; they say nothing
about whether the host is *doing work*. Gray failures — one-way links,
lossy paths, bit-flipping NICs, hosts whose CPU has crawled to a halt —
produce *zombies*: peers that heartbeat perfectly while failing every
request sent to them. The classic heartbeat detector keeps routing work
at them; goodput collapses.

The :class:`HealthBoard` closes that gap. Each host owns one
(``host.health``), fed by the layers that actually observe outcomes:

* ``rpc``    — RpcClient call completed vs timed out,
* ``srudp``  — transport-level message delivery vs retransmit exhaustion,
* ``digest`` — end-to-end payload digest verification results,
* ``heartbeat`` — lease-refresh outcomes, when a caller reports them.

Each (peer, iface) cell keeps one EWMA success rate per kind; the health
score is the sample-weighted combination

    score = sum(w_k * ewma_k) / sum(w_k)   over kinds with samples,

with weights rpc 0.4, srudp 0.3, digest 0.2, heartbeat 0.1 and an
optimistic prior of 1.0 (unknown peers are healthy). *Application-level*
kinds (rpc, digest) trump *transport-level* kinds (srudp, heartbeat):
when a cell has application samples, only those enter the combination.
This is the differential insight made arithmetic — a zombie's NIC acks
every frame and its daemon answers every heartbeat, so averaging the
healthy transport signals in would put a floor under the score that no
amount of failed work could break through. Transport kinds fill in only
where no application evidence exists (e.g. the per-iface cells that
steer the path selector, fed purely by srudp outcomes). A peer whose score
falls below ``quarantine_below`` is *quarantined* — demoted by the path
selector, sunk to the back of RC/file candidate orders, penalised in RM
placement — until either its score recovers above ``recover_above`` or a
``probation`` window elapses and it earns another chance. Hysteresis
plus probation means one lost frame never flaps a peer, and a recovered
peer is re-admitted without an operator.

``HealthBoard.differential_enabled = False`` (the ``naive-health``
seeded bug / the E15 baseline) collapses the detector back to
heartbeat-only: every score reads 1.0, nothing is ever quarantined, and
the Guardian's probe-before-death check is disabled — exactly the
detector this module exists to replace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

#: Relative weight of each outcome kind in the combined score. Kinds
#: with no samples for a cell drop out and the rest renormalise.
KIND_WEIGHTS = {"rpc": 0.4, "srudp": 0.3, "digest": 0.2, "heartbeat": 0.1}

#: Kinds that measure *work* rather than *delivery*. When present they
#: exclude the transport kinds from the score — see the module docstring.
APP_KINDS = frozenset({"rpc", "digest"})


class _Rate:
    """EWMA success rate with an optimistic prior of 1.0."""

    __slots__ = ("value", "samples")

    def __init__(self) -> None:
        self.value = 1.0
        self.samples = 0

    def note(self, ok: bool, alpha: float) -> None:
        self.value += alpha * ((1.0 if ok else 0.0) - self.value)
        self.samples += 1


class HealthBoard:
    """One host's differential health scores, keyed (peer_host, iface).

    Each host owns a board (``host.health``) fed only by *its own*
    observed outcomes — there is no shared scoreboard in a real
    distributed system, and a partitioned host's bad experience must
    not quarantine a peer for everyone else. ``iface`` is the sender's
    NIC iface name chosen by the path selector, or ``"*"`` for the
    per-peer aggregate; every per-iface observation also feeds the
    aggregate, so consumers that don't track paths still benefit.
    """

    #: Class-level bug hook (``--bug naive-health``): when False the
    #: board scores everything 1.0 and quarantines nothing.
    differential_enabled = True

    def __init__(
        self,
        sim: Optional["Simulator"] = None,
        owner: str = "",
        alpha: float = 0.2,
        quarantine_below: float = 0.35,
        recover_above: float = 0.7,
        min_samples: int = 4,
        probation: float = 10.0,
    ) -> None:
        self.sim = sim
        self.owner = owner
        self.alpha = alpha
        self.quarantine_below = quarantine_below
        self.recover_above = recover_above
        self.min_samples = min_samples
        self.probation = probation
        #: Instance-level switch: the E15 baseline runs with the board
        #: present but disabled (heartbeat-only detector).
        self.enabled = True
        self._cells: Dict[Tuple[str, str], Dict[str, _Rate]] = {}
        #: key -> quarantine entry time (hysteresis state).
        self._quarantined: Dict[Tuple[str, str], float] = {}
        #: (t, peer, iface, "quarantine"|"release") — E15 reads detection
        #: latency straight off this.
        self.transitions: List[Tuple[float, str, str, str]] = []

    # -- feeding -----------------------------------------------------------
    def note_outcome(self, peer: str, ok: bool, kind: str = "rpc",
                     iface: str = "*") -> None:
        """Record one application-level outcome against *peer*."""
        if not self._active():
            return
        self._note_cell((peer, "*"), ok, kind)
        if iface != "*":
            self._note_cell((peer, iface), ok, kind)

    def _note_cell(self, key: Tuple[str, str], ok: bool, kind: str) -> None:
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = {}
        rate = cell.get(kind)
        if rate is None:
            rate = cell[kind] = _Rate()
        rate.note(ok, self.alpha)
        self._reconsider(key, cell)

    # -- reading -----------------------------------------------------------
    def _active(self) -> bool:
        return self.enabled and type(self).differential_enabled

    def score(self, peer: str, iface: str = "*") -> float:
        """Combined health in [0, 1]; 1.0 for unknown/disabled."""
        if not self._active():
            return 1.0
        cell = self._cells.get((peer, iface))
        if cell is None and iface != "*":
            cell = self._cells.get((peer, "*"))
        if not cell:
            return 1.0
        return self._score_cell(cell)

    @staticmethod
    def _score_cell(cell: Dict[str, _Rate]) -> float:
        has_app = any(
            rate.samples and kind in APP_KINDS for kind, rate in cell.items()
        )
        num = den = 0.0
        for kind, rate in cell.items():
            if rate.samples == 0:
                continue
            if has_app and kind not in APP_KINDS:
                continue
            w = KIND_WEIGHTS.get(kind, 0.1)
            num += w * rate.value
            den += w
        return num / den if den else 1.0

    def is_quarantined(self, peer: str, iface: Optional[str] = None) -> bool:
        """True while the peer (or one of its paths) is sin-binned.

        After ``probation`` seconds the peer earns another chance: the
        flag clears even though the score is still low, so traffic
        re-probes it and either recovers it or re-quarantines it fast.
        """
        if not self._quarantined or not self._active():
            return False
        keys = [(peer, "*")] if iface is None else [(peer, iface), (peer, "*")]
        now = self.sim.now if self.sim is not None else 0.0
        for key in keys:
            t0 = self._quarantined.get(key)
            if t0 is not None and now - t0 < self.probation:
                return True
        return False

    def iface_quarantined(self, peer: str, iface: str) -> bool:
        """True while this *specific* (peer, iface) path is sin-binned.

        Unlike :meth:`is_quarantined` this never falls back to the
        aggregate cell: the path selector compares sibling interfaces to
        the same peer, and a peer-wide quarantine (driven by rpc
        outcomes, which carry no iface) must not condemn every path at
        once — that would erase exactly the differential the selector
        steers by.
        """
        if not self._quarantined or not self._active():
            return False
        now = self.sim.now if self.sim is not None else 0.0
        t0 = self._quarantined.get((peer, iface))
        return t0 is not None and now - t0 < self.probation

    def quarantined_peers(self) -> List[str]:
        """Peers currently quarantined on their aggregate cell."""
        return sorted({p for (p, i), t0 in self._quarantined.items()
                       if self.is_quarantined(p, i if i != "*" else None)})

    # -- hysteresis --------------------------------------------------------
    def _reconsider(self, key: Tuple[str, str], cell: Dict[str, _Rate]) -> None:
        score = self._score_cell(cell)
        now = self.sim.now if self.sim is not None else 0.0
        t0 = self._quarantined.get(key)
        if t0 is None:
            samples = sum(r.samples for r in cell.values())
            if score < self.quarantine_below and samples >= self.min_samples:
                self._quarantined[key] = now
                self._transition(now, key, "quarantine", score)
        elif score > self.recover_above:
            del self._quarantined[key]
            self._transition(now, key, "release", score)

    def _transition(self, now: float, key: Tuple[str, str], what: str,
                    score: float) -> None:
        peer, iface = key
        self.transitions.append((now, peer, iface, what))
        if self.sim is None:
            return
        self.sim.obs.metrics.counter(f"health.{what}").inc()
        tracer = self.sim.obs.tracer
        if tracer.enabled:
            tracer.event(f"health.{what}", owner=self.owner, peer=peer,
                         iface=iface, score=round(score, 4))
        probes = self.sim.probes
        if probes is not None:
            probes.emit(f"health.{what}", owner=self.owner, peer=peer,
                        iface=iface, score=score)

    def first_quarantine_of(self, peer: str) -> Optional[float]:
        """Time the peer's aggregate cell first entered quarantine."""
        for t, p, iface, what in self.transitions:
            if p == peer and what == "quarantine":
                return t
        return None
